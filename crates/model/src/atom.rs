//! Atomic values and their types.
//!
//! The paper's examples use integers (DNO, EMPNO, BUDGET, QU), strings
//! (PNAME, FUNCTION, TYPE, NAME), free text with masked search support
//! (TITLE — Section 5), doubles (DESCRIPTORS.WEIGHT in Table 6), and dates
//! (the ASOF clause). `Text` is a distinct type from `Str` because only
//! `Text` attributes participate in text indexing (`CONTAINS` — /Sch78,
//! KW81/); both carry a Rust `String`.

use crate::error::ModelError;
use std::cmp::Ordering;
use std::fmt;

/// The type of an atomic attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (total order via `f64::total_cmp`).
    Double,
    /// Short character string (identifier-like; not text-indexed).
    Str,
    /// Long text; eligible for the word-fragment text index (§5).
    Text,
    /// Boolean.
    Bool,
    /// Calendar date, day precision (used by ASOF time-version queries).
    Date,
}

impl fmt::Display for AtomType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomType::Int => "INTEGER",
            AtomType::Double => "DOUBLE",
            AtomType::Str => "STRING",
            AtomType::Text => "TEXT",
            AtomType::Bool => "BOOLEAN",
            AtomType::Date => "DATE",
        };
        f.write_str(s)
    }
}

impl AtomType {
    /// Parse a DDL type keyword (case-insensitive).
    pub fn parse_keyword(kw: &str) -> Option<AtomType> {
        match kw.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" => Some(AtomType::Int),
            "DOUBLE" | "FLOAT" | "REAL" => Some(AtomType::Double),
            "STRING" | "CHAR" | "VARCHAR" => Some(AtomType::Str),
            "TEXT" => Some(AtomType::Text),
            "BOOLEAN" | "BOOL" => Some(AtomType::Bool),
            "DATE" => Some(AtomType::Date),
            _ => None,
        }
    }
}

/// A calendar date with day precision, stored as days since 1970-01-01
/// (proleptic Gregorian). Supports the `ASOF January 15th 1984` style
/// queries of Section 5 via [`Date::from_ymd`] / [`Date::parse_iso`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// The smallest representable date (used as "beginning of time" in the
    /// version store).
    pub const MIN: Date = Date(i32::MIN);
    /// The largest representable date ("end of time" / still current).
    pub const MAX: Date = Date(i32::MAX);

    /// Construct from a year/month/day triple. Returns `None` for invalid
    /// calendar dates.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Date> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        // Days from civil algorithm (Howard Hinnant's `days_from_civil`).
        let y = if month <= 2 { year - 1 } else { year };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64; // [0, 399]
        let mp = ((month + 9) % 12) as i64; // [0, 11], Mar=0
        let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Some(Date((era as i64 * 146097 + doe - 719468) as i32))
    }

    /// Inverse of [`Date::from_ymd`].
    pub fn to_ymd(self) -> (i32, u32, u32) {
        // `civil_from_days` (Hinnant).
        let z = self.0 as i64 + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        let year = if m <= 2 { y + 1 } else { y } as i32;
        (year, m, d)
    }

    /// Parse an ISO `YYYY-MM-DD` date string.
    pub fn parse_iso(s: &str) -> Result<Date, ModelError> {
        let bad = || ModelError::BadLiteral {
            kind: "DATE",
            text: s.to_string(),
        };
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::from_ymd(y, m, d).ok_or_else(bad)
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Date::MIN {
            return f.write_str("-infinity");
        }
        if *self == Date::MAX {
            return f.write_str("+infinity");
        }
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// An atomic value. Total ordering exists within one [`AtomType`];
/// comparisons across types return `None` from [`Atom::partial_cmp_same`].
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    Int(i64),
    Double(f64),
    Str(String),
    Text(String),
    Bool(bool),
    Date(Date),
}

impl Eq for Atom {}

impl std::hash::Hash for Atom {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Atom::Int(v) => v.hash(state),
            Atom::Double(v) => v.to_bits().hash(state),
            Atom::Str(v) | Atom::Text(v) => v.hash(state),
            Atom::Bool(v) => v.hash(state),
            Atom::Date(v) => v.hash(state),
        }
    }
}

impl Atom {
    /// The type of this atom.
    pub fn atom_type(&self) -> AtomType {
        match self {
            Atom::Int(_) => AtomType::Int,
            Atom::Double(_) => AtomType::Double,
            Atom::Str(_) => AtomType::Str,
            Atom::Text(_) => AtomType::Text,
            Atom::Bool(_) => AtomType::Bool,
            Atom::Date(_) => AtomType::Date,
        }
    }

    /// Whether this atom's type is compatible with `ty` (exact match, with
    /// `Str`/`Text` interchangeable and `Int` promotable to `Double`).
    pub fn conforms_to(&self, ty: AtomType) -> bool {
        match (self.atom_type(), ty) {
            (a, b) if a == b => true,
            (AtomType::Str, AtomType::Text) | (AtomType::Text, AtomType::Str) => true,
            (AtomType::Int, AtomType::Double) => true,
            _ => false,
        }
    }

    /// Coerce to exactly `ty` where [`Atom::conforms_to`] holds.
    pub fn coerce(self, ty: AtomType) -> Result<Atom, ModelError> {
        if self.atom_type() == ty {
            return Ok(self);
        }
        match (self, ty) {
            (Atom::Str(s), AtomType::Text) => Ok(Atom::Text(s)),
            (Atom::Text(s), AtomType::Str) => Ok(Atom::Str(s)),
            (Atom::Int(i), AtomType::Double) => Ok(Atom::Double(i as f64)),
            (a, ty) => Err(ModelError::TypeMismatch {
                expected: ty.to_string(),
                got: a.atom_type().to_string(),
            }),
        }
    }

    /// Compare two atoms of comparable types; `None` if incomparable.
    /// `Str` and `Text` compare as strings; `Int` and `Double` compare
    /// numerically.
    pub fn partial_cmp_same(&self, other: &Atom) -> Option<Ordering> {
        match (self, other) {
            (Atom::Int(a), Atom::Int(b)) => Some(a.cmp(b)),
            (Atom::Double(a), Atom::Double(b)) => Some(a.total_cmp(b)),
            (Atom::Int(a), Atom::Double(b)) => Some((*a as f64).total_cmp(b)),
            (Atom::Double(a), Atom::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Atom::Str(a) | Atom::Text(a), Atom::Str(b) | Atom::Text(b)) => Some(a.cmp(b)),
            (Atom::Bool(a), Atom::Bool(b)) => Some(a.cmp(b)),
            (Atom::Date(a), Atom::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// String content, if this is a `Str` or `Text` atom.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) | Atom::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if this is an `Int` atom.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Int(v) => write!(f, "{v}"),
            Atom::Double(v) => write!(f, "{v}"),
            Atom::Str(v) | Atom::Text(v) => write!(f, "{v}"),
            Atom::Bool(v) => write!(f, "{v}"),
            Atom::Date(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Atom {
    fn from(v: i64) -> Self {
        Atom::Int(v)
    }
}
impl From<i32> for Atom {
    fn from(v: i32) -> Self {
        Atom::Int(v as i64)
    }
}
impl From<f64> for Atom {
    fn from(v: f64) -> Self {
        Atom::Double(v)
    }
}
impl From<&str> for Atom {
    fn from(v: &str) -> Self {
        Atom::Str(v.to_string())
    }
}
impl From<String> for Atom {
    fn from(v: String) -> Self {
        Atom::Str(v)
    }
}
impl From<bool> for Atom {
    fn from(v: bool) -> Self {
        Atom::Bool(v)
    }
}
impl From<Date> for Atom {
    fn from(v: Date) -> Self {
        Atom::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_known_values() {
        assert_eq!(Date::from_ymd(1970, 1, 1), Some(Date(0)));
        assert_eq!(Date::from_ymd(1970, 1, 2), Some(Date(1)));
        assert_eq!(Date::from_ymd(1969, 12, 31), Some(Date(-1)));
        // The paper's ASOF example date.
        let d = Date::from_ymd(1984, 1, 15).unwrap();
        assert_eq!(d.to_ymd(), (1984, 1, 15));
        assert_eq!(d.to_string(), "1984-01-15");
    }

    #[test]
    fn date_rejects_invalid() {
        assert_eq!(Date::from_ymd(1984, 2, 30), None);
        assert_eq!(Date::from_ymd(1984, 13, 1), None);
        assert_eq!(Date::from_ymd(1984, 0, 1), None);
        assert_eq!(Date::from_ymd(1900, 2, 29), None); // 1900 not a leap year
        assert!(Date::from_ymd(2000, 2, 29).is_some()); // 2000 is
    }

    #[test]
    fn date_parse_iso() {
        assert_eq!(
            Date::parse_iso("1984-01-15").unwrap(),
            Date::from_ymd(1984, 1, 15).unwrap()
        );
        assert!(Date::parse_iso("1984/01/15").is_err());
        assert!(Date::parse_iso("not-a-date").is_err());
    }

    #[test]
    fn date_ordering_matches_calendar() {
        let a = Date::from_ymd(1984, 1, 15).unwrap();
        let b = Date::from_ymd(1984, 1, 16).unwrap();
        let c = Date::from_ymd(1985, 1, 1).unwrap();
        assert!(a < b && b < c);
        assert!(Date::MIN < a && a < Date::MAX);
    }

    #[test]
    fn atom_cross_type_compare() {
        assert_eq!(
            Atom::Int(3).partial_cmp_same(&Atom::Double(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Atom::Str("a".into()).partial_cmp_same(&Atom::Text("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Atom::Int(1).partial_cmp_same(&Atom::Bool(true)), None);
    }

    #[test]
    fn atom_conformance_and_coercion() {
        assert!(Atom::Int(1).conforms_to(AtomType::Double));
        assert!(Atom::Str("x".into()).conforms_to(AtomType::Text));
        assert!(!Atom::Bool(true).conforms_to(AtomType::Int));
        assert_eq!(
            Atom::Int(2).coerce(AtomType::Double).unwrap(),
            Atom::Double(2.0)
        );
        assert!(Atom::Bool(true).coerce(AtomType::Int).is_err());
    }

    #[test]
    fn atom_type_keywords() {
        assert_eq!(AtomType::parse_keyword("integer"), Some(AtomType::Int));
        assert_eq!(AtomType::parse_keyword("TEXT"), Some(AtomType::Text));
        assert_eq!(AtomType::parse_keyword("blob"), None);
    }

    #[test]
    fn atom_hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Atom::Str("Consultant".into()));
        assert!(s.contains(&Atom::Str("Consultant".into())));
    }
}
