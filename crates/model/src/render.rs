//! Rendering NF² tables in the paper's notation.
//!
//! Two renderers:
//! * [`render_inline`] — one-line bracket notation, `{(314, 56194, {...},
//!   320000, {...}), ...}`, with `{}` for relations and `<>` for lists;
//! * [`render_table`] — an indented multi-line layout in the spirit of the
//!   paper's Table 5 figure, showing attribute headers per level. Used by
//!   the `reproduce` binary to print each paper table.

use crate::schema::{AttrKind, TableSchema};
use crate::value::{TableValue, Tuple, Value};
use std::fmt::Write as _;

/// One-line bracket rendering (schema-independent).
pub fn render_inline(value: &TableValue) -> String {
    value.to_string()
}

/// Render the header line for a schema level: atomic attribute names plus
/// bracketed subtable headers, e.g.
/// `DNO MGRNO {PROJECTS: PNO PNAME {MEMBERS: EMPNO FUNCTION}} BUDGET ...`.
pub fn render_header(schema: &TableSchema) -> String {
    let mut s = String::new();
    header_rec(schema, &mut s);
    s
}

fn header_rec(schema: &TableSchema, out: &mut String) {
    let (open, close) = schema.kind.brackets();
    let _ = write!(out, "{open}{}: ", schema.name);
    for (i, attr) in schema.attrs.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match &attr.kind {
            AttrKind::Atomic(_) => out.push_str(&attr.name),
            AttrKind::Table(sub) => header_rec(sub, out),
        }
    }
    out.push(close);
}

/// Multi-line indented rendering of a table instance with its schema.
pub fn render_table(schema: &TableSchema, value: &TableValue) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", render_header(schema));
    for t in &value.tuples {
        render_tuple(schema, t, 1, &mut out);
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_tuple(schema: &TableSchema, tuple: &Tuple, depth: usize, out: &mut String) {
    // First line: all atomic values of this tuple.
    indent(out, depth);
    let mut first = true;
    for (attr, v) in schema.attrs.iter().zip(&tuple.fields) {
        if let (AttrKind::Atomic(_), Value::Atom(a)) = (&attr.kind, v) {
            if !first {
                out.push_str("  ");
            }
            let _ = write!(out, "{}={}", attr.name, a);
            first = false;
        }
    }
    if first {
        out.push_str("(no atomic attributes)");
    }
    out.push('\n');
    // Then each subtable, indented.
    for (attr, v) in schema.attrs.iter().zip(&tuple.fields) {
        if let (AttrKind::Table(sub), Value::Table(tv)) = (&attr.kind, v) {
            indent(out, depth + 1);
            let (open, close) = sub.kind.brackets();
            let _ = writeln!(out, "{open}{}{close} ({} tuple(s))", sub.name, tv.len());
            for t in &tv.tuples {
                render_tuple(sub, t, depth + 2, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn header_shows_nesting_and_brackets() {
        let h = render_header(&fixtures::departments_schema());
        assert_eq!(
            h,
            "{DEPARTMENTS: DNO MGRNO {PROJECTS: PNO PNAME {MEMBERS: EMPNO FUNCTION}} BUDGET {EQUIP: QU TYPE}}"
        );
        let r = render_header(&fixtures::reports_schema());
        assert!(r.contains("<AUTHORS: NAME>"));
    }

    #[test]
    fn table5_renders_all_departments() {
        let s = render_table(
            &fixtures::departments_schema(),
            &fixtures::departments_value(),
        );
        assert!(s.contains("DNO=314"));
        assert!(s.contains("DNO=218"));
        assert!(s.contains("DNO=417"));
        assert!(s.contains("PNAME=CGA"));
        assert!(s.contains("FUNCTION=Consultant"));
        assert!(s.contains("{MEMBERS}"));
    }

    #[test]
    fn inline_render_is_compact() {
        let s = render_inline(&fixtures::equip_1nf_value());
        assert!(s.starts_with('{'));
        assert!(s.contains("(314, 2, 3278)"));
    }
}
