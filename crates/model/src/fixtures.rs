//! The paper's example data: Tables 1–8 of Dadam et al., SIGMOD 1986.
//!
//! These fixtures are the ground truth for the whole reproduction: the
//! `reproduce` binary prints them, integration tests run the paper's
//! Examples 1–8 against them, and the storage tests build department 314
//! under SS1/SS2/SS3 exactly as Figures 6a–6c do.
//!
//! ## Fidelity notes
//!
//! The available scan renders the (rotated) tables with OCR damage; all
//! values that are stated in the running text are reproduced exactly:
//!
//! * dept 314 = (DNO 314, MGRNO 56194, BUDGET 320,000), projects 17 "CGA"
//!   and 23 "HEAP", project-17 members 39582 Leader / 56019 Consultant /
//!   69011 Secretary, EQUIP items (2, 3278), (3, PC/AT), (1, PC)
//!   (§2, §4.1 data-subtuple examples);
//! * the three consultants are 56019, 89921, 44512 (§4.2 index example);
//! * departments with a consultant are 314 and 218; projects with a
//!   consultant are 17 and 25 (§4.2);
//! * department numbers 314, 218, 417; project numbers unique *in this
//!   instance* but not required to be (§2).
//!
//! Cells illegible in the scan (some EQUIP items of departments 218/417,
//! some employee names, report titles/descriptors) are synthesized
//! consistently and marked `// synthesized` below. Department 417
//! deliberately owns no PC/AT so that Example 5 answers {314, 218},
//! parallel to the §4.2 consultant query.

use crate::atom::{Atom, AtomType};
use crate::schema::TableSchema;
use crate::value::build::{a, list, rel, tup};
use crate::value::{TableValue, Tuple};
use crate::TableKind;

// ---------------------------------------------------------------------
// Schemas
// ---------------------------------------------------------------------

/// Table 5 schema: the DEPARTMENTS NF² table.
///
/// `{DEPARTMENTS: DNO, MGRNO, {PROJECTS: PNO, PNAME, {MEMBERS: EMPNO,
/// FUNCTION}}, BUDGET, {EQUIP: QU, TYPE}}`
pub fn departments_schema() -> TableSchema {
    TableSchema::relation("DEPARTMENTS")
        .with_atom("DNO", AtomType::Int)
        .with_atom("MGRNO", AtomType::Int)
        .with_table(
            TableSchema::relation("PROJECTS")
                .with_atom("PNO", AtomType::Int)
                .with_atom("PNAME", AtomType::Str)
                .with_table(
                    TableSchema::relation("MEMBERS")
                        .with_atom("EMPNO", AtomType::Int)
                        .with_atom("FUNCTION", AtomType::Str),
                ),
        )
        .with_atom("BUDGET", AtomType::Int)
        .with_table(
            TableSchema::relation("EQUIP")
                .with_atom("QU", AtomType::Int)
                .with_atom("TYPE", AtomType::Str),
        )
}

/// Table 1 schema: DEPARTMENTS-1NF (DNO, MGRNO, BUDGET).
pub fn departments_1nf_schema() -> TableSchema {
    TableSchema::relation("DEPARTMENTS-1NF")
        .with_atom("DNO", AtomType::Int)
        .with_atom("MGRNO", AtomType::Int)
        .with_atom("BUDGET", AtomType::Int)
}

/// Table 2 schema: PROJECTS-1NF (PNO, PNAME, DNO).
pub fn projects_1nf_schema() -> TableSchema {
    TableSchema::relation("PROJECTS-1NF")
        .with_atom("PNO", AtomType::Int)
        .with_atom("PNAME", AtomType::Str)
        .with_atom("DNO", AtomType::Int)
}

/// Table 3 schema: MEMBERS-1NF (EMPNO, PNO, DNO, FUNCTION).
pub fn members_1nf_schema() -> TableSchema {
    TableSchema::relation("MEMBERS-1NF")
        .with_atom("EMPNO", AtomType::Int)
        .with_atom("PNO", AtomType::Int)
        .with_atom("DNO", AtomType::Int)
        .with_atom("FUNCTION", AtomType::Str)
}

/// Table 4 schema: EQUIP-1NF (DNO, QU, TYPE).
pub fn equip_1nf_schema() -> TableSchema {
    TableSchema::relation("EQUIP-1NF")
        .with_atom("DNO", AtomType::Int)
        .with_atom("QU", AtomType::Int)
        .with_atom("TYPE", AtomType::Str)
}

/// Table 8 schema: EMPLOYEES-1NF (EMPNO, LNAME, FNAME, SEX).
pub fn employees_1nf_schema() -> TableSchema {
    TableSchema::relation("EMPLOYEES-1NF")
        .with_atom("EMPNO", AtomType::Int)
        .with_atom("LNAME", AtomType::Str)
        .with_atom("FNAME", AtomType::Str)
        .with_atom("SEX", AtomType::Str)
}

/// Table 6 schema: REPORTS with an **ordered** AUTHORS list and an
/// unordered DESCRIPTORS relation; TITLE is `TEXT` (text-indexable, §5).
pub fn reports_schema() -> TableSchema {
    TableSchema::relation("REPORTS")
        .with_atom("REPNO", AtomType::Str)
        .with_table(TableSchema::list("AUTHORS").with_atom("NAME", AtomType::Str))
        .with_atom("TITLE", AtomType::Text)
        .with_table(
            TableSchema::relation("DESCRIPTORS")
                .with_atom("WORD", AtomType::Str)
                .with_atom("WEIGHT", AtomType::Double),
        )
}

/// Table 7 schema: the flat result of Example 4 (unnest of Table 5,
/// projecting away BUDGET and EQUIP).
pub fn table7_schema() -> TableSchema {
    TableSchema::relation("TABLE7")
        .with_atom("DNO", AtomType::Int)
        .with_atom("MGRNO", AtomType::Int)
        .with_atom("PNO", AtomType::Int)
        .with_atom("PNAME", AtomType::Str)
        .with_atom("EMPNO", AtomType::Int)
        .with_atom("FUNCTION", AtomType::Str)
}

// ---------------------------------------------------------------------
// Raw row data (single source of truth for both NF² and 1NF fixtures)
// ---------------------------------------------------------------------

/// (DNO, MGRNO, BUDGET)
pub const DEPARTMENT_ROWS: [(i64, i64, i64); 3] = [
    (314, 56194, 320_000),
    (218, 71349, 440_000),
    (417, 90193, 360_000),
];

/// (PNO, PNAME, DNO)
pub const PROJECT_ROWS: [(i64, &str, i64); 4] = [
    (17, "CGA", 314),
    (23, "HEAP", 314),
    (25, "TEXT", 218),
    (37, "NEAS", 417),
];

/// (EMPNO, PNO, DNO, FUNCTION) — 17 project members.
pub const MEMBER_ROWS: [(i64, i64, i64, &str); 17] = [
    (39582, 17, 314, "Leader"),
    (56019, 17, 314, "Consultant"),
    (69011, 17, 314, "Secretary"),
    (58912, 23, 314, "Staff"),
    (90011, 23, 314, "Leader"),
    (78218, 23, 314, "Secretary"),
    (98902, 23, 314, "Staff"),
    (92100, 25, 218, "Leader"),
    (89211, 25, 218, "Staff"),
    (34422, 25, 218, "Staff"), // synthesized EMPNO (illegible in scan)
    (99023, 25, 218, "Secretary"),
    (89921, 25, 218, "Consultant"),
    (44512, 25, 218, "Consultant"),
    (87710, 37, 417, "Secretary"),
    (81193, 37, 417, "Leader"),
    (75913, 37, 417, "Staff"),
    (96001, 37, 417, "Staff"),
];

/// (DNO, QU, TYPE) — department equipment.
pub const EQUIP_ROWS: [(i64, i64, &str); 14] = [
    (314, 2, "3278"),
    (314, 3, "PC/AT"),
    (314, 1, "PC"),
    (218, 2, "3278"),
    (218, 2, "PC/AT"),
    (218, 1, "3179"),
    (218, 1, "PC"),   // synthesized TYPE
    (417, 2, "3278"), // synthesized below this line except 4361/PC/XT
    (417, 1, "3270"),
    (417, 1, "3179"),
    (417, 1, "PC"),
    (417, 3, "PC/XT"),
    (417, 1, "4361"),
    (417, 1, "3290"),
];

/// (EMPNO, LNAME, FNAME, SEX) — one row per project member *and* manager
/// (the text's specification of Table 8). The five rows the scan shows
/// are kept; the rest are synthesized deterministic names.
pub const EMPLOYEE_ROWS: [(i64, &str, &str, &str); 20] = [
    // Rows visible in the paper's Table 8:
    (56194, "Schmidt", "Horst", "male"),
    (39582, "Krause", "Klaus", "male"),
    (56019, "Mayer", "Rosi", "female"),
    (69011, "Andre", "Andrea", "female"),
    (96001, "Bauer", "Doris", "female"),
    // Synthesized rows (members + managers not shown in the scan):
    (58912, "Fischer", "Jan", "male"),
    (90011, "Weber", "Ute", "female"),
    (78218, "Wagner", "Eva", "female"),
    (98902, "Becker", "Tom", "male"),
    (92100, "Hoffmann", "Ralf", "male"),
    (89211, "Koch", "Ilse", "female"),
    (34422, "Richter", "Udo", "male"),
    (99023, "Klein", "Rita", "female"),
    (89921, "Wolf", "Hans", "male"),
    (44512, "Neumann", "Karin", "female"),
    (87710, "Schwarz", "Lisa", "female"),
    (81193, "Zimmer", "Paul", "male"),
    (75913, "Braun", "Nils", "male"),
    (71349, "Krueger", "Anna", "female"), // manager 218
    (90193, "Lange", "Otto", "male"),     // manager 417
];

// ---------------------------------------------------------------------
// 1NF values (Tables 1-4, 8)
// ---------------------------------------------------------------------

/// Table 1: DEPARTMENTS-1NF.
pub fn departments_1nf_value() -> TableValue {
    TableValue::with_tuples(
        TableKind::Relation,
        DEPARTMENT_ROWS
            .iter()
            .map(|&(dno, mgr, bud)| tup(vec![a(dno), a(mgr), a(bud)]))
            .collect(),
    )
}

/// Table 2: PROJECTS-1NF.
pub fn projects_1nf_value() -> TableValue {
    TableValue::with_tuples(
        TableKind::Relation,
        PROJECT_ROWS
            .iter()
            .map(|&(pno, pname, dno)| tup(vec![a(pno), a(pname), a(dno)]))
            .collect(),
    )
}

/// Table 3: MEMBERS-1NF.
pub fn members_1nf_value() -> TableValue {
    TableValue::with_tuples(
        TableKind::Relation,
        MEMBER_ROWS
            .iter()
            .map(|&(emp, pno, dno, func)| tup(vec![a(emp), a(pno), a(dno), a(func)]))
            .collect(),
    )
}

/// Table 4: EQUIP-1NF.
pub fn equip_1nf_value() -> TableValue {
    TableValue::with_tuples(
        TableKind::Relation,
        EQUIP_ROWS
            .iter()
            .map(|&(dno, qu, ty)| tup(vec![a(dno), a(qu), a(ty)]))
            .collect(),
    )
}

/// Table 8: EMPLOYEES-1NF.
pub fn employees_1nf_value() -> TableValue {
    TableValue::with_tuples(
        TableKind::Relation,
        EMPLOYEE_ROWS
            .iter()
            .map(|&(emp, ln, fnm, sex)| tup(vec![a(emp), a(ln), a(fnm), a(sex)]))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Table 5: DEPARTMENTS (NF²)
// ---------------------------------------------------------------------

fn members_of(pno: i64) -> Vec<Tuple> {
    MEMBER_ROWS
        .iter()
        .filter(|&&(_, p, _, _)| p == pno)
        .map(|&(emp, _, _, func)| tup(vec![a(emp), a(func)]))
        .collect()
}

fn projects_of(dno: i64) -> Vec<Tuple> {
    PROJECT_ROWS
        .iter()
        .filter(|&&(_, _, d)| d == dno)
        .map(|&(pno, pname, _)| tup(vec![a(pno), a(pname), rel(members_of(pno))]))
        .collect()
}

fn equip_of(dno: i64) -> Vec<Tuple> {
    EQUIP_ROWS
        .iter()
        .filter(|&&(d, _, _)| d == dno)
        .map(|&(_, qu, ty)| tup(vec![a(qu), a(ty)]))
        .collect()
}

/// Table 5: the DEPARTMENTS NF² table, with PROJECTS/MEMBERS/EQUIP nested
/// exactly as the paper shows. This is the *same information* as Tables
/// 1–4 (Example 3 nests the flat tables into this shape; Example 4
/// unnests it back).
pub fn departments_value() -> TableValue {
    TableValue::with_tuples(
        TableKind::Relation,
        DEPARTMENT_ROWS
            .iter()
            .map(|&(dno, mgr, bud)| {
                tup(vec![
                    a(dno),
                    a(mgr),
                    rel(projects_of(dno)),
                    a(bud),
                    rel(equip_of(dno)),
                ])
            })
            .collect(),
    )
}

/// Just department 314 (the complex object used by Figures 6–8).
pub fn department_314() -> Tuple {
    departments_value().tuples.swap_remove(0)
}

// ---------------------------------------------------------------------
// Table 6: REPORTS
// ---------------------------------------------------------------------

/// Table 6: the REPORTS NF² table with an ordered AUTHORS list.
/// Report 0179 has 'Jones A.' as *first* author (Example 8 must return
/// exactly this report); 0291 is co-authored by Jones (third) and has
/// "Minicomputers" in the title so the §5 text query `*comput*` AND
/// author Jones returns exactly 0291.
pub fn reports_value() -> TableValue {
    let report = |repno: &str, authors: &[&str], title: &str, descr: &[(&str, f64)]| {
        tup(vec![
            a(repno),
            list(authors.iter().map(|&n| tup(vec![a(n)])).collect()),
            crate::value::Value::Atom(Atom::Text(title.to_string())),
            rel(descr
                .iter()
                .map(|&(w, wt)| tup(vec![a(w), a(wt)]))
                .collect()),
        ])
    };
    TableValue::with_tuples(
        TableKind::Relation,
        vec![
            report(
                "0179",
                &["Jones A."],
                "Concurrency and Concurrency Control",
                &[
                    ("Concurrency", 0.6),
                    ("Recovery", 0.3),
                    ("Distribution", 0.1),
                ],
            ),
            report(
                "0189",
                &["Tevla H.", "Abraham C."],
                "Text Editing and String Search",
                &[("Editing", 0.7), ("Formatting", 0.3)],
            ),
            report(
                "0291",
                &["Pool A.V.", "Meyer P.", "Jones A."],
                "Branch and Bound Optimization on Minicomputers",
                &[("Optimization", 0.6), ("Garbage Collection", 0.4)],
            ),
        ],
    )
}

// ---------------------------------------------------------------------
// Table 7: expected result of Example 4
// ---------------------------------------------------------------------

/// Table 7: the flat table produced by Example 4's unnest query —
/// (DNO, MGRNO, PNO, PNAME, EMPNO, FUNCTION), one row per member.
pub fn table7_value() -> TableValue {
    let mgr_of = |dno: i64| {
        DEPARTMENT_ROWS
            .iter()
            .find(|&&(d, _, _)| d == dno)
            .map(|&(_, m, _)| m)
            .expect("department exists")
    };
    let proj_of = |pno: i64| {
        PROJECT_ROWS
            .iter()
            .find(|&&(p, _, _)| p == pno)
            .map(|&(_, n, _)| n)
            .expect("project exists")
    };
    TableValue::with_tuples(
        TableKind::Relation,
        MEMBER_ROWS
            .iter()
            .map(|&(emp, pno, dno, func)| {
                tup(vec![
                    a(dno),
                    a(mgr_of(dno)),
                    a(pno),
                    a(proj_of(pno)),
                    a(emp),
                    a(func),
                ])
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Historical state for the ASOF example (§5)
// ---------------------------------------------------------------------

/// The projects department 314 had on 1984-01-15, per the paper's ASOF
/// example — a historical state that differs from the current Table 5:
/// project 23 "HEAP" did not exist yet, and a since-cancelled project
/// 11 "DOC" was still running. (The paper gives the query but not the
/// historical data; this fixture makes the query's answer observable.)
pub fn departments_314_projects_asof_1984() -> TableValue {
    TableValue::with_tuples(
        TableKind::Relation,
        vec![
            tup(vec![
                a(17),
                a("CGA"),
                rel(vec![
                    tup(vec![a(39582), a("Leader")]),
                    tup(vec![a(56019), a("Consultant")]),
                ]),
            ]),
            tup(vec![
                a(11),
                a("DOC"),
                rel(vec![tup(vec![a(69011), a("Leader")])]),
            ]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;

    #[test]
    fn department_314_matches_paper_text() {
        let d314 = department_314();
        // (DNO 314, MGRNO 56194, BUDGET 320000)
        assert_eq!(d314.fields[0].as_atom().unwrap().as_int(), Some(314));
        assert_eq!(d314.fields[1].as_atom().unwrap().as_int(), Some(56194));
        assert_eq!(d314.fields[3].as_atom().unwrap().as_int(), Some(320_000));
        // two projects: 17 CGA (3 members), 23 HEAP (4 members)
        let projects = d314.fields[2].as_table().unwrap();
        assert_eq!(projects.len(), 2);
        let p17 = &projects.tuples[0];
        assert_eq!(p17.fields[0].as_atom().unwrap().as_int(), Some(17));
        assert_eq!(p17.fields[1].as_atom().unwrap().as_str(), Some("CGA"));
        assert_eq!(p17.fields[2].as_table().unwrap().len(), 3);
        // EQUIP: three flat subobjects — 3278, PC/AT, PC (§4.1)
        let equip = d314.fields[4].as_table().unwrap();
        let types: Vec<&str> = equip
            .tuples
            .iter()
            .map(|t| t.fields[1].as_atom().unwrap().as_str().unwrap())
            .collect();
        assert_eq!(types, vec!["3278", "PC/AT", "PC"]);
    }

    #[test]
    fn exactly_three_consultants_as_in_sec42() {
        let consultants: Vec<i64> = MEMBER_ROWS
            .iter()
            .filter(|r| r.3 == "Consultant")
            .map(|r| r.0)
            .collect();
        assert_eq!(consultants, vec![56019, 89921, 44512]);
    }

    #[test]
    fn departments_with_consultant_are_314_and_218() {
        let mut dnos: Vec<i64> = MEMBER_ROWS
            .iter()
            .filter(|r| r.3 == "Consultant")
            .map(|r| r.2)
            .collect();
        dnos.sort_unstable();
        dnos.dedup();
        assert_eq!(dnos, vec![218, 314]);
    }

    #[test]
    fn projects_with_consultant_are_17_and_25() {
        let mut pnos: Vec<i64> = MEMBER_ROWS
            .iter()
            .filter(|r| r.3 == "Consultant")
            .map(|r| r.1)
            .collect();
        pnos.sort_unstable();
        pnos.dedup();
        assert_eq!(pnos, vec![17, 25]);
    }

    #[test]
    fn departments_with_pc_at_are_314_and_218() {
        let mut dnos: Vec<i64> = EQUIP_ROWS
            .iter()
            .filter(|r| r.2 == "PC/AT")
            .map(|r| r.0)
            .collect();
        dnos.sort_unstable();
        assert_eq!(dnos, vec![218, 314]);
    }

    #[test]
    fn every_member_and_manager_has_an_employee_row() {
        for (emp, _, _, _) in MEMBER_ROWS {
            assert!(
                EMPLOYEE_ROWS.iter().any(|r| r.0 == emp),
                "member {emp} missing from EMPLOYEES-1NF"
            );
        }
        for (_, mgr, _) in DEPARTMENT_ROWS {
            assert!(
                EMPLOYEE_ROWS.iter().any(|r| r.0 == mgr),
                "manager {mgr} missing from EMPLOYEES-1NF"
            );
        }
        assert_eq!(EMPLOYEE_ROWS.len(), MEMBER_ROWS.len() + 3);
    }

    #[test]
    fn employee_numbers_unique_as_paper_assumes() {
        let mut emps: Vec<i64> = EMPLOYEE_ROWS.iter().map(|r| r.0).collect();
        emps.sort_unstable();
        let before = emps.len();
        emps.dedup();
        assert_eq!(before, emps.len());
    }

    #[test]
    fn table7_has_one_row_per_member() {
        let t7 = table7_value();
        assert_eq!(t7.len(), MEMBER_ROWS.len());
        t7.validate(&table7_schema()).unwrap();
    }

    #[test]
    fn reports_jones_first_author_only_in_0179() {
        let reports = reports_value();
        let firsts: Vec<(&str, &str)> = reports
            .tuples
            .iter()
            .map(|t| {
                (
                    t.fields[0].as_atom().unwrap().as_str().unwrap(),
                    t.fields[1].as_table().unwrap().tuples[0].fields[0]
                        .as_atom()
                        .unwrap()
                        .as_str()
                        .unwrap(),
                )
            })
            .collect();
        let jones_first: Vec<&str> = firsts
            .iter()
            .filter(|(_, n)| *n == "Jones A.")
            .map(|(r, _)| *r)
            .collect();
        assert_eq!(jones_first, vec!["0179"]);
    }

    #[test]
    fn text_query_fixture_supports_sec5_example() {
        // `*comput*` in TITLE AND Jones an author → exactly 0291.
        let reports = reports_value();
        let hits: Vec<&str> = reports
            .tuples
            .iter()
            .filter(|t| {
                let title = t.fields[2].as_atom().unwrap().as_str().unwrap();
                let authors = t.fields[1].as_table().unwrap();
                title.to_lowercase().contains("comput")
                    && authors
                        .tuples
                        .iter()
                        .any(|at| at.fields[0].as_atom().unwrap().as_str() == Some("Jones A."))
            })
            .map(|t| t.fields[0].as_atom().unwrap().as_str().unwrap())
            .collect();
        assert_eq!(hits, vec!["0291"]);
    }

    #[test]
    fn nested_schema_paths_resolve() {
        let s = departments_schema();
        assert!(s.resolve_subtable(&Path::parse("PROJECTS.MEMBERS")).is_ok());
        assert!(s.resolve_subtable(&Path::parse("EQUIP")).is_ok());
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn asof_fixture_differs_from_current() {
        let old = departments_314_projects_asof_1984();
        let cur = departments_value();
        let cur_projects = cur.tuples[0].fields[2].as_table().unwrap();
        assert!(!old.semantically_eq(cur_projects));
        // Old state has project 11 "DOC"; current does not.
        assert!(old
            .tuples
            .iter()
            .any(|t| t.fields[0].as_atom().unwrap().as_int() == Some(11)));
        assert!(!cur_projects
            .tuples
            .iter()
            .any(|t| t.fields[0].as_atom().unwrap().as_int() == Some(11)));
    }
}
