//! # aim2-model — the extended NF² data model
//!
//! This crate implements the logical data model of the AIM-II prototype
//! (Dadam et al., SIGMOD 1986, Section 2): **extended NF² relations**, a
//! generalization of the relational model in which attribute values may
//! themselves be *tables* — either unordered (**relations**, written `{ }`)
//! or ordered (**lists**, written `< >`) — nested to arbitrary depth.
//! Flat first-normal-form (1NF) tables are the special case with only
//! atomic attributes.
//!
//! The crate is deliberately free of any storage concern: it defines
//! [`schema::TableSchema`] (structure), [`value::Value`] /
//! [`value::TableValue`] (instances), atom encoding used by the storage
//! layer, the paper's bracket-notation rendering, and the exact fixture
//! data of the paper's Tables 1–8.

pub mod atom;
pub mod encode;
pub mod error;
pub mod fixtures;
pub mod path;
pub mod render;
pub mod schema;
pub mod value;

pub use atom::{Atom, AtomType, Date};
pub use error::ModelError;
pub use path::Path;
pub use schema::{AttrDef, AttrKind, TableKind, TableSchema};
pub use value::{TableValue, Tuple, Value};
