//! Property tests for the index crate: the persistent B+-tree agrees
//! with `std::collections::BTreeMap` under arbitrary operation
//! sequences, and the order-preserving key encoding agrees with the
//! model's atom comparison.

use aim2_index::btree::BTree;
use aim2_index::keyenc::encode_key;
use aim2_model::Atom;
use aim2_storage::buffer::BufferPool;
use aim2_storage::disk::MemDisk;
use aim2_storage::segment::Segment;
use aim2_storage::stats::Stats;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn seg() -> Segment {
    Segment::new(BufferPool::new(
        Box::new(MemDisk::new(512)),
        64,
        Stats::new(),
    ))
}

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Remove(u16),
    Get(u16),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_agrees_with_btreemap(ops in prop::collection::vec(op(), 1..200)) {
        let mut s = seg();
        let mut tree = BTree::create_with_order(&mut s, 4).unwrap(); // deep trees
        let mut model: BTreeMap<u16, u8> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    tree.put(&mut s, &k.to_be_bytes(), &[v]).unwrap();
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let was = tree.remove(&mut s, &k.to_be_bytes()).unwrap();
                    prop_assert_eq!(was, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    let got = tree.get(&mut s, &k.to_be_bytes()).unwrap();
                    prop_assert_eq!(got, model.get(&k).map(|v| vec![*v]));
                }
            }
        }
        // Full iteration agreement, in order.
        let all = tree.range(&mut s, None, None).unwrap();
        prop_assert_eq!(all.len(), model.len());
        for ((k, v), (mk, mv)) in all.iter().zip(model.iter()) {
            prop_assert_eq!(k.as_slice(), mk.to_be_bytes());
            prop_assert_eq!(v.as_slice(), &[*mv]);
        }
        // Range agreement on a probe window.
        let lo = 100u16.to_be_bytes();
        let hi = 300u16.to_be_bytes();
        let got = tree.range(&mut s, Some(&lo), Some(&hi)).unwrap().len();
        let want = model.range(100..=300).count();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn keyenc_order_matches_atom_order_ints(a in any::<i64>(), b in any::<i64>()) {
        let (ka, kb) = (encode_key(&Atom::Int(a)), encode_key(&Atom::Int(b)));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    #[test]
    fn keyenc_order_matches_atom_order_doubles(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let (ka, kb) = (encode_key(&Atom::Double(a)), encode_key(&Atom::Double(b)));
        prop_assert_eq!(ka.cmp(&kb), a.partial_cmp(&b).unwrap());
    }

    #[test]
    fn keyenc_order_matches_atom_order_strings(a in "[ -~]{0,16}", b in "[ -~]{0,16}") {
        let (ka, kb) = (
            encode_key(&Atom::Str(a.clone())),
            encode_key(&Atom::Str(b.clone())),
        );
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    #[test]
    fn keyenc_int_double_cross_order(i in -1_000_000i64..1_000_000, f in -1e6f64..1e6) {
        let (ki, kf) = (encode_key(&Atom::Int(i)), encode_key(&Atom::Double(f)));
        let want = (i as f64).partial_cmp(&f).unwrap();
        // Equal-valued int/double encode equal; otherwise strict order.
        if (i as f64) == f {
            // Tie broken consistently (both roundtrip to the same i64).
            prop_assert_eq!(ki, kf);
        } else {
            prop_assert_eq!(ki.cmp(&kf), want);
        }
    }
}
