//! # aim2-index — access paths for NF² tables
//!
//! Implements Sections 4.2 and 4.3 of Dadam et al., SIGMOD 1986:
//!
//! * a persistent B+-tree ([`btree`]) over order-preserving key bytes
//!   ([`keyenc`]), storing `<key, address list>` entries exactly as the
//!   paper describes ("conceptually, an index entry is an ordered pair
//!   <key, address list>");
//! * the three **address schemes** the paper analyzes ([`address`]):
//!   data-subtuple TIDs, root-MD-subtuple TIDs, and *hierarchical
//!   addresses* — in both the naive MD-pointer-path form (Fig 7a) and
//!   the final data-subtuple-path form (Fig 7b) whose components
//!   "identify complex subobjects, not subtables";
//! * [`index::NfIndex`], which builds and maintains an index on any
//!   attribute path of an NF² table under a chosen scheme, and resolves
//!   lookups with the access counters that make the paper's
//!   duplicate-visit and scan arguments measurable;
//! * **tuple names** ([`tname`]): system-generated hierarchical keys for
//!   complex objects, subobjects *and subtables* (§4.3), implemented
//!   "very similar to the implementation of addresses in index entries".

pub mod address;
pub mod btree;
pub mod error;
pub mod index;
pub mod keyenc;
pub mod tname;

pub use address::{HierAddr, IndexAddress, MdPathAddr, Scheme};
pub use error::IndexError;
pub use index::NfIndex;
pub use tname::TupleName;

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, IndexError>;
