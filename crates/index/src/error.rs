//! Error type for the index crate.

use std::fmt;

/// Errors raised by index structures and address resolution.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying storage failed.
    Storage(aim2_storage::StorageError),
    /// A stored index node failed to decode.
    Corrupt(String),
    /// The indexed attribute path does not exist / is not atomic.
    BadAttribute(String),
    /// An address of the wrong scheme was handed to a resolver, or a
    /// subtable t-name was used as an index address (§4.3 forbids this).
    SchemeMismatch(&'static str),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::Corrupt(m) => write!(f, "corrupt index structure: {m}"),
            IndexError::BadAttribute(p) => write!(f, "cannot index attribute `{p}`"),
            IndexError::SchemeMismatch(m) => write!(f, "address scheme mismatch: {m}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aim2_storage::StorageError> for IndexError {
    fn from(e: aim2_storage::StorageError) -> Self {
        IndexError::Storage(e)
    }
}

impl From<aim2_model::ModelError> for IndexError {
    fn from(e: aim2_model::ModelError) -> Self {
        IndexError::Storage(aim2_storage::StorageError::Model(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = IndexError::BadAttribute("PROJECTS".into());
        assert!(e.to_string().contains("PROJECTS"));
    }
}
