//! Tuple names (§4.3): system-generated hierarchical keys.
//!
//! AIM-II extends the NF² model with *tuple names* — system keys for
//! "subtuple or data sharing" across hierarchies and for handing stable
//! references to application programs. The paper plans to implement them
//! "very similar to the implementation of addresses in index entries"
//! (hierarchical addresses), with one deliberate difference: there are
//! also t-names **for subtables** (W and X in Fig 8), and "these
//! 'special' t-names are not allowed as i-addresses".
//!
//! (The paper notes t-names were *not yet implemented* in the 1986
//! prototype; this module realizes the design it sketches.)

use crate::address::{HierAddr, IndexAddress};
use crate::error::IndexError;
use crate::Result;
use aim2_model::{TableSchema, TableValue, Tuple};
use aim2_storage::object::{ElemLoc, ObjectHandle, ObjectStore};
use aim2_storage::tid::{MiniTid, Tid};
use std::fmt;

/// A system-generated tuple name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TupleName {
    /// A whole complex object: "simply the address of the root MD
    /// subtuple" (U in Fig 8).
    Object { root: Tid },
    /// A (complex or flat) subobject: the hierarchical address of the
    /// data subtuple holding its first-level atomic values (V and T in
    /// Fig 8).
    Subobject { root: Tid, comps: Vec<MiniTid> },
    /// A subtable: the address of its MD subtuple beneath the addressed
    /// element (W and X in Fig 8). **Not** a valid index address.
    Subtable {
        root: Tid,
        comps: Vec<MiniTid>,
        md: MiniTid,
    },
}

impl TupleName {
    /// T-name of a whole complex object.
    pub fn of_object(handle: ObjectHandle) -> TupleName {
        TupleName::Object { root: handle.0 }
    }

    /// T-name of the (sub)object at `loc` inside `handle`.
    pub fn of_subobject(
        os: &mut ObjectStore,
        schema: &TableSchema,
        handle: ObjectHandle,
        loc: &ElemLoc,
    ) -> Result<TupleName> {
        if loc.steps.is_empty() {
            return Ok(TupleName::of_object(handle));
        }
        let (data, mut comps) = os.resolve_elem_addr(schema, handle, loc)?;
        comps.push(data);
        Ok(TupleName::Subobject {
            root: handle.0,
            comps,
        })
    }

    /// T-name of the subtable `attr_idx` of the (sub)object at `loc`.
    pub fn of_subtable(
        os: &mut ObjectStore,
        schema: &TableSchema,
        handle: ObjectHandle,
        loc: &ElemLoc,
        attr_idx: usize,
    ) -> Result<TupleName> {
        let md = os.resolve_subtable_md(schema, handle, loc, attr_idx)?;
        let comps = if loc.steps.is_empty() {
            Vec::new()
        } else {
            let (data, mut anc) = os.resolve_elem_addr(schema, handle, loc)?;
            anc.push(data);
            anc
        };
        Ok(TupleName::Subtable {
            root: handle.0,
            comps,
            md,
        })
    }

    /// The root MD subtuple TID every t-name begins with.
    pub fn root(&self) -> Tid {
        match self {
            TupleName::Object { root }
            | TupleName::Subobject { root, .. }
            | TupleName::Subtable { root, .. } => *root,
        }
    }

    /// Convert to an index address — allowed for objects and subobjects;
    /// subtable t-names are rejected, as §4.3 requires ("these special
    /// t-names are not allowed as i-addresses").
    pub fn as_index_address(&self) -> Result<IndexAddress> {
        match self {
            TupleName::Object { root } => Ok(IndexAddress::Root(*root)),
            TupleName::Subobject { root, comps } => Ok(IndexAddress::Hier(HierAddr {
                root: *root,
                comps: comps.clone(),
            })),
            TupleName::Subtable { .. } => Err(IndexError::SchemeMismatch(
                "subtable tuple names are not valid index addresses (§4.3)",
            )),
        }
    }
}

/// What a tuple name dereferences to.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolved {
    /// An object or subobject.
    Tuple(Tuple),
    /// A subtable.
    Table(TableValue),
}

impl TupleName {
    /// Dereference this t-name against the store that issued it.
    pub fn resolve(&self, os: &mut ObjectStore, schema: &TableSchema) -> Result<Resolved> {
        match self {
            TupleName::Object { root } => Ok(Resolved::Tuple(
                os.read_object(schema, ObjectHandle(*root))?,
            )),
            TupleName::Subobject { root, comps } => Ok(Resolved::Tuple(
                os.materialize_by_data_path(schema, ObjectHandle(*root), comps)?,
            )),
            TupleName::Subtable { root, comps, md } => Ok(Resolved::Table(
                os.materialize_subtable_md(schema, ObjectHandle(*root), comps, *md)?,
            )),
        }
    }
}

impl fmt::Display for TupleName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TupleName::Object { root } => write!(f, "t:{root}"),
            TupleName::Subobject { root, comps } => {
                write!(f, "t:{root}")?;
                for c in comps {
                    write!(f, ".{c}")?;
                }
                Ok(())
            }
            TupleName::Subtable { root, comps, md } => {
                write!(f, "t:{root}")?;
                for c in comps {
                    write!(f, ".{c}")?;
                }
                write!(f, ".[{md}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::fixtures;
    use aim2_model::Atom;
    use aim2_storage::buffer::BufferPool;
    use aim2_storage::disk::MemDisk;
    use aim2_storage::minidir::LayoutKind;
    use aim2_storage::segment::Segment;
    use aim2_storage::stats::Stats;

    fn setup() -> (TableSchema, ObjectStore, ObjectHandle) {
        let schema = fixtures::departments_schema();
        let pool = BufferPool::new(Box::new(MemDisk::new(1024)), 64, Stats::new());
        let mut os = ObjectStore::new(Segment::new(pool), LayoutKind::Ss3);
        let h = os
            .insert_object(&schema, &fixtures::department_314())
            .unwrap();
        (schema, os, h)
    }

    #[test]
    fn fig8_u_object_tname() {
        let (schema, mut os, h) = setup();
        let u = TupleName::of_object(h);
        assert_eq!(u.root(), h.0);
        let Resolved::Tuple(t) = u.resolve(&mut os, &schema).unwrap() else {
            panic!()
        };
        assert_eq!(t, fixtures::department_314());
    }

    #[test]
    fn fig8_v_complex_subobject_tname() {
        // V = t-name for project 17 (element 0 of PROJECTS, attr 2).
        let (schema, mut os, h) = setup();
        let v =
            TupleName::of_subobject(&mut os, &schema, h, &ElemLoc::object().then(2, 0)).unwrap();
        let TupleName::Subobject { comps, .. } = &v else {
            panic!()
        };
        assert_eq!(comps.len(), 1, "V = V1.V2: root TID + one data subtuple");
        let Resolved::Tuple(t) = v.resolve(&mut os, &schema).unwrap() else {
            panic!()
        };
        assert_eq!(t.fields[0].as_atom().unwrap().as_int(), Some(17));
        assert_eq!(t.fields[1].as_atom().unwrap().as_str(), Some("CGA"));
        // The whole subobject, members included.
        assert_eq!(t.fields[2].as_table().unwrap().len(), 3);
    }

    #[test]
    fn fig8_t_flat_subobject_tname() {
        // T = t-name for the '56019 Consultant' member (project 17,
        // member element 1).
        let (schema, mut os, h) = setup();
        let loc = ElemLoc::object().then(2, 0).then(2, 1);
        let t = TupleName::of_subobject(&mut os, &schema, h, &loc).unwrap();
        let TupleName::Subobject { comps, .. } = &t else {
            panic!()
        };
        assert_eq!(comps.len(), 2, "T = T1.T2.T3");
        let Resolved::Tuple(tu) = t.resolve(&mut os, &schema).unwrap() else {
            panic!()
        };
        assert_eq!(tu.fields[0].as_atom().unwrap(), &Atom::Int(56019));
        assert_eq!(
            tu.fields[1].as_atom().unwrap(),
            &Atom::Str("Consultant".into())
        );
    }

    #[test]
    fn fig8_w_and_x_subtable_tnames() {
        let (schema, mut os, h) = setup();
        // W = t-name for the PROJECTS subtable of dept 314.
        let w = TupleName::of_subtable(&mut os, &schema, h, &ElemLoc::object(), 2).unwrap();
        let Resolved::Table(projects) = w.resolve(&mut os, &schema).unwrap() else {
            panic!()
        };
        assert_eq!(projects.len(), 2);
        // X = t-name for the MEMBERS subtable of project 17.
        let x =
            TupleName::of_subtable(&mut os, &schema, h, &ElemLoc::object().then(2, 0), 2).unwrap();
        let Resolved::Table(members) = x.resolve(&mut os, &schema).unwrap() else {
            panic!()
        };
        assert_eq!(members.len(), 3);
        assert_ne!(w, x);
    }

    #[test]
    fn subtable_tnames_rejected_as_index_addresses() {
        let (schema, mut os, h) = setup();
        let w = TupleName::of_subtable(&mut os, &schema, h, &ElemLoc::object(), 2).unwrap();
        assert!(matches!(
            w.as_index_address(),
            Err(IndexError::SchemeMismatch(_))
        ));
        // Object and subobject t-names convert fine.
        assert!(TupleName::of_object(h).as_index_address().is_ok());
        let v =
            TupleName::of_subobject(&mut os, &schema, h, &ElemLoc::object().then(2, 0)).unwrap();
        assert!(v.as_index_address().is_ok());
    }

    #[test]
    fn tnames_survive_object_move() {
        // Mini-TID-based names must stay valid across page-level moves.
        let (schema, mut os, h) = setup();
        let loc = ElemLoc::object().then(2, 0).then(2, 1);
        let t = TupleName::of_subobject(&mut os, &schema, h, &loc).unwrap();
        os.move_object(h).unwrap();
        let Resolved::Tuple(tu) = t.resolve(&mut os, &schema).unwrap() else {
            panic!()
        };
        assert_eq!(tu.fields[0].as_atom().unwrap(), &Atom::Int(56019));
    }

    #[test]
    fn display_forms() {
        let (schema, mut os, h) = setup();
        let v =
            TupleName::of_subobject(&mut os, &schema, h, &ElemLoc::object().then(2, 0)).unwrap();
        let s = v.to_string();
        assert!(s.starts_with("t:P"), "{s}");
        let w = TupleName::of_subtable(&mut os, &schema, h, &ElemLoc::object(), 2).unwrap();
        assert!(w.to_string().contains('['), "subtable marker");
        let _ = schema;
    }
}
