//! NF² attribute indexes.
//!
//! An [`NfIndex`] indexes one atomic attribute of an NF² table at any
//! nesting depth — e.g. `PROJECTS.MEMBERS.FUNCTION` on DEPARTMENTS, the
//! running example of §4.2. Entries are `<key, address list>` pairs in a
//! [`crate::btree::BTree`]; the address representation is the chosen
//! [`Scheme`], letting benches and the optimizer contrast what each
//! scheme can and cannot answer.

use crate::address::{HierAddr, IndexAddress, MdPathAddr, Scheme};
use crate::btree::BTree;
use crate::error::IndexError;
use crate::keyenc::encode_key;
use crate::Result;
use aim2_model::{Atom, Path, TableSchema};
use aim2_storage::object::{ObjectHandle, ObjectStore};
use aim2_storage::segment::Segment;

/// An index on one (possibly deeply nested) atomic attribute.
pub struct NfIndex {
    seg: Segment,
    tree: BTree,
    scheme: Scheme,
    /// Path of the subtable level holding the attribute (empty for
    /// first-level attributes).
    parent_path: Path,
    /// The indexed attribute's name.
    attr: String,
    /// Its position among the atomic attributes of that level (the
    /// position inside the data subtuple).
    atom_pos: usize,
}

impl NfIndex {
    /// Create an empty index on `attr_path` (e.g.
    /// `PROJECTS.MEMBERS.FUNCTION`) of `schema`, storing addresses in
    /// `scheme`.
    pub fn create(
        mut seg: Segment,
        schema: &TableSchema,
        attr_path: &Path,
        scheme: Scheme,
    ) -> Result<NfIndex> {
        let (parent_path, attr, atom_pos) = Self::resolve_attr(schema, attr_path)?;
        let tree = BTree::create(&mut seg)?;
        Ok(NfIndex {
            seg,
            tree,
            scheme,
            parent_path,
            attr,
            atom_pos,
        })
    }

    /// Validate `attr_path` against `schema` and locate the attribute's
    /// data-subtuple position.
    fn resolve_attr(schema: &TableSchema, attr_path: &Path) -> Result<(Path, String, usize)> {
        let (parent_path, attr) = attr_path
            .split_last()
            .ok_or_else(|| IndexError::BadAttribute("<empty path>".into()))?;
        let level = if parent_path.is_root() {
            schema
        } else {
            schema
                .resolve_subtable(&parent_path)
                .map_err(|_| IndexError::BadAttribute(attr_path.to_string()))?
        };
        let attr_idx = level
            .attr_index(attr)
            .ok_or_else(|| IndexError::BadAttribute(attr_path.to_string()))?;
        if !level.attrs[attr_idx].kind.is_atomic() {
            return Err(IndexError::BadAttribute(format!(
                "{attr_path} is table-valued; only atomic attributes are indexable"
            )));
        }
        let atom_pos = level
            .atomic_indices()
            .iter()
            .position(|&i| i == attr_idx)
            .expect("atomic attr must appear in atomic_indices");
        Ok((parent_path, attr.to_string(), atom_pos))
    }

    /// Re-attach to an existing index (database restart): `root` and
    /// `order` come from the persisted catalog; the entries live in the
    /// segment's pages already.
    pub fn reopen(
        seg: Segment,
        schema: &TableSchema,
        attr_path: &Path,
        scheme: Scheme,
        root: aim2_storage::tid::Tid,
        order: usize,
    ) -> Result<NfIndex> {
        let (parent_path, attr, atom_pos) = Self::resolve_attr(schema, attr_path)?;
        Ok(NfIndex {
            seg,
            tree: BTree::open(root, order),
            scheme,
            parent_path,
            attr,
            atom_pos,
        })
    }

    /// Root TID and order of the underlying B+-tree (persist these to
    /// reopen the index).
    pub fn tree_root(&self) -> (aim2_storage::tid::Tid, usize) {
        (self.tree.root(), self.tree.order())
    }

    /// The indexed attribute path.
    pub fn attr_path(&self) -> Path {
        self.parent_path.child(&self.attr)
    }

    /// The address scheme in use.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The index's own segment (for I/O accounting).
    pub fn segment_mut(&mut self) -> &mut Segment {
        &mut self.seg
    }

    /// Build entries for every object currently in `os`.
    pub fn build(&mut self, os: &mut ObjectStore, schema: &TableSchema) -> Result<()> {
        for handle in os.handles()? {
            self.index_object(os, schema, handle)?;
        }
        Ok(())
    }

    /// Collect `(key atom, address)` pairs for one object under the
    /// index's scheme.
    fn entries_for(
        &self,
        os: &mut ObjectStore,
        schema: &TableSchema,
        handle: ObjectHandle,
    ) -> Result<Vec<(Atom, IndexAddress)>> {
        let mut out = Vec::new();
        match self.scheme {
            Scheme::MdPath => {
                for e in os.walk_data_md_paths(schema, handle)? {
                    if e.attr_path == self.parent_path {
                        let key = e
                            .atoms
                            .get(self.atom_pos)
                            .ok_or_else(|| {
                                IndexError::Corrupt("data subtuple short on atoms".into())
                            })?
                            .clone();
                        out.push((
                            key,
                            IndexAddress::MdPath(MdPathAddr {
                                root: handle.0,
                                md_path: e.md_path,
                                data: e.data,
                            }),
                        ));
                    }
                }
            }
            _ => {
                for e in os.walk_data(schema, handle)? {
                    if e.attr_path == self.parent_path {
                        let key = e
                            .atoms
                            .get(self.atom_pos)
                            .ok_or_else(|| {
                                IndexError::Corrupt("data subtuple short on atoms".into())
                            })?
                            .clone();
                        let addr = match self.scheme {
                            Scheme::DataTid => {
                                IndexAddress::Data(os.data_subtuple_tid(handle, e.data)?)
                            }
                            Scheme::RootTid => IndexAddress::Root(handle.0),
                            Scheme::Hierarchical => {
                                let mut comps = e.ancestors.clone();
                                comps.push(e.data);
                                IndexAddress::Hier(HierAddr {
                                    root: handle.0,
                                    comps,
                                })
                            }
                            Scheme::MdPath => unreachable!(),
                        };
                        out.push((key, addr));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Add all of one object's values to the index.
    pub fn index_object(
        &mut self,
        os: &mut ObjectStore,
        schema: &TableSchema,
        handle: ObjectHandle,
    ) -> Result<()> {
        for (key, addr) in self.entries_for(os, schema, handle)? {
            self.add_entry(&key, addr)?;
        }
        Ok(())
    }

    /// Remove all of one object's values from the index (call *before*
    /// deleting or rewriting the object).
    pub fn unindex_object(
        &mut self,
        os: &mut ObjectStore,
        schema: &TableSchema,
        handle: ObjectHandle,
    ) -> Result<()> {
        for (key, addr) in self.entries_for(os, schema, handle)? {
            self.remove_entry(&key, &addr)?;
        }
        Ok(())
    }

    /// Insert one `<key, address>` pair. Duplicate addresses are kept:
    /// the paper's root-TID discussion relies on the index *showing*
    /// that "department 218 is referenced twice" so the query processor
    /// can avoid multiple accesses — deduplication is query-side.
    pub fn add_entry(&mut self, key: &Atom, addr: IndexAddress) -> Result<()> {
        let kb = encode_key(key);
        let mut list = match self.tree.get(&mut self.seg, &kb)? {
            Some(bytes) => IndexAddress::decode_list(&bytes)?,
            None => Vec::new(),
        };
        list.push(addr);
        self.tree
            .put(&mut self.seg, &kb, &IndexAddress::encode_list(&list))?;
        Ok(())
    }

    /// Remove one occurrence of a `<key, address>` pair; returns true if
    /// one was present.
    pub fn remove_entry(&mut self, key: &Atom, addr: &IndexAddress) -> Result<bool> {
        let kb = encode_key(key);
        let Some(bytes) = self.tree.get(&mut self.seg, &kb)? else {
            return Ok(false);
        };
        let mut list = IndexAddress::decode_list(&bytes)?;
        let before = list.len();
        if let Some(i) = list.iter().position(|a| a == addr) {
            list.remove(i);
        }
        if list.len() == before {
            return Ok(false);
        }
        if list.is_empty() {
            self.tree.remove(&mut self.seg, &kb)?;
        } else {
            self.tree
                .put(&mut self.seg, &kb, &IndexAddress::encode_list(&list))?;
        }
        Ok(true)
    }

    /// All addresses for exactly `key`.
    pub fn lookup(&mut self, key: &Atom) -> Result<Vec<IndexAddress>> {
        let kb = encode_key(key);
        match self.tree.get(&mut self.seg, &kb)? {
            Some(bytes) => IndexAddress::decode_list(&bytes),
            None => Ok(Vec::new()),
        }
    }

    /// All addresses for keys in `[lo, hi]` (either bound optional).
    pub fn lookup_range(
        &mut self,
        lo: Option<&Atom>,
        hi: Option<&Atom>,
    ) -> Result<Vec<IndexAddress>> {
        let lob = lo.map(encode_key);
        let hib = hi.map(encode_key);
        let hits = self
            .tree
            .range(&mut self.seg, lob.as_deref(), hib.as_deref())?;
        let mut out = Vec::new();
        for (_, bytes) in hits {
            out.extend(IndexAddress::decode_list(&bytes)?);
        }
        Ok(out)
    }

    /// Number of distinct keys.
    pub fn key_count(&mut self) -> Result<usize> {
        self.tree.len(&mut self.seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::fixtures;
    use aim2_storage::buffer::BufferPool;
    use aim2_storage::disk::MemDisk;
    use aim2_storage::minidir::LayoutKind;
    use aim2_storage::stats::Stats;

    fn seg() -> Segment {
        Segment::new(BufferPool::new(
            Box::new(MemDisk::new(1024)),
            64,
            Stats::new(),
        ))
    }

    fn departments_store() -> (TableSchema, ObjectStore, Vec<ObjectHandle>) {
        let schema = fixtures::departments_schema();
        let mut os = ObjectStore::new(seg(), LayoutKind::Ss3);
        let handles = fixtures::departments_value()
            .tuples
            .iter()
            .map(|t| os.insert_object(&schema, t).unwrap())
            .collect();
        (schema, os, handles)
    }

    fn function_index(scheme: Scheme, os: &mut ObjectStore, schema: &TableSchema) -> NfIndex {
        let mut idx = NfIndex::create(
            seg(),
            schema,
            &Path::parse("PROJECTS.MEMBERS.FUNCTION"),
            scheme,
        )
        .unwrap();
        idx.build(os, schema).unwrap();
        idx
    }

    #[test]
    fn consultant_lookup_finds_three_members() {
        let (schema, mut os, _) = departments_store();
        for scheme in Scheme::ALL {
            let mut idx = function_index(scheme, &mut os, &schema);
            let hits = idx.lookup(&Atom::Str("Consultant".into())).unwrap();
            assert_eq!(hits.len(), 3, "scheme {scheme}");
        }
    }

    #[test]
    fn root_scheme_shows_dept_218_referenced_twice() {
        let (schema, mut os, handles) = departments_store();
        let mut idx = function_index(Scheme::RootTid, &mut os, &schema);
        let hits = idx.lookup(&Atom::Str("Consultant".into())).unwrap();
        // §4.2: "it can be seen from the addresses in the index that
        // department 218 is referenced twice" — multiplicity preserved.
        assert_eq!(hits.len(), 3);
        let dup = hits
            .iter()
            .filter(|a| a.root() == Some(handles[1].0))
            .count();
        assert_eq!(dup, 2, "dept 218 twice");
        // Query-side dedup yields exactly {314, 218}.
        let mut roots: Vec<_> = hits.iter().filter_map(|a| a.root()).collect();
        roots.sort();
        roots.dedup();
        assert_eq!(roots, vec![handles[0].0, handles[1].0]);
    }

    #[test]
    fn data_scheme_reaches_values_but_not_objects() {
        let (schema, mut os, _) = departments_store();
        let mut idx = function_index(Scheme::DataTid, &mut os, &schema);
        let hits = idx.lookup(&Atom::Str("Consultant".into())).unwrap();
        for h in &hits {
            assert_eq!(h.root(), None, "data-TID scheme cannot reach DNO (§4.2)");
        }
        // But the member data itself is reachable directly.
        if let IndexAddress::Data(tid) = &hits[0] {
            let bytes = os.segment_mut().read(*tid).unwrap();
            let atoms = aim2_model::encode::decode_atoms(&bytes[..]).unwrap();
            assert_eq!(atoms[1], Atom::Str("Consultant".into()));
        } else {
            panic!("wrong address kind");
        }
    }

    #[test]
    fn hierarchical_scheme_decides_p2_eq_f2_from_index_alone() {
        // §4.2's conjunctive query: PNO=17 AND FUNCTION='Consultant'.
        let (schema, mut os, handles) = departments_store();
        let mut f_idx = function_index(Scheme::Hierarchical, &mut os, &schema);
        let mut p_idx = NfIndex::create(
            seg(),
            &schema,
            &Path::parse("PROJECTS.PNO"),
            Scheme::Hierarchical,
        )
        .unwrap();
        p_idx.build(&mut os, &schema).unwrap();

        let ps = p_idx.lookup(&Atom::Int(17)).unwrap();
        let fs = f_idx.lookup(&Atom::Str("Consultant".into())).unwrap();
        assert_eq!(ps.len(), 1);
        // The join on (root, subobject component): P's target must equal
        // F's ancestor — no data subtuple scanned.
        let mut matched_roots = Vec::new();
        for p in &ps {
            let IndexAddress::Hier(p) = p else { panic!() };
            for f in &fs {
                let IndexAddress::Hier(f) = f else { panic!() };
                if p.root == f.root && f.ancestors().first() == p.target().as_ref() {
                    matched_roots.push(p.root);
                }
            }
        }
        assert_eq!(matched_roots, vec![handles[0].0], "department 314 only");
    }

    #[test]
    fn md_path_scheme_cannot_distinguish_projects() {
        // The Fig 7a flaw: members of project 17 and project 23 share
        // the same PROJECTS-subtable MD component.
        let (schema, mut os, _) = departments_store();
        let mut f_idx = function_index(Scheme::MdPath, &mut os, &schema);
        let mut leaders = f_idx.lookup(&Atom::Str("Leader".into())).unwrap();
        leaders.retain(|a| matches!(a, IndexAddress::MdPath(_)));
        // Leaders 39582 (proj 17) and 90011 (proj 23) in dept 314: their
        // first md-path component (the PROJECTS subtable MD) is equal
        // although they belong to different projects.
        let dept314: Vec<&MdPathAddr> = leaders
            .iter()
            .filter_map(|a| match a {
                IndexAddress::MdPath(m) => Some(m),
                _ => None,
            })
            .filter(|m| {
                // dept 314's two leaders share a root
                leaders
                    .iter()
                    .filter(|b| matches!(b, IndexAddress::MdPath(x) if x.root == m.root))
                    .count()
                    >= 2
            })
            .collect();
        assert!(dept314.len() >= 2);
        assert_eq!(
            dept314[0].md_path[0], dept314[1].md_path[0],
            "same PROJECTS MD component despite different projects — Fig 7a's flaw"
        );
        assert_ne!(dept314[0].data, dept314[1].data);
    }

    #[test]
    fn int_index_and_range_lookup() {
        let (schema, mut os, _) = departments_store();
        let mut idx =
            NfIndex::create(seg(), &schema, &Path::parse("BUDGET"), Scheme::RootTid).unwrap();
        idx.build(&mut os, &schema).unwrap();
        assert_eq!(idx.key_count().unwrap(), 3);
        let mid = idx
            .lookup_range(Some(&Atom::Int(330_000)), Some(&Atom::Int(450_000)))
            .unwrap();
        assert_eq!(mid.len(), 2, "budgets 360k and 440k");
        let all = idx.lookup_range(None, None).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn maintenance_add_and_remove() {
        let (schema, mut os, handles) = departments_store();
        let mut idx = function_index(Scheme::Hierarchical, &mut os, &schema);
        // Remove department 218's entries (as a delete would).
        idx.unindex_object(&mut os, &schema, handles[1]).unwrap();
        let hits = idx.lookup(&Atom::Str("Consultant".into())).unwrap();
        assert_eq!(hits.len(), 1, "only 56019 in dept 314 remains");
        // Re-add.
        idx.index_object(&mut os, &schema, handles[1]).unwrap();
        assert_eq!(
            idx.lookup(&Atom::Str("Consultant".into())).unwrap().len(),
            3
        );
        // Remove a non-existent entry is a no-op signal.
        let bogus = IndexAddress::Root(handles[0].0);
        assert!(!idx
            .remove_entry(&Atom::Str("Nobody".into()), &bogus)
            .unwrap());
    }

    #[test]
    fn reindex_roundtrip_is_idempotent_via_unindex() {
        let (schema, mut os, handles) = departments_store();
        let mut idx = function_index(Scheme::RootTid, &mut os, &schema);
        let before = idx.lookup(&Atom::Str("Leader".into())).unwrap().len();
        // The maintenance protocol: unindex, (mutate), re-index.
        idx.unindex_object(&mut os, &schema, handles[0]).unwrap();
        idx.index_object(&mut os, &schema, handles[0]).unwrap();
        assert_eq!(
            idx.lookup(&Atom::Str("Leader".into())).unwrap().len(),
            before
        );
    }

    #[test]
    fn create_rejects_bad_attributes() {
        let schema = fixtures::departments_schema();
        assert!(matches!(
            NfIndex::create(seg(), &schema, &Path::parse("PROJECTS"), Scheme::RootTid),
            Err(IndexError::BadAttribute(_))
        ));
        assert!(matches!(
            NfIndex::create(seg(), &schema, &Path::parse("NOPE.X"), Scheme::RootTid),
            Err(IndexError::BadAttribute(_))
        ));
        assert!(NfIndex::create(seg(), &schema, &Path::parse("DNO"), Scheme::RootTid).is_ok());
    }

    #[test]
    fn first_level_attribute_hier_addresses() {
        let (schema, mut os, handles) = departments_store();
        let mut idx =
            NfIndex::create(seg(), &schema, &Path::parse("DNO"), Scheme::Hierarchical).unwrap();
        idx.build(&mut os, &schema).unwrap();
        let hits = idx.lookup(&Atom::Int(314)).unwrap();
        assert_eq!(hits.len(), 1);
        let IndexAddress::Hier(h) = &hits[0] else {
            panic!()
        };
        assert_eq!(h.root, handles[0].0);
        assert_eq!(h.comps.len(), 1, "object's own data subtuple only");
        // Resolvable back to the object's atoms.
        let t = os
            .materialize_by_data_path(&schema, handles[0], &h.comps)
            .unwrap();
        assert_eq!(t.fields[0].as_atom().unwrap().as_int(), Some(314));
    }
}
