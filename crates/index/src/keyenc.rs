//! Order-preserving key encoding.
//!
//! B+-tree keys are raw byte strings compared with `memcmp`; this module
//! encodes [`Atom`] values such that byte order equals value order.
//! Atoms of different types sort by a leading type tag (ints and doubles
//! share a numeric class and are encoded as doubles when mixed indexes
//! are built — here each index covers exactly one attribute, so one type
//! tag per index in practice).
//!
//! Encodings:
//! * `Int` — tag `0x10`, then `(v XOR i64::MIN)` big-endian (flips the
//!   sign bit so negative < positive in unsigned byte order);
//! * `Double` — tag `0x10` (numeric class, comparable with ints), value
//!   mapped through the classic IEEE-754 total-order trick;
//! * `Str`/`Text` — tag `0x20`, then the UTF-8 bytes (one key per
//!   entry — no terminator needed; prefix order is byte order);
//! * `Bool` — tag `0x08`, byte 0/1;
//! * `Date` — tag `0x18`, `(d XOR i32::MIN)` big-endian.

use aim2_model::{Atom, Date};

const TAG_BOOL: u8 = 0x08;
const TAG_NUM: u8 = 0x10;
const TAG_DATE: u8 = 0x18;
const TAG_STR: u8 = 0x20;

/// Map an `f64` to a `u64` whose unsigned order equals the double's
/// total order.
fn f64_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1u64 << 63)
    }
}

/// Encode an atom into order-preserving bytes.
pub fn encode_key(atom: &Atom) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    match atom {
        Atom::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Atom::Int(v) => {
            out.push(TAG_NUM);
            // Encode through the double path so Int(3) and Double(3.0)
            // land on the same key (the model treats them comparable).
            // i64 values beyond 2^53 lose precision in f64; disambiguate
            // by appending the exact integer bytes.
            out.extend_from_slice(&f64_key(*v as f64).to_be_bytes());
            out.extend_from_slice(&((*v as u64) ^ (1u64 << 63)).to_be_bytes());
        }
        Atom::Double(v) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&f64_key(*v).to_be_bytes());
            // Midpoint marker so a double sorts stably among equal-value
            // ints: reuse the rounded integer when representable.
            let round = *v as i64;
            out.extend_from_slice(&((round as u64) ^ (1u64 << 63)).to_be_bytes());
        }
        Atom::Date(Date(d)) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&((*d as u32) ^ (1u32 << 31)).to_be_bytes());
        }
        Atom::Str(s) | Atom::Text(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(s.as_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn cmp(a: &Atom, b: &Atom) -> Ordering {
        encode_key(a).cmp(&encode_key(b))
    }

    #[test]
    fn int_order_preserved() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, 1_000_000, i64::MAX];
        for w in vals.windows(2) {
            assert_eq!(
                cmp(&Atom::Int(w[0]), &Atom::Int(w[1])),
                Ordering::Less,
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn double_order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            1.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            let o = cmp(&Atom::Double(w[0]), &Atom::Double(w[1]));
            // -0.0 and 0.0 may compare Equal-ish via total order: accept <=.
            assert_ne!(o, Ordering::Greater, "{} > {}", w[0], w[1]);
        }
    }

    #[test]
    fn int_and_double_interleave() {
        assert_eq!(cmp(&Atom::Int(3), &Atom::Double(3.5)), Ordering::Less);
        assert_eq!(cmp(&Atom::Double(2.5), &Atom::Int(3)), Ordering::Less);
        assert_eq!(cmp(&Atom::Int(4), &Atom::Double(3.5)), Ordering::Greater);
    }

    #[test]
    fn int_equals_its_double() {
        assert_eq!(cmp(&Atom::Int(7), &Atom::Double(7.0)), Ordering::Equal);
    }

    #[test]
    fn string_order_preserved() {
        let vals = ["", "Consultant", "Leader", "Secretary", "Staff", "staff"];
        for w in vals.windows(2) {
            assert_eq!(
                cmp(&Atom::Str(w[0].into()), &Atom::Str(w[1].into())),
                Ordering::Less
            );
        }
        // Str and Text encode identically.
        assert_eq!(
            encode_key(&Atom::Str("x".into())),
            encode_key(&Atom::Text("x".into()))
        );
    }

    #[test]
    fn date_order_preserved() {
        let a = Atom::Date(Date::parse_iso("1984-01-15").unwrap());
        let b = Atom::Date(Date::parse_iso("1986-05-28").unwrap());
        assert_eq!(cmp(&a, &b), Ordering::Less);
        let neg = Atom::Date(Date::from_ymd(1900, 1, 1).unwrap());
        assert_eq!(cmp(&neg, &a), Ordering::Less);
    }

    #[test]
    fn types_partition_by_tag() {
        assert_eq!(cmp(&Atom::Bool(true), &Atom::Int(i64::MIN)), Ordering::Less);
        assert_eq!(
            cmp(&Atom::Int(i64::MAX), &Atom::Str("".into())),
            Ordering::Less
        );
    }

    #[test]
    fn large_ints_beyond_f64_precision_stay_distinct() {
        let a = Atom::Int(i64::MAX - 1);
        let b = Atom::Int(i64::MAX);
        assert_eq!(cmp(&a, &b), Ordering::Less);
        assert_ne!(encode_key(&a), encode_key(&b));
    }
}
