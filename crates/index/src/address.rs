//! Index address schemes (§4.2).
//!
//! "Conceptually, an index entry is an ordered pair `<key, address
//! list>`." The paper walks through three choices for what the addresses
//! should be, and shows only the last one suffices:
//!
//! 1. [`Scheme::DataTid`] — TIDs of data subtuples. The value is found,
//!    but "access to the respective department numbers cannot be done"
//!    (data subtuples carry no structural information) and duplicate
//!    objects cannot be recognized.
//! 2. [`Scheme::RootTid`] — TIDs of root MD subtuples. Objects are
//!    reachable and de-duplicatable, but inner positions are lost:
//!    "all projects of this department have to be scanned".
//! 3. Hierarchical addresses:
//!    * naive form [`Scheme::MdPath`] (Fig 7a) — components are MD
//!      subtuple pointers; useless for conjunctive queries because the
//!      shared components "refer to an MD subtuple of a *subtable*
//!      and not ... a complex subobject";
//!    * final form [`Scheme::Hierarchical`] (Fig 7b) — "the rest refers
//!      to data subtuples on a path from this root MD subtuple down to a
//!      certain data subtuple"; components identify complex subobjects,
//!      so `P2 = F2` decides the §4.2 query from the index alone.
//!
//! In AIM-II "the first component of an address is always a TID whereas
//! all other components are Mini TIDs" — encoded here verbatim.

use crate::error::IndexError;
use crate::Result;
use aim2_storage::tid::{MiniTid, Tid};
use std::fmt;

/// Which address representation an index stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// TIDs of data subtuples (first, insufficient approach).
    DataTid,
    /// TIDs of root MD subtuples (second, still insufficient approach).
    RootTid,
    /// Naive hierarchical addresses over MD pointers (Fig 7a).
    MdPath,
    /// Final hierarchical addresses over data subtuples (Fig 7b) — what
    /// AIM-II implements.
    Hierarchical,
}

impl Scheme {
    /// Every scheme, in the order the paper discusses them.
    pub const ALL: [Scheme; 4] = [
        Scheme::DataTid,
        Scheme::RootTid,
        Scheme::MdPath,
        Scheme::Hierarchical,
    ];

    /// Human-readable scheme name for bench labels and plans.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::DataTid => "data-TID",
            Scheme::RootTid => "root-TID",
            Scheme::MdPath => "MD-path (Fig 7a)",
            Scheme::Hierarchical => "hierarchical (Fig 7b)",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A final-form hierarchical address (Fig 7b): root MD subtuple TID plus
/// the data subtuples of the complex subobjects on the path, ending at
/// the data subtuple holding the indexed value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HierAddr {
    pub root: Tid,
    pub comps: Vec<MiniTid>,
}

impl HierAddr {
    /// The target data subtuple (last component).
    pub fn target(&self) -> Option<MiniTid> {
        self.comps.last().copied()
    }

    /// The ancestor components (all but the target) — e.g. the project
    /// a member belongs to. Two addresses with equal roots and a shared
    /// ancestor prefix refer to the same complex subobject; this is the
    /// `P2 = F2` test of §4.2.
    pub fn ancestors(&self) -> &[MiniTid] {
        match self.comps.len() {
            0 => &[],
            n => &self.comps[..n - 1],
        }
    }
}

impl fmt::Display for HierAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)?;
        for c in &self.comps {
            write!(f, ".{c}")?;
        }
        Ok(())
    }
}

/// A naive hierarchical address (Fig 7a): root TID plus the MD subtuples
/// on the pointer path, ending at the data subtuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MdPathAddr {
    pub root: Tid,
    pub md_path: Vec<MiniTid>,
    pub data: MiniTid,
}

impl fmt::Display for MdPathAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)?;
        for c in &self.md_path {
            write!(f, ".{c}")?;
        }
        write!(f, ".{}", self.data)
    }
}

/// One address in an index posting list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexAddress {
    Data(Tid),
    Root(Tid),
    MdPath(MdPathAddr),
    Hier(HierAddr),
}

impl IndexAddress {
    /// The scheme this address belongs to.
    pub fn scheme(&self) -> Scheme {
        match self {
            IndexAddress::Data(_) => Scheme::DataTid,
            IndexAddress::Root(_) => Scheme::RootTid,
            IndexAddress::MdPath(_) => Scheme::MdPath,
            IndexAddress::Hier(_) => Scheme::Hierarchical,
        }
    }

    /// The object's root TID, if this scheme knows it (the data-TID
    /// scheme famously does not — that is its §4.2 flaw).
    pub fn root(&self) -> Option<Tid> {
        match self {
            IndexAddress::Data(_) => None,
            IndexAddress::Root(t) => Some(*t),
            IndexAddress::MdPath(a) => Some(a.root),
            IndexAddress::Hier(a) => Some(a.root),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            IndexAddress::Data(_) => 0,
            IndexAddress::Root(_) => 1,
            IndexAddress::MdPath(_) => 2,
            IndexAddress::Hier(_) => 3,
        }
    }

    /// Serialize into a posting list.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            IndexAddress::Data(t) | IndexAddress::Root(t) => t.encode(out),
            IndexAddress::MdPath(a) => {
                a.root.encode(out);
                out.extend_from_slice(&(a.md_path.len() as u16).to_le_bytes());
                for m in &a.md_path {
                    m.encode(out);
                }
                a.data.encode(out);
            }
            IndexAddress::Hier(a) => {
                a.root.encode(out);
                out.extend_from_slice(&(a.comps.len() as u16).to_le_bytes());
                for m in &a.comps {
                    m.encode(out);
                }
            }
        }
    }

    /// Deserialize from a posting list.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<IndexAddress> {
        let err = |m: &str| IndexError::Corrupt(m.to_string());
        let tag = *buf.get(*pos).ok_or_else(|| err("empty address"))?;
        *pos += 1;
        let take_tid = |pos: &mut usize| Tid::decode(buf, pos).ok_or_else(|| err("truncated TID"));
        match tag {
            0 => Ok(IndexAddress::Data(take_tid(pos)?)),
            1 => Ok(IndexAddress::Root(take_tid(pos)?)),
            2 => {
                let root = take_tid(pos)?;
                let n = u16::from_le_bytes(
                    buf.get(*pos..*pos + 2)
                        .ok_or_else(|| err("truncated count"))?
                        .try_into()
                        .unwrap(),
                ) as usize;
                *pos += 2;
                let mut md_path = Vec::with_capacity(n);
                for _ in 0..n {
                    md_path
                        .push(MiniTid::decode(buf, pos).ok_or_else(|| err("truncated MiniTid"))?);
                }
                let data = MiniTid::decode(buf, pos).ok_or_else(|| err("truncated MiniTid"))?;
                Ok(IndexAddress::MdPath(MdPathAddr {
                    root,
                    md_path,
                    data,
                }))
            }
            3 => {
                let root = take_tid(pos)?;
                let n = u16::from_le_bytes(
                    buf.get(*pos..*pos + 2)
                        .ok_or_else(|| err("truncated count"))?
                        .try_into()
                        .unwrap(),
                ) as usize;
                *pos += 2;
                let mut comps = Vec::with_capacity(n);
                for _ in 0..n {
                    comps.push(MiniTid::decode(buf, pos).ok_or_else(|| err("truncated MiniTid"))?);
                }
                Ok(IndexAddress::Hier(HierAddr { root, comps }))
            }
            t => Err(err(&format!("bad address tag {t}"))),
        }
    }

    /// Encode a whole posting list.
    pub fn encode_list(addrs: &[IndexAddress]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + addrs.len() * 8);
        out.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
        for a in addrs {
            a.encode(&mut out);
        }
        out
    }

    /// Decode a whole posting list.
    pub fn decode_list(buf: &[u8]) -> Result<Vec<IndexAddress>> {
        let err = |m: &str| IndexError::Corrupt(m.to_string());
        let n = u32::from_le_bytes(
            buf.get(0..4)
                .ok_or_else(|| err("truncated posting list"))?
                .try_into()
                .unwrap(),
        ) as usize;
        let mut pos = 4;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(IndexAddress::decode(buf, &mut pos)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_storage::tid::{PageId, SlotNo};

    fn tid(p: u32, s: u16) -> Tid {
        Tid::new(PageId(p), SlotNo(s))
    }
    fn mt(l: u16, s: u16) -> MiniTid {
        MiniTid::new(l, SlotNo(s))
    }

    #[test]
    fn roundtrip_all_variants() {
        let addrs = vec![
            IndexAddress::Data(tid(1, 2)),
            IndexAddress::Root(tid(3, 4)),
            IndexAddress::MdPath(MdPathAddr {
                root: tid(5, 6),
                md_path: vec![mt(0, 1), mt(1, 0)],
                data: mt(2, 3),
            }),
            IndexAddress::Hier(HierAddr {
                root: tid(7, 8),
                comps: vec![mt(0, 2), mt(1, 1)],
            }),
        ];
        let bytes = IndexAddress::encode_list(&addrs);
        assert_eq!(IndexAddress::decode_list(&bytes).unwrap(), addrs);
    }

    #[test]
    fn hier_addr_parts() {
        let a = HierAddr {
            root: tid(1, 1),
            comps: vec![mt(0, 5), mt(1, 2)],
        };
        assert_eq!(a.target(), Some(mt(1, 2)));
        assert_eq!(a.ancestors(), &[mt(0, 5)]);
        let short = HierAddr {
            root: tid(1, 1),
            comps: vec![],
        };
        assert_eq!(short.target(), None);
        assert!(short.ancestors().is_empty());
    }

    #[test]
    fn roots_known_except_data_scheme() {
        assert_eq!(IndexAddress::Data(tid(1, 1)).root(), None);
        assert_eq!(IndexAddress::Root(tid(2, 2)).root(), Some(tid(2, 2)));
    }

    #[test]
    fn corrupt_lists_rejected() {
        assert!(IndexAddress::decode_list(&[1, 0]).is_err());
        assert!(IndexAddress::decode_list(&[1, 0, 0, 0, 99]).is_err());
    }

    #[test]
    fn display_forms() {
        let a = HierAddr {
            root: tid(12, 0),
            comps: vec![mt(0, 1)],
        };
        assert_eq!(a.to_string(), "P12.s0.p0.s1");
        assert_eq!(Scheme::Hierarchical.to_string(), "hierarchical (Fig 7b)");
    }
}
