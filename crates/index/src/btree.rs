//! A persistent B+-tree over segment records.
//!
//! Index entries are `<key, value>` pairs with byte-string keys (see
//! [`crate::keyenc`]) and opaque values (the address lists of §4.2).
//! Nodes are segment records addressed by TID; record forwarding keeps
//! node TIDs stable across splits and growth, so parent links never need
//! rewriting. The tree splits on overflow; underflow is tolerated
//! (single-user prototype — reorganization would be an offline rebuild,
//! as was common for the era's systems).

use crate::error::IndexError;
use crate::Result;
use aim2_storage::segment::Segment;
use aim2_storage::tid::Tid;

const LEAF: u8 = 0;
const INTERNAL: u8 = 1;

/// Maximum entries per node before a split.
const DEFAULT_ORDER: usize = 32;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    Internal {
        /// `seps[i]` is the smallest key reachable under `children[i+1]`.
        seps: Vec<Vec<u8>>,
        children: Vec<Tid>,
    },
}

impl Node {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Node::Leaf { entries } => {
                out.push(LEAF);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    out.extend_from_slice(v);
                }
            }
            Node::Internal { seps, children } => {
                out.push(INTERNAL);
                out.extend_from_slice(&(children.len() as u16).to_le_bytes());
                for c in children {
                    c.encode(&mut out);
                }
                for s in seps {
                    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                    out.extend_from_slice(s);
                }
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<Node> {
        let err = |m: &str| IndexError::Corrupt(m.to_string());
        let kind = *buf.first().ok_or_else(|| err("empty node"))?;
        let mut pos = 1;
        let take_u16 = |pos: &mut usize| -> Result<u16> {
            let b = buf
                .get(*pos..*pos + 2)
                .ok_or_else(|| err("truncated node"))?;
            *pos += 2;
            Ok(u16::from_le_bytes(b.try_into().unwrap()))
        };
        match kind {
            LEAF => {
                let n = take_u16(&mut pos)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = take_u16(&mut pos)? as usize;
                    let k = buf
                        .get(pos..pos + klen)
                        .ok_or_else(|| err("truncated key"))?
                        .to_vec();
                    pos += klen;
                    let vlen = u32::from_le_bytes(
                        buf.get(pos..pos + 4)
                            .ok_or_else(|| err("truncated vlen"))?
                            .try_into()
                            .unwrap(),
                    ) as usize;
                    pos += 4;
                    let v = buf
                        .get(pos..pos + vlen)
                        .ok_or_else(|| err("truncated value"))?
                        .to_vec();
                    pos += vlen;
                    entries.push((k, v));
                }
                Ok(Node::Leaf { entries })
            }
            INTERNAL => {
                let n = take_u16(&mut pos)? as usize;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children
                        .push(Tid::decode(buf, &mut pos).ok_or_else(|| err("truncated child"))?);
                }
                let mut seps = Vec::with_capacity(n.saturating_sub(1));
                for _ in 0..n.saturating_sub(1) {
                    let klen = take_u16(&mut pos)? as usize;
                    let k = buf
                        .get(pos..pos + klen)
                        .ok_or_else(|| err("truncated separator"))?
                        .to_vec();
                    pos += klen;
                    seps.push(k);
                }
                Ok(Node::Internal { seps, children })
            }
            other => Err(err(&format!("bad node kind {other}"))),
        }
    }
}

/// A persistent B+-tree living in a [`Segment`].
pub struct BTree {
    root: Tid,
    order: usize,
}

impl BTree {
    /// Create an empty tree in `seg`.
    pub fn create(seg: &mut Segment) -> Result<BTree> {
        Self::create_with_order(seg, DEFAULT_ORDER)
    }

    /// Create with an explicit split threshold (tests use small orders to
    /// force deep trees).
    pub fn create_with_order(seg: &mut Segment, order: usize) -> Result<BTree> {
        assert!(order >= 4, "order must be at least 4");
        let root_node = Node::Leaf {
            entries: Vec::new(),
        };
        let root = seg.insert(&root_node.encode(), None)?;
        Ok(BTree { root, order })
    }

    /// TID of the root node (persist this to reopen the tree).
    pub fn root(&self) -> Tid {
        self.root
    }

    /// Re-attach to an existing tree.
    pub fn open(root: Tid, order: usize) -> BTree {
        BTree { root, order }
    }

    /// The split threshold (persist alongside the root to reopen).
    pub fn order(&self) -> usize {
        self.order
    }

    fn load(&self, seg: &mut Segment, tid: Tid) -> Result<Node> {
        Node::decode(&seg.read(tid)?)
    }

    fn store(&self, seg: &mut Segment, tid: Tid, node: &Node) -> Result<()> {
        seg.update(tid, &node.encode())?;
        Ok(())
    }

    /// Look up `key`; returns its value if present.
    pub fn get(&self, seg: &mut Segment, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut tid = self.root;
        loop {
            match self.load(seg, tid)? {
                Node::Leaf { entries } => {
                    return Ok(entries
                        .iter()
                        .find(|(k, _)| k.as_slice() == key)
                        .map(|(_, v)| v.clone()));
                }
                Node::Internal { seps, children } => {
                    let idx = seps.partition_point(|s| s.as_slice() <= key);
                    tid = children[idx];
                }
            }
        }
    }

    /// Insert or replace `key` with `value`.
    pub fn put(&mut self, seg: &mut Segment, key: &[u8], value: &[u8]) -> Result<()> {
        if let Some((sep, right)) = self.insert_rec(seg, self.root, key, value)? {
            // Root split: create a new root above.
            let old_root_node = self.load(seg, self.root)?;
            let left = seg.insert(&old_root_node.encode(), None)?;
            let new_root = Node::Internal {
                seps: vec![sep],
                children: vec![left, right],
            };
            self.store(seg, self.root, &new_root)?;
        }
        Ok(())
    }

    /// Returns `Some((separator, new right node))` if the child split.
    fn insert_rec(
        &self,
        seg: &mut Segment,
        tid: Tid,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<(Vec<u8>, Tid)>> {
        match self.load(seg, tid)? {
            Node::Leaf { mut entries } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries[i].1 = value.to_vec(),
                    Err(i) => entries.insert(i, (key.to_vec(), value.to_vec())),
                }
                if entries.len() <= self.order {
                    self.store(seg, tid, &Node::Leaf { entries })?;
                    return Ok(None);
                }
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right = seg.insert(
                    &Node::Leaf {
                        entries: right_entries,
                    }
                    .encode(),
                    Some(tid.page),
                )?;
                self.store(seg, tid, &Node::Leaf { entries })?;
                Ok(Some((sep, right)))
            }
            Node::Internal {
                mut seps,
                mut children,
            } => {
                let idx = seps.partition_point(|s| s.as_slice() <= key);
                if let Some((sep, right)) = self.insert_rec(seg, children[idx], key, value)? {
                    seps.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                if children.len() <= self.order {
                    self.store(seg, tid, &Node::Internal { seps, children })?;
                    return Ok(None);
                }
                let mid = children.len() / 2;
                let right_children = children.split_off(mid);
                let sep_up = seps.remove(mid - 1);
                let right_seps = seps.split_off(mid - 1);
                let right = seg.insert(
                    &Node::Internal {
                        seps: right_seps,
                        children: right_children,
                    }
                    .encode(),
                    Some(tid.page),
                )?;
                self.store(seg, tid, &Node::Internal { seps, children })?;
                Ok(Some((sep_up, right)))
            }
        }
    }

    /// Remove `key`; returns true if it was present. (No rebalancing —
    /// see module docs.)
    pub fn remove(&mut self, seg: &mut Segment, key: &[u8]) -> Result<bool> {
        let mut tid = self.root;
        loop {
            match self.load(seg, tid)? {
                Node::Leaf { mut entries } => {
                    return match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        Ok(i) => {
                            entries.remove(i);
                            self.store(seg, tid, &Node::Leaf { entries })?;
                            Ok(true)
                        }
                        Err(_) => Ok(false),
                    };
                }
                Node::Internal { seps, children } => {
                    let idx = seps.partition_point(|s| s.as_slice() <= key);
                    tid = children[idx];
                }
            }
        }
    }

    /// Collect all `(key, value)` pairs with `lo <= key <= hi` in key
    /// order.
    pub fn range(
        &self,
        seg: &mut Segment,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.range_rec(seg, self.root, lo, hi, &mut out)?;
        Ok(out)
    }

    fn range_rec(
        &self,
        seg: &mut Segment,
        tid: Tid,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        out: &mut Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<()> {
        match self.load(seg, tid)? {
            Node::Leaf { entries } => {
                for (k, v) in entries {
                    if lo.is_some_and(|lo| k.as_slice() < lo) {
                        continue;
                    }
                    if hi.is_some_and(|hi| k.as_slice() > hi) {
                        break;
                    }
                    out.push((k, v));
                }
            }
            Node::Internal { seps, children } => {
                let start = match lo {
                    Some(lo) => seps.partition_point(|s| s.as_slice() <= lo),
                    None => 0,
                };
                let end = match hi {
                    Some(hi) => seps.partition_point(|s| s.as_slice() <= hi),
                    None => children.len() - 1,
                };
                for child in &children[start..=end] {
                    self.range_rec(seg, *child, lo, hi, out)?;
                }
            }
        }
        Ok(())
    }

    /// Number of entries (full scan; for tests and stats).
    pub fn len(&self, seg: &mut Segment) -> Result<usize> {
        Ok(self.range(seg, None, None)?.len())
    }

    /// True if the tree has no entries.
    pub fn is_empty(&self, seg: &mut Segment) -> Result<bool> {
        Ok(self.len(seg)? == 0)
    }

    /// Tree height (1 = just a leaf).
    pub fn height(&self, seg: &mut Segment) -> Result<usize> {
        let mut h = 1;
        let mut tid = self.root;
        loop {
            match self.load(seg, tid)? {
                Node::Leaf { .. } => return Ok(h),
                Node::Internal { children, .. } => {
                    h += 1;
                    tid = children[0];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_storage::buffer::BufferPool;
    use aim2_storage::disk::MemDisk;
    use aim2_storage::stats::Stats;

    fn seg() -> Segment {
        Segment::new(BufferPool::new(
            Box::new(MemDisk::new(1024)),
            64,
            Stats::new(),
        ))
    }

    #[test]
    fn put_get_small() {
        let mut s = seg();
        let mut t = BTree::create(&mut s).unwrap();
        t.put(&mut s, b"b", b"2").unwrap();
        t.put(&mut s, b"a", b"1").unwrap();
        t.put(&mut s, b"c", b"3").unwrap();
        assert_eq!(t.get(&mut s, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(&mut s, b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(t.get(&mut s, b"zz").unwrap(), None);
    }

    #[test]
    fn replace_value() {
        let mut s = seg();
        let mut t = BTree::create(&mut s).unwrap();
        t.put(&mut s, b"k", b"old").unwrap();
        t.put(&mut s, b"k", b"new").unwrap();
        assert_eq!(t.get(&mut s, b"k").unwrap(), Some(b"new".to_vec()));
        assert_eq!(t.len(&mut s).unwrap(), 1);
    }

    #[test]
    fn thousand_keys_sorted_iteration() {
        let mut s = seg();
        let mut t = BTree::create_with_order(&mut s, 6).unwrap();
        // Insert in pseudo-random order.
        let mut keys: Vec<u32> = (0..1000).map(|i| (i * 619) % 1000).collect();
        keys.dedup();
        for k in &keys {
            t.put(&mut s, &k.to_be_bytes(), &k.to_le_bytes()).unwrap();
        }
        assert!(t.height(&mut s).unwrap() >= 3, "deep tree exercised");
        let all = t.range(&mut s, None, None).unwrap();
        assert_eq!(all.len(), 1000);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(k.as_slice(), (i as u32).to_be_bytes());
            assert_eq!(v.as_slice(), (i as u32).to_le_bytes());
        }
        // Point lookups all answer.
        for k in [0u32, 1, 499, 998, 999] {
            assert_eq!(
                t.get(&mut s, &k.to_be_bytes()).unwrap(),
                Some(k.to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn range_queries() {
        let mut s = seg();
        let mut t = BTree::create_with_order(&mut s, 4).unwrap();
        for k in 0u32..100 {
            t.put(&mut s, &k.to_be_bytes(), b"v").unwrap();
        }
        let lo = 10u32.to_be_bytes();
        let hi = 20u32.to_be_bytes();
        let hits = t.range(&mut s, Some(&lo), Some(&hi)).unwrap();
        assert_eq!(hits.len(), 11);
        assert_eq!(hits[0].0, lo.to_vec());
        assert_eq!(hits[10].0, hi.to_vec());
        // Open-ended ranges.
        assert_eq!(t.range(&mut s, Some(&lo), None).unwrap().len(), 90);
        assert_eq!(t.range(&mut s, None, Some(&hi)).unwrap().len(), 21);
    }

    #[test]
    fn remove_keys() {
        let mut s = seg();
        let mut t = BTree::create_with_order(&mut s, 4).unwrap();
        for k in 0u32..50 {
            t.put(&mut s, &k.to_be_bytes(), b"v").unwrap();
        }
        for k in (0u32..50).step_by(2) {
            assert!(t.remove(&mut s, &k.to_be_bytes()).unwrap());
        }
        assert!(!t.remove(&mut s, &0u32.to_be_bytes()).unwrap());
        assert_eq!(t.len(&mut s).unwrap(), 25);
        for k in 0u32..50 {
            let present = t.get(&mut s, &k.to_be_bytes()).unwrap().is_some();
            assert_eq!(present, k % 2 == 1);
        }
    }

    #[test]
    fn root_tid_stable_across_splits() {
        let mut s = seg();
        let mut t = BTree::create_with_order(&mut s, 4).unwrap();
        let root_before = t.root();
        for k in 0u32..500 {
            t.put(&mut s, &k.to_be_bytes(), b"v").unwrap();
        }
        assert_eq!(t.root(), root_before, "root handle never changes");
        // Reopen from the root TID.
        let t2 = BTree::open(root_before, 4);
        assert_eq!(t2.len(&mut s).unwrap(), 500);
    }

    #[test]
    fn large_values_supported() {
        let mut s = seg();
        let mut t = BTree::create(&mut s).unwrap();
        let big = vec![7u8; 5000]; // posting list bigger than a page
        t.put(&mut s, b"k", &big).unwrap();
        assert_eq!(t.get(&mut s, b"k").unwrap(), Some(big));
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut s = seg();
        let mut t = BTree::create(&mut s).unwrap();
        assert!(t.is_empty(&mut s).unwrap());
        assert_eq!(t.get(&mut s, b"x").unwrap(), None);
        assert!(!t.remove(&mut s, b"x").unwrap());
        assert!(t.range(&mut s, None, None).unwrap().is_empty());
    }
}
