//! Slotted pages.
//!
//! Classic System-R-style slotted page layout (/As76/), operating over a
//! borrowed byte buffer so the same code serves the buffer pool's frames
//! directly:
//!
//! ```text
//! +--------+---------------------------------+-----------------+
//! | header | records (grow →)        ... gap | ← slot array    |
//! +--------+---------------------------------+-----------------+
//! ```
//!
//! * header: `slot_count: u16`, `free_start: u16`, `dead_bytes: u16`;
//! * slot `i` lives at the page tail: `(offset: u16, len: u16)`; offset
//!   `0xFFFF` marks a free (tombstoned) slot — slot numbers are **never**
//!   reused for a different record while live, which is what keeps TIDs
//!   and Mini-TIDs stable (§4.1);
//! * deleted / shrunk records leave dead bytes that [`Page::compact`]
//!   reclaims without changing any slot number.

use crate::error::StorageError;
use crate::tid::SlotNo;

const HEADER_LEN: usize = 6;
const SLOT_LEN: usize = 4;
const FREE_OFF: u16 = 0xFFFF;

/// Validate that slot `slot`'s `(off, len)` names record bytes fully
/// inside the record area of a `buf_len`-byte page whose slot array
/// starts at `slot_area_start`. Returns the byte range when sane.
/// Centralizing the bounds arithmetic here is what makes every reader
/// below total over arbitrary (bit-rotted) page images.
fn record_range(
    off: u16,
    len: u16,
    buf_len: usize,
    slot_area_start: usize,
) -> Option<std::ops::Range<usize>> {
    if off == FREE_OFF {
        return None;
    }
    let start = off as usize;
    let end = start.checked_add(len as usize)?;
    (start >= HEADER_LEN && end <= slot_area_start && end <= buf_len).then_some(start..end)
}

/// Minimum record-area span a live slot owns, even for shorter records.
/// A slot must always be able to take a segment forward record (1 flag
/// byte + 6-byte TID) *in place*, or a tiny record on a full page could
/// never grow — its TID-stable relocation path would have nowhere to put
/// the forward pointer.
pub const MIN_RECORD_SPACE: u16 = 7;

/// Bytes of record area a record of `len` bytes occupies.
fn footprint(len: u16) -> u16 {
    len.max(MIN_RECORD_SPACE)
}

/// A slotted-page view over a page-sized byte buffer.
pub struct Page<'a> {
    buf: &'a mut [u8],
}

impl<'a> Page<'a> {
    /// Wrap an existing, already-initialized page buffer.
    pub fn new(buf: &'a mut [u8]) -> Page<'a> {
        debug_assert!(buf.len() >= 64, "page too small");
        Page { buf }
    }

    /// Initialize an all-zero buffer as an empty page.
    pub fn init(buf: &'a mut [u8]) -> Page<'a> {
        let mut p = Page { buf };
        p.set_slot_count(0);
        p.set_free_start(HEADER_LEN as u16);
        p.set_dead(0);
        p
    }

    /// Largest record that could ever be stored in an empty page of
    /// `page_size` bytes.
    pub fn max_record_len(page_size: usize) -> usize {
        page_size - HEADER_LEN - SLOT_LEN
    }

    fn get_u16(&self, at: usize) -> u16 {
        // A truncated buffer reads as zero rather than panicking; the
        // bounds checks downstream then reject whatever depends on it.
        match self.buf.get(at..at + 2) {
            Some(b) => u16::from_le_bytes(b.try_into().expect("2-byte slice")),
            None => 0,
        }
    }

    fn set_u16(&mut self, at: usize, v: u16) {
        if let Some(b) = self.buf.get_mut(at..at + 2) {
            b.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Number of slots ever allocated (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(0)
    }
    fn set_slot_count(&mut self, v: u16) {
        self.set_u16(0, v)
    }
    fn free_start(&self) -> u16 {
        self.get_u16(2)
    }
    fn set_free_start(&mut self, v: u16) {
        self.set_u16(2, v)
    }
    /// Bytes occupied by deleted / shrunk records, reclaimable by compact.
    pub fn dead_bytes(&self) -> u16 {
        self.get_u16(4)
    }
    fn set_dead(&mut self, v: u16) {
        self.set_u16(4, v)
    }

    fn slot_pos(&self, slot: u16) -> Option<usize> {
        self.buf.len().checked_sub(SLOT_LEN * (slot as usize + 1))
    }

    fn slot(&self, slot: u16) -> (u16, u16) {
        match self.slot_pos(slot) {
            // A slot the buffer cannot even hold reads as tombstoned.
            None => (FREE_OFF, 0),
            Some(p) => (self.get_u16(p), self.get_u16(p + 2)),
        }
    }

    fn set_slot(&mut self, slot: u16, off: u16, len: u16) {
        if let Some(p) = self.slot_pos(slot) {
            self.set_u16(p, off);
            self.set_u16(p + 2, len);
        }
    }

    fn slot_area_start(&self) -> usize {
        self.buf
            .len()
            .saturating_sub(SLOT_LEN * self.slot_count() as usize)
    }

    /// Whether the header can be written through safely. A `free_start`
    /// inside the header means this buffer was never [`Page::init`]-ed
    /// (an all-zero image reads as 0) or is corrupt — inserting through
    /// it would clobber the header itself. Mutators refuse instead.
    fn header_writable(&self) -> bool {
        self.free_start() as usize >= HEADER_LEN
    }

    /// Contiguous free bytes between record area and slot array.
    fn contiguous_free(&self) -> usize {
        self.slot_area_start()
            .saturating_sub(self.free_start() as usize)
    }

    /// Byte range of `slot`'s record, if the slot is live and its
    /// `(off, len)` stays inside the record area.
    fn range_of(&self, slot: u16) -> Option<std::ops::Range<usize>> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        record_range(off, len, self.buf.len(), self.slot_area_start())
    }

    /// Whether `slot` currently holds a live record.
    pub fn is_live(&self, slot: SlotNo) -> bool {
        self.range_of(slot.0).is_some()
    }

    /// Bytes available for inserting one new record (accounting for a
    /// possibly needed new slot entry and reclaimable dead space).
    pub fn free_for_insert(&self) -> usize {
        if !self.header_writable() {
            return 0; // uninitialized/corrupt image: unusable for inserts
        }
        let slot_cost = if self.first_free_slot().is_some() {
            0
        } else {
            SLOT_LEN
        };
        let raw = (self.contiguous_free() + self.dead_bytes() as usize).saturating_sub(slot_cost);
        // Below the minimum footprint no record fits at all; reporting the
        // raw residue would overpromise for sub-footprint records.
        if raw < MIN_RECORD_SPACE as usize {
            0
        } else {
            raw
        }
    }

    fn first_free_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&i| self.slot(i).0 == FREE_OFF)
    }

    /// Insert a record; `None` if it does not fit even after compaction.
    pub fn insert(&mut self, data: &[u8]) -> Option<SlotNo> {
        if data.len() > u16::MAX as usize || !self.header_writable() {
            return None;
        }
        let reuse = self.first_free_slot();
        let span = footprint(data.len() as u16) as usize;
        let needed = span + if reuse.is_some() { 0 } else { SLOT_LEN };
        if self.contiguous_free() < needed {
            if self.contiguous_free() + self.dead_bytes() as usize >= needed {
                self.compact();
            }
            if self.contiguous_free() < needed {
                return None;
            }
        }
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        let off = self.free_start();
        self.buf[off as usize..off as usize + data.len()].copy_from_slice(data);
        self.set_slot(slot, off, data.len() as u16);
        self.set_free_start(off + span as u16);
        Some(SlotNo(slot))
    }

    /// Read the record in `slot`; `None` if the slot is free/invalid.
    pub fn read(&self, slot: SlotNo) -> Option<&[u8]> {
        self.range_of(slot.0).map(|r| &self.buf[r])
    }

    /// Delete the record in `slot` (tombstoning the slot). Returns false
    /// if the slot was not live.
    pub fn delete(&mut self, slot: SlotNo) -> bool {
        if !self.is_live(slot) {
            return false;
        }
        let (_, len) = self.slot(slot.0);
        self.set_slot(slot.0, FREE_OFF, 0);
        self.set_dead(self.dead_bytes().saturating_add(footprint(len)));
        true
    }

    /// Replace the record in `slot` with `data`. Returns false if it
    /// cannot fit in this page (record left unchanged — the caller
    /// forwards it to another page, keeping the TID stable).
    pub fn update(&mut self, slot: SlotNo, data: &[u8]) -> bool {
        if !self.is_live(slot) || data.len() > u16::MAX as usize || !self.header_writable() {
            return false;
        }
        let (off, len) = self.slot(slot.0);
        let (old_span, new_span) = (footprint(len), footprint(data.len() as u16));
        if new_span <= old_span {
            // Fits in the span the slot already owns (which is at least
            // the minimum footprint, so e.g. 3 → 6 bytes stays in place).
            // On an intact page the span never crosses into the slot
            // array; a corrupt header must not let the write escape.
            if off as usize + new_span as usize > self.slot_area_start() {
                return false;
            }
            self.buf[off as usize..off as usize + data.len()].copy_from_slice(data);
            self.set_slot(slot.0, off, data.len() as u16);
            self.set_dead(self.dead_bytes().saturating_add(old_span - new_span));
            return true;
        }
        // Needs more space: the old record's span counts as reclaimable.
        let total_free = self.contiguous_free() + self.dead_bytes() as usize + old_span as usize;
        if total_free < new_span as usize {
            return false;
        }
        self.set_slot(slot.0, FREE_OFF, 0);
        self.set_dead(self.dead_bytes().saturating_add(old_span));
        if self.contiguous_free() < new_span as usize {
            self.compact();
        }
        let off = self.free_start();
        self.buf[off as usize..off as usize + data.len()].copy_from_slice(data);
        self.set_slot(slot.0, off, data.len() as u16);
        self.set_free_start(off + new_span);
        true
    }

    /// Slide all live records together at the front of the record area,
    /// reclaiming dead bytes. Slot numbers are unchanged.
    pub fn compact(&mut self) {
        let mut live: Vec<(u16, u16, u16)> = (0..self.slot_count())
            .filter_map(|i| {
                // Slots whose ranges fail validation are treated as dead
                // so a corrupt entry cannot drive copy_within off-page.
                let r = self.range_of(i)?;
                Some((i, r.start as u16, (r.end - r.start) as u16))
            })
            .collect();
        live.sort_by_key(|&(_, off, _)| off);
        let mut write = HEADER_LEN as u16;
        for (slot, off, len) in live {
            if write as usize + len as usize > self.slot_area_start() {
                break; // overlapping corrupt ranges; stop, don't clobber
            }
            if off != write {
                self.buf
                    .copy_within(off as usize..(off + len) as usize, write as usize);
                self.set_slot(slot, write, len);
            }
            write += footprint(len);
        }
        self.set_free_start(write);
        self.set_dead(0);
    }

    /// Iterate over live slots as `(SlotNo, record bytes)`.
    pub fn live_records(&self) -> impl Iterator<Item = (SlotNo, &[u8])> {
        (0..self.slot_count()).filter_map(move |i| {
            let r = self.range_of(i)?;
            Some((SlotNo(i), &self.buf[r]))
        })
    }
}

/// Read-only slotted-page view — used on the buffer pool's read path so
/// no page copy is needed.
pub struct PageRef<'a> {
    buf: &'a [u8],
}

impl<'a> PageRef<'a> {
    pub fn new(buf: &'a [u8]) -> PageRef<'a> {
        PageRef { buf }
    }

    fn get_u16(&self, at: usize) -> u16 {
        match self.buf.get(at..at + 2) {
            Some(b) => u16::from_le_bytes(b.try_into().expect("2-byte slice")),
            None => 0,
        }
    }

    /// Number of slots ever allocated.
    pub fn slot_count(&self) -> u16 {
        self.get_u16(0)
    }

    fn free_start(&self) -> u16 {
        self.get_u16(2)
    }

    /// Reclaimable dead bytes.
    pub fn dead_bytes(&self) -> u16 {
        self.get_u16(4)
    }

    fn slot(&self, slot: u16) -> (u16, u16) {
        match self.buf.len().checked_sub(SLOT_LEN * (slot as usize + 1)) {
            None => (FREE_OFF, 0),
            Some(p) => (self.get_u16(p), self.get_u16(p + 2)),
        }
    }

    fn slot_area_start(&self) -> usize {
        self.buf
            .len()
            .saturating_sub(SLOT_LEN * self.slot_count() as usize)
    }

    fn range_of(&self, slot: u16) -> Option<std::ops::Range<usize>> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        record_range(off, len, self.buf.len(), self.slot_area_start())
    }

    /// Whether `slot` holds a live record.
    pub fn is_live(&self, slot: SlotNo) -> bool {
        self.range_of(slot.0).is_some()
    }

    /// Read the record in `slot`.
    pub fn read(&self, slot: SlotNo) -> Option<&'a [u8]> {
        self.range_of(slot.0).map(|r| &self.buf[r])
    }

    /// Bytes available for one new record (mirrors [`Page::free_for_insert`]).
    pub fn free_for_insert(&self) -> usize {
        if (self.free_start() as usize) < HEADER_LEN {
            return 0; // uninitialized/corrupt image: unusable for inserts
        }
        let contiguous = self
            .slot_area_start()
            .saturating_sub(self.free_start() as usize);
        let has_free_slot = (0..self.slot_count()).any(|i| self.slot(i).0 == FREE_OFF);
        let slot_cost = if has_free_slot { 0 } else { SLOT_LEN };
        let raw = (contiguous + self.dead_bytes() as usize).saturating_sub(slot_cost);
        if raw < MIN_RECORD_SPACE as usize {
            0
        } else {
            raw
        }
    }

    /// Iterate live records.
    pub fn live_records(&self) -> impl Iterator<Item = (SlotNo, &'a [u8])> + '_ {
        (0..self.slot_count()).filter_map(move |i| {
            let r = self.range_of(i)?;
            Some((SlotNo(i), &self.buf[r]))
        })
    }

    /// Structural validation for the integrity walker: every header
    /// field and live slot must name bytes inside the page, live
    /// records must not overlap each other or the slot array. Returns a
    /// typed [`StorageError::CorruptData`] naming the first violation.
    pub fn validate(&self) -> Result<(), StorageError> {
        let corrupt = |msg: String| Err(StorageError::CorruptData(msg));
        if self.buf.len() < HEADER_LEN + SLOT_LEN {
            return corrupt(format!("page buffer of {} bytes too small", self.buf.len()));
        }
        let count = self.slot_count() as usize;
        if HEADER_LEN + SLOT_LEN * count > self.buf.len() {
            return corrupt(format!("slot count {count} overruns the page"));
        }
        let sas = self.slot_area_start();
        let fs = self.free_start() as usize;
        if fs < HEADER_LEN || fs > sas {
            return corrupt(format!(
                "free_start {fs} outside record area [{HEADER_LEN}, {sas}]"
            ));
        }
        let mut live: Vec<(u16, usize, usize)> = Vec::new();
        for i in 0..self.slot_count() {
            let (off, len) = self.slot(i);
            if off == FREE_OFF {
                continue;
            }
            match record_range(off, len, self.buf.len(), sas) {
                Some(r) => live.push((i, r.start, r.end)),
                None => {
                    return corrupt(format!(
                        "slot {i} claims bytes {off}..{} outside the record area",
                        off as usize + len as usize
                    ))
                }
            }
        }
        live.sort_by_key(|&(_, start, _)| start);
        for w in live.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.1 < a.2 {
                return corrupt(format!(
                    "slots {} and {} overlap (bytes {}..{} vs {}..{})",
                    a.0, b.0, a.1, a.2, b.1, b.2
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: usize = 256;

    fn fresh() -> Vec<u8> {
        vec![0u8; PAGE]
    }

    #[test]
    fn insert_read_roundtrip() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.read(s1), Some(&b"hello"[..]));
        assert_eq!(p.read(s2), Some(&b"world!"[..]));
        assert_ne!(s1, s2);
    }

    #[test]
    fn empty_record_allowed() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.read(s), Some(&b""[..]));
    }

    #[test]
    fn delete_tombstones_and_slot_reused_for_new_insert() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let s1 = p.insert(b"aaa").unwrap();
        let s2 = p.insert(b"bbb").unwrap();
        assert!(p.delete(s1));
        assert!(!p.delete(s1), "double delete is a no-op");
        assert_eq!(p.read(s1), None);
        assert_eq!(p.read(s2), Some(&b"bbb"[..]));
        // New insert reuses the tombstoned slot number.
        let s3 = p.insert(b"ccc").unwrap();
        assert_eq!(s3, s1);
        assert_eq!(p.read(s3), Some(&b"ccc"[..]));
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let s = p.insert(b"short").unwrap();
        let keep = p.insert(b"other").unwrap();
        assert!(p.update(s, b"abc")); // shrink
        assert_eq!(p.read(s), Some(&b"abc"[..]));
        assert!(p.update(s, b"a much longer record body")); // grow
        assert_eq!(p.read(s), Some(&b"a much longer record body"[..]));
        assert_eq!(p.read(keep), Some(&b"other"[..]), "neighbour intact");
    }

    #[test]
    fn page_fills_then_rejects() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let mut count = 0;
        while p.insert(&[7u8; 10]).is_some() {
            count += 1;
            assert!(count < 100);
        }
        assert!(count >= (PAGE - HEADER_LEN) / (10 + SLOT_LEN) - 1);
        // Still can insert something smaller? No contiguous space left for
        // 10+slot; but a 0-byte record may fit. Just assert no panic.
        let _ = p.insert(b"");
    }

    #[test]
    fn compaction_recovers_dead_space() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let mut slots = Vec::new();
        while let Some(s) = p.insert(&[1u8; 20]) {
            slots.push(s);
        }
        // Delete every other record, then insert one big record that only
        // fits after compaction.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(*s);
            }
        }
        let survivors: Vec<SlotNo> = slots
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, s)| *s)
            .collect();
        let big = vec![9u8; 60];
        let s = p.insert(&big).expect("fits after compaction");
        assert_eq!(p.read(s), Some(&big[..]));
        for s in survivors {
            assert_eq!(p.read(s), Some(&[1u8; 20][..]), "survivor moved intact");
        }
    }

    #[test]
    fn update_grow_beyond_page_fails_and_preserves_record() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let s = p.insert(b"data").unwrap();
        let too_big = vec![0u8; PAGE];
        assert!(!p.update(s, &too_big));
        assert_eq!(p.read(s), Some(&b"data"[..]), "failed update left record");
    }

    #[test]
    fn read_invalid_slot_is_none() {
        let mut buf = fresh();
        let p = Page::init(&mut buf);
        assert_eq!(p.read(SlotNo(0)), None);
        assert_eq!(p.read(SlotNo(42)), None);
    }

    #[test]
    fn live_records_iterates_only_live() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b);
        let recs: Vec<(SlotNo, Vec<u8>)> = p.live_records().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(recs, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn free_for_insert_is_honest() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        p.insert(&[1u8; 50]).unwrap();
        let free = p.free_for_insert();
        // A record exactly as big as advertised must fit...
        assert!(p.insert(&vec![3u8; free]).is_some());
        // ...and afterwards the page is exactly full.
        assert_eq!(p.free_for_insert(), 0);
        assert!(p.insert(&[1u8]).is_none());
    }

    #[test]
    fn free_for_insert_counts_dead_space_and_free_slots() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let s = p.insert(&[1u8; 100]).unwrap();
        let before = p.free_for_insert();
        p.delete(s);
        // Deleting returns the record bytes AND a reusable slot.
        assert_eq!(p.free_for_insert(), before + 100 + SLOT_LEN);
    }

    #[test]
    fn tiny_record_on_full_page_can_still_take_a_forward_stub() {
        // Regression: a sub-footprint record on an otherwise full page
        // must still be replaceable in place by a 7-byte forward record
        // (flag + TID), or TID-stable relocation breaks.
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let tiny = p.insert(&[1u8; 2]).unwrap();
        while p.insert(&[2u8; 16]).is_some() {}
        while p.insert(&[3u8; 1]).is_some() {}
        assert_eq!(p.free_for_insert(), 0);
        assert!(
            p.update(tiny, &[9u8; MIN_RECORD_SPACE as usize]),
            "forward stub must fit in the slot's reserved span"
        );
        assert_eq!(p.read(tiny), Some(&[9u8; MIN_RECORD_SPACE as usize][..]));
    }

    #[test]
    fn garbage_page_images_never_panic() {
        // Deterministic xorshift fuzz of the read paths; the exhaustive
        // random-bytes sweep lives in tests/prop_decode.rs.
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            let mut buf = fresh();
            for b in buf.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *b = x as u8;
            }
            let r = PageRef::new(&buf);
            let _ = r.validate();
            let _ = r.free_for_insert();
            let _: Vec<_> = r.live_records().collect();
            for i in 0..64 {
                let _ = r.read(SlotNo(i));
            }
            let mut p = Page::new(&mut buf);
            let _ = p.insert(b"probe");
            let _ = p.update(SlotNo(0), b"probe");
            let _ = p.delete(SlotNo(1));
            p.compact();
        }
    }

    #[test]
    fn validate_accepts_real_pages_and_rejects_garbage() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let a = p.insert(b"alpha").unwrap();
        p.insert(b"beta").unwrap();
        p.delete(a);
        assert!(PageRef::new(&buf).validate().is_ok());
        // Point a slot past the record area.
        let sp = PAGE - SLOT_LEN;
        buf[sp..sp + 2].copy_from_slice(&500u16.to_le_bytes());
        match PageRef::new(&buf).validate() {
            Err(StorageError::CorruptData(msg)) => assert!(msg.contains("slot 0")),
            other => panic!("expected CorruptData, got {other:?}"),
        }
    }

    #[test]
    fn max_record_len_fits_exactly() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf);
        let max = Page::max_record_len(PAGE);
        assert!(p.insert(&vec![5u8; max]).is_some());
        let mut buf2 = fresh();
        let mut p2 = Page::init(&mut buf2);
        assert!(p2.insert(&vec![5u8; max + 1]).is_none());
    }
}
