//! IMS-style baseline: segment hierarchies with navigational access.
//!
//! Figure 1 of the paper models DEPARTMENTS as an IMS database: segment
//! types DEPARTMENTS / PROJECTS / MEMBERS / EQUIP with parent-child
//! relations, retrieved with "navigational language constructs like
//! 'get next' (GN) and 'get next within parent' (GNP)" (/Da81/). This
//! module implements an HSAM-like store — segment occurrences laid out
//! in hierarchical sequence over our heap pages — plus the GU / GN / GNP
//! calls, so the `reproduce` binary and the `ims_vs_nf2` bench can
//! contrast record-at-a-time navigation with the NF² query interface.

use crate::segment::Segment;
use crate::tid::Tid;
use crate::Result;
use aim2_model::encode::{decode_atoms, encode_atoms};
use aim2_model::{Atom, TableSchema, Tuple};

/// One segment *type* in the IMS sense: a name plus which atoms it has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentType {
    pub name: String,
    /// Parent segment type index; `None` for the root type.
    pub parent: Option<usize>,
}

/// An IMS-like hierarchical database: a fixed segment-type hierarchy and
/// occurrences stored in hierarchical sequence.
pub struct ImsStore {
    seg: Segment,
    types: Vec<SegmentType>,
    /// Occurrences in hierarchical sequence: (type idx, parent occurrence
    /// idx, TID).
    occurrences: Vec<(usize, Option<usize>, Tid)>,
}

/// A navigation cursor (IMS "position").
#[derive(Debug, Clone, Copy, Default)]
pub struct Cursor {
    /// Index into the hierarchical sequence of the *next* occurrence GN
    /// would deliver.
    pos: usize,
    /// Parentage for GNP: only occurrences under this subtree qualify.
    parent: Option<usize>,
}

impl ImsStore {
    /// Derive the segment-type hierarchy from an NF² schema (Fig 1 does
    /// exactly this for DEPARTMENTS) and create an empty store.
    pub fn from_schema(seg: Segment, schema: &TableSchema) -> ImsStore {
        let mut types = Vec::new();
        fn rec(s: &TableSchema, parent: Option<usize>, types: &mut Vec<SegmentType>) {
            types.push(SegmentType {
                name: s.name.clone(),
                parent,
            });
            let me = types.len() - 1;
            for a in &s.attrs {
                if let aim2_model::AttrKind::Table(sub) = &a.kind {
                    rec(sub, Some(me), types);
                }
            }
        }
        rec(schema, None, &mut types);
        ImsStore {
            seg,
            types,
            occurrences: Vec::new(),
        }
    }

    /// The segment types, root first (hierarchical definition order).
    pub fn types(&self) -> &[SegmentType] {
        &self.types
    }

    /// The underlying segment.
    pub fn segment_mut(&mut self) -> &mut Segment {
        &mut self.seg
    }

    /// Number of stored segment occurrences.
    pub fn len(&self) -> usize {
        self.occurrences.len()
    }

    /// True if no occurrences are stored.
    pub fn is_empty(&self) -> bool {
        self.occurrences.is_empty()
    }

    fn type_of_schema(&self, path_names: &[&str]) -> Option<usize> {
        // Types were pushed in pre-order; find by name (names unique in
        // the paper's hierarchy).
        let last = path_names.last()?;
        self.types.iter().position(|t| &t.name == last)
    }

    /// Load one NF² tuple (and its subtables) as segment occurrences in
    /// hierarchical sequence — one IMS "database record".
    pub fn load_record(&mut self, schema: &TableSchema, tuple: &Tuple) -> Result<()> {
        self.load_rec(schema, tuple, None)
    }

    fn load_rec(
        &mut self,
        schema: &TableSchema,
        tuple: &Tuple,
        parent: Option<usize>,
    ) -> Result<()> {
        let ty = self
            .type_of_schema(&[schema.name.as_str()])
            .ok_or_else(|| crate::StorageError::BadPath(schema.name.clone()))?;
        let atoms = tuple.atomic_fields(schema);
        let payload = encode_atoms(atoms);
        let near = self.occurrences.last().map(|(_, _, t)| t.page);
        let tid = self.seg.insert(&payload, near)?;
        self.occurrences.push((ty, parent, tid));
        let me = self.occurrences.len() - 1;
        for attr_idx in schema.table_indices() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
            let sub_value = tuple.fields[attr_idx]
                .as_table()
                .ok_or_else(|| crate::StorageError::Corrupt("expected table value".into()))?;
            for elem in &sub_value.tuples {
                self.load_rec(sub_schema, elem, Some(me))?;
            }
        }
        Ok(())
    }

    fn read_occurrence(&mut self, idx: usize) -> Result<(String, Vec<Atom>)> {
        let (ty, _, tid) = self.occurrences[idx];
        let bytes = self.seg.read(tid)?;
        Ok((self.types[ty].name.clone(), decode_atoms(&bytes)?))
    }

    /// GU — "get unique": position at the first occurrence of segment
    /// type `ty_name` whose first atom equals `key` (when given), reading
    /// sequentially from the start (HSAM semantics).
    pub fn gu(
        &mut self,
        cursor: &mut Cursor,
        ty_name: &str,
        key: Option<&Atom>,
    ) -> Result<Option<(String, Vec<Atom>)>> {
        cursor.pos = 0;
        cursor.parent = None;
        loop {
            match self.gn(cursor)? {
                Some((name, atoms)) => {
                    if name == ty_name && key.is_none_or(|k| atoms.first() == Some(k)) {
                        cursor.parent = Some(cursor.pos - 1);
                        return Ok(Some((name, atoms)));
                    }
                }
                None => return Ok(None),
            }
        }
    }

    /// GN — "get next": deliver the next occurrence in hierarchical
    /// sequence, whatever its type.
    pub fn gn(&mut self, cursor: &mut Cursor) -> Result<Option<(String, Vec<Atom>)>> {
        if cursor.pos >= self.occurrences.len() {
            return Ok(None);
        }
        let out = self.read_occurrence(cursor.pos)?;
        cursor.pos += 1;
        Ok(Some(out))
    }

    /// GNP — "get next within parent": the next occurrence that is a
    /// (transitive) descendant of the occurrence GU established.
    pub fn gnp(&mut self, cursor: &mut Cursor) -> Result<Option<(String, Vec<Atom>)>> {
        let anchor = match cursor.parent {
            Some(a) => a,
            None => return Ok(None),
        };
        if cursor.pos >= self.occurrences.len() {
            return Ok(None);
        }
        let idx = cursor.pos;
        cursor.pos += 1;
        if self.is_descendant_of(idx, anchor) {
            return Ok(Some(self.read_occurrence(idx)?));
        }
        // Hierarchical sequence: all of the anchor's descendants directly
        // follow it, so the first non-descendant ends the subtree.
        Ok(None)
    }

    fn is_descendant_of(&self, idx: usize, anchor: usize) -> bool {
        let mut cur = self.occurrences[idx].1;
        while let Some(p) = cur {
            if p == anchor {
                return true;
            }
            cur = self.occurrences[p].1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::stats::Stats;
    use aim2_model::fixtures;

    fn store() -> ImsStore {
        let pool = BufferPool::new(Box::new(MemDisk::new(512)), 32, Stats::new());
        ImsStore::from_schema(Segment::new(pool), &fixtures::departments_schema())
    }

    #[test]
    fn fig1_segment_hierarchy() {
        let ims = store();
        let names: Vec<&str> = ims.types().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["DEPARTMENTS", "PROJECTS", "MEMBERS", "EQUIP"]);
        assert_eq!(ims.types()[0].parent, None);
        assert_eq!(ims.types()[1].parent, Some(0)); // PROJECTS under DEPARTMENTS
        assert_eq!(ims.types()[2].parent, Some(1)); // MEMBERS under PROJECTS
        assert_eq!(ims.types()[3].parent, Some(0)); // EQUIP under DEPARTMENTS
    }

    #[test]
    fn load_and_navigate_gn() {
        let mut ims = store();
        let schema = fixtures::departments_schema();
        for t in &fixtures::departments_value().tuples {
            ims.load_record(&schema, t).unwrap();
        }
        // 3 depts + 4 projects + 17 members + 14 equip = 38 occurrences.
        assert_eq!(ims.len(), 38);
        let mut c = Cursor::default();
        let mut count = 0;
        let mut first_types = Vec::new();
        while let Some((name, _)) = ims.gn(&mut c).unwrap() {
            if count < 6 {
                first_types.push(name);
            }
            count += 1;
        }
        assert_eq!(count, 38);
        // Hierarchical sequence for dept 314: dept, project 17, its 3
        // members, project 23...
        assert_eq!(
            first_types,
            vec![
                "DEPARTMENTS",
                "PROJECTS",
                "MEMBERS",
                "MEMBERS",
                "MEMBERS",
                "PROJECTS"
            ]
        );
    }

    #[test]
    fn gu_and_gnp_retrieve_one_departments_children() {
        let mut ims = store();
        let schema = fixtures::departments_schema();
        for t in &fixtures::departments_value().tuples {
            ims.load_record(&schema, t).unwrap();
        }
        let mut c = Cursor::default();
        let hit = ims
            .gu(&mut c, "DEPARTMENTS", Some(&Atom::Int(218)))
            .unwrap()
            .expect("department 218 found");
        assert_eq!(hit.1[0], Atom::Int(218));
        // GNP iterates exactly dept 218's subtree: 1 project + 6 members
        // + 4 equipment items = 11 occurrences.
        let mut n = 0;
        let mut members = 0;
        while let Some((name, _)) = ims.gnp(&mut c).unwrap() {
            n += 1;
            if name == "MEMBERS" {
                members += 1;
            }
        }
        assert_eq!(n, 11);
        assert_eq!(members, 6);
    }

    #[test]
    fn gu_miss_returns_none() {
        let mut ims = store();
        let schema = fixtures::departments_schema();
        ims.load_record(&schema, &fixtures::department_314())
            .unwrap();
        let mut c = Cursor::default();
        assert!(ims
            .gu(&mut c, "DEPARTMENTS", Some(&Atom::Int(999)))
            .unwrap()
            .is_none());
        assert!(ims.gnp(&mut c).unwrap().is_none(), "no position → no GNP");
    }
}
