//! Integrity walker: structural verification of stored tables.
//!
//! The paper's storage design (§4.1) hangs everything off structural
//! metadata — Mini Directory trees, local address spaces, page lists —
//! so a single corrupt page can poison a whole complex object. The
//! invariants are all *checkable*, though: every MD tree must mirror its
//! schema, every Mini-TID must resolve inside the object's local address
//! space, every page list must agree with the segment's free-space
//! accounting. This module walks all of them and returns a structured
//! [`IntegrityReport`] instead of failing fast, so one corrupt object
//! never hides another — and so the database layer can quarantine
//! exactly the damaged objects and salvage the rest.
//!
//! The walker is deliberately read-only: it never repairs, it only
//! reports. Repair policy (quarantine, salvage) lives above, in the
//! database layer.

use crate::colstore::decode_block;
use crate::error::StorageError;
use crate::flatstore::FlatStore;
use crate::minidir::{LayoutKind, MdGroup, MdNode, MdNodeKind, RootMd};
use crate::object::{ObjectHandle, ObjectStore, OWN_GROUP};
use crate::page::PageRef;
use crate::pagelist::PageList;
use crate::segment::Segment;
use crate::tid::{PageId, Tid};
use crate::Result;
use aim2_model::TableSchema;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The individual invariants the walker verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckKind {
    /// Page CRC-32 and slotted-page structure on a cold read.
    PageChecksum,
    /// MD-tree shape mirrors the table schema (node kinds, entry
    /// groups, data-subtuple arity) for the object's layout.
    MdShape,
    /// Mini-TIDs (and flat-table TIDs) resolve to readable subtuples
    /// inside the local address space.
    MiniTid,
    /// Page lists vs. segment extent, directory pages, and free-page
    /// accounting: no page owned twice, no free page in use.
    PageAccounting,
    /// MD entry groups are well ordered: one D entry leading its group,
    /// child slots ascending, no duplicate element entries.
    OrderedSubtable,
    /// Index entries point at live root TIDs (checked by the database
    /// layer, which owns the indexes).
    IndexLiveness,
}

impl CheckKind {
    /// All checks, in report order.
    pub const ALL: [CheckKind; 6] = [
        CheckKind::PageChecksum,
        CheckKind::MdShape,
        CheckKind::MiniTid,
        CheckKind::PageAccounting,
        CheckKind::OrderedSubtable,
        CheckKind::IndexLiveness,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::PageChecksum => "page-checksum",
            CheckKind::MdShape => "md-shape",
            CheckKind::MiniTid => "mini-tid",
            CheckKind::PageAccounting => "page-accounting",
            CheckKind::OrderedSubtable => "ordered-subtable",
            CheckKind::IndexLiveness => "index-liveness",
        }
    }

    fn index(self) -> usize {
        CheckKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("in ALL")
    }
}

/// One detected integrity violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Table the violation belongs to.
    pub table: String,
    /// Root TID of the affected object / row, when attributable — the
    /// quarantine unit. `None` for table-level damage.
    pub object: Option<Tid>,
    /// Which invariant failed.
    pub check: CheckKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table={} object=", self.table)?;
        match self.object {
            Some(t) => write!(f, "{t}")?,
            None => write!(f, "-")?,
        }
        write!(f, " check={}: {}", self.check.name(), self.detail)
    }
}

/// Aggregated result of an integrity walk: how much was verified per
/// check, and everything that failed. Never fail-fast — a report with
/// findings is still a complete report over the readable remainder.
#[derive(Debug, Clone, Default)]
pub struct IntegrityReport {
    checked: [u64; 6],
    findings: Vec<Finding>,
}

impl IntegrityReport {
    pub fn new() -> IntegrityReport {
        IntegrityReport::default()
    }

    /// Count one verification of `check`.
    pub fn bump(&mut self, check: CheckKind) {
        self.checked[check.index()] += 1;
    }

    /// Number of verifications performed for `check`.
    pub fn checked(&self, check: CheckKind) -> u64 {
        self.checked[check.index()]
    }

    /// Record a violation.
    pub fn record(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// All violations, in discovery order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// True when nothing failed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The set of `(table, root TID)` pairs with attributable damage —
    /// the database layer's quarantine input.
    pub fn corrupt_objects(&self) -> BTreeSet<(String, Tid)> {
        self.findings
            .iter()
            .filter_map(|f| f.object.map(|t| (f.table.clone(), t)))
            .collect()
    }
}

impl fmt::Display for IntegrityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            writeln!(f, "integrity: clean")?;
        } else {
            writeln!(f, "integrity: {} finding(s)", self.findings.len())?;
        }
        for k in CheckKind::ALL {
            let hits = self.findings.iter().filter(|x| x.check == k).count();
            writeln!(
                f,
                "  {}: checked={} findings={}",
                k.name(),
                self.checked(k),
                hits
            )?;
        }
        for x in &self.findings {
            writeln!(f, "  ! {x}")?;
        }
        Ok(())
    }
}

/// Finding context: the table and (optionally) object being walked.
struct Cx<'a> {
    table: &'a str,
    object: Option<Tid>,
}

impl Cx<'_> {
    fn record(&self, report: &mut IntegrityReport, check: CheckKind, detail: impl Into<String>) {
        report.record(Finding {
            table: self.table.to_string(),
            object: self.object,
            check,
            detail: detail.into(),
        });
    }
}

/// Cold-sweep every page of `seg`: drop the cache so each page is
/// re-read (and checksum-verified) from disk, then validate its slotted
/// structure. All-zero pages (allocated but never written before a
/// crash) are legitimately uninitialized and skipped. Returns the set
/// of damaged pages so object walks can attribute them.
pub fn check_segment_pages(
    seg: &mut Segment,
    table: &str,
    report: &mut IntegrityReport,
) -> Result<BTreeSet<PageId>> {
    let cx = Cx {
        table,
        object: None,
    };
    let pool = seg.pool_mut();
    pool.clear_cache()?;
    let mut bad = BTreeSet::new();
    for p in 0..pool.num_pages() {
        let pid = PageId(p);
        report.bump(CheckKind::PageChecksum);
        let outcome = pool.with_page(pid, |buf| {
            let r = PageRef::new(buf);
            if r.slot_count() == 0 && r.dead_bytes() == 0 && buf[2..6].iter().all(|&b| b == 0) {
                return Ok(()); // never-initialized page
            }
            r.validate()
        });
        let err = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(e)) => e, // structure invalid
            Err(e) => e,     // checksum / I/O failure
        };
        bad.insert(pid);
        cx.record(
            report,
            CheckKind::PageChecksum,
            format!("page {pid}: {err}"),
        );
    }
    Ok(bad)
}

/// Walk one NF² table's object store: pages, roots, MD trees, page
/// accounting. Findings accumulate in `report`; the walk itself only
/// errors on environmental failures (e.g. the cache flush).
pub fn check_object_store(
    store: &mut ObjectStore,
    schema: &TableSchema,
    table: &str,
    report: &mut IntegrityReport,
) -> Result<()> {
    let bad_pages = check_segment_pages(store.segment_mut(), table, report)?;
    // Enumerate roots page by page so one corrupt directory page cannot
    // hide the objects on the others.
    let mut handles: Vec<ObjectHandle> = Vec::new();
    for pid in store.dir_pages().to_vec() {
        let slots = store.segment_mut().pool_mut().with_page(pid, |buf| {
            PageRef::new(buf)
                .live_records()
                .map(|(s, _)| s)
                .collect::<Vec<_>>()
        });
        match slots {
            Ok(slots) => handles.extend(slots.into_iter().map(|s| ObjectHandle(Tid::new(pid, s)))),
            Err(e) => {
                let cx = Cx {
                    table,
                    object: None,
                };
                cx.record(
                    report,
                    CheckKind::MdShape,
                    format!("object directory page {pid} unreadable: {e}"),
                );
            }
        }
    }
    let mut owner: BTreeMap<PageId, Tid> = BTreeMap::new();
    for h in handles {
        check_object(store, schema, table, h, &bad_pages, &mut owner, report);
    }
    // Segment-level free-page accounting.
    report.bump(CheckKind::PageAccounting);
    let cx = Cx {
        table,
        object: None,
    };
    let num_pages = store.segment_mut().num_pages();
    let dir: BTreeSet<PageId> = store.dir_pages().iter().copied().collect();
    let mut seen_free: BTreeSet<PageId> = BTreeSet::new();
    for pid in store.free_pages().to_vec() {
        if pid.0 >= num_pages {
            cx.record(
                report,
                CheckKind::PageAccounting,
                format!("free list names page {pid} beyond the segment extent {num_pages}"),
            );
        }
        if !seen_free.insert(pid) {
            cx.record(
                report,
                CheckKind::PageAccounting,
                format!("page {pid} appears twice in the free list"),
            );
        }
        if dir.contains(&pid) {
            cx.record(
                report,
                CheckKind::PageAccounting,
                format!("directory page {pid} is also on the free list"),
            );
        }
        if let Some(&owner_tid) = owner.get(&pid) {
            cx.record(
                report,
                CheckKind::PageAccounting,
                format!("free page {pid} is in the page list of object {owner_tid}"),
            );
        }
    }
    Ok(())
}

fn check_object(
    store: &mut ObjectStore,
    schema: &TableSchema,
    table: &str,
    h: ObjectHandle,
    bad_pages: &BTreeSet<PageId>,
    owner: &mut BTreeMap<PageId, Tid>,
    report: &mut IntegrityReport,
) {
    let cx = Cx {
        table,
        object: Some(h.0),
    };
    report.bump(CheckKind::MdShape);
    let root = match store.root_md(h) {
        Ok(r) => r,
        Err(e) => {
            cx.record(
                report,
                CheckKind::MdShape,
                format!("root MD subtuple unreadable: {e}"),
            );
            return;
        }
    };
    if root.layout != store.layout() {
        cx.record(
            report,
            CheckKind::MdShape,
            format!(
                "root MD carries layout {} but the store uses {}",
                root.layout,
                store.layout()
            ),
        );
    }
    check_page_list(store, &root, &cx, bad_pages, owner, report);
    check_object_node(
        store,
        &root.page_list,
        &root.node,
        schema,
        root.layout,
        &cx,
        report,
    );
}

/// Page-list ↔ segment accounting for one object, and attribution of
/// already-detected page damage to the objects whose local address
/// space includes the damaged pages.
fn check_page_list(
    store: &mut ObjectStore,
    root: &RootMd,
    cx: &Cx<'_>,
    bad_pages: &BTreeSet<PageId>,
    owner: &mut BTreeMap<PageId, Tid>,
    report: &mut IntegrityReport,
) {
    report.bump(CheckKind::PageAccounting);
    let num_pages = store.segment_mut().num_pages();
    let dir: BTreeSet<PageId> = store.dir_pages().iter().copied().collect();
    let me = cx.object.expect("object context");
    for (lpage, pid) in root.page_list.iter() {
        if pid.0 >= num_pages {
            cx.record(
                report,
                CheckKind::PageAccounting,
                format!("page list entry {lpage} names page {pid} beyond the segment extent"),
            );
            continue;
        }
        if dir.contains(&pid) {
            cx.record(
                report,
                CheckKind::PageAccounting,
                format!("page list entry {lpage} names directory page {pid}"),
            );
        }
        if let Some(prev) = owner.insert(pid, me) {
            if prev != me {
                cx.record(
                    report,
                    CheckKind::PageAccounting,
                    format!("page {pid} is in this object's page list and in {prev}'s"),
                );
            }
        }
        if bad_pages.contains(&pid) {
            cx.record(
                report,
                CheckKind::PageChecksum,
                format!("local address space includes corrupt page {pid}"),
            );
        }
    }
}

/// An object-shaped node (root or complex subobject): its own "DCC"
/// group plus, per layout, subtable children / membership groups.
fn check_object_node(
    store: &mut ObjectStore,
    pl: &PageList,
    node: &MdNode,
    schema: &TableSchema,
    layout: LayoutKind,
    cx: &Cx<'_>,
    report: &mut IntegrityReport,
) {
    report.bump(CheckKind::MdShape);
    let subs = schema.table_indices();
    let Some(own) = node.groups.iter().find(|g| g.tag == OWN_GROUP) else {
        cx.record(
            report,
            CheckKind::MdShape,
            "MD node lacks its own entry group",
        );
        return;
    };
    check_entry_group(own, subs.len(), cx, report);
    match own.data_entry() {
        None => cx.record(report, CheckKind::MdShape, "own group lacks a D entry"),
        Some(d) => check_data(store, pl, d, schema, cx, report),
    }
    match layout {
        LayoutKind::Ss1 => {
            if node.groups.len() != 1 {
                cx.record(
                    report,
                    CheckKind::MdShape,
                    format!(
                        "SS1 object node has {} groups, expected 1",
                        node.groups.len()
                    ),
                );
            }
            for (slot, &attr_idx) in subs.iter().enumerate() {
                let sub = sub_schema(schema, attr_idx);
                let Some(st_mt) = own.child_for(slot as u8) else {
                    cx.record(
                        report,
                        CheckKind::MdShape,
                        format!("missing C entry for subtable slot {slot}"),
                    );
                    continue;
                };
                report.bump(CheckKind::MiniTid);
                let st = match store.read_md_node_at(pl, st_mt) {
                    Ok(n) => n,
                    Err(e) => {
                        cx.record(
                            report,
                            CheckKind::MiniTid,
                            format!("subtable MD at {st_mt} unreadable: {e}"),
                        );
                        continue;
                    }
                };
                if st.kind != MdNodeKind::Subtable || st.groups.len() != 1 {
                    cx.record(
                        report,
                        CheckKind::MdShape,
                        format!("SS1 subtable node at {st_mt} has the wrong shape"),
                    );
                    continue;
                }
                check_member_list(&st.groups[0], sub.is_flat(), cx, report);
                for e in &st.groups[0].entries {
                    if sub.is_flat() {
                        if e.is_data() {
                            check_data(store, pl, e.tid, sub, cx, report);
                        }
                    } else if e.child_slot().is_some() {
                        report.bump(CheckKind::MiniTid);
                        match store.read_md_node_at(pl, e.tid) {
                            Ok(child) if child.kind == MdNodeKind::Subobject => {
                                check_object_node(store, pl, &child, sub, layout, cx, report)
                            }
                            Ok(_) => cx.record(
                                report,
                                CheckKind::MdShape,
                                format!("element at {} is not a subobject node", e.tid),
                            ),
                            Err(err) => cx.record(
                                report,
                                CheckKind::MiniTid,
                                format!("subobject MD at {} unreadable: {err}", e.tid),
                            ),
                        }
                    }
                }
            }
        }
        LayoutKind::Ss2 => {
            for (slot, &attr_idx) in subs.iter().enumerate() {
                let sub = sub_schema(schema, attr_idx);
                let Some(membership) = node.groups.iter().find(|g| g.tag == slot as u16) else {
                    cx.record(
                        report,
                        CheckKind::MdShape,
                        format!("missing membership group for subtable slot {slot}"),
                    );
                    continue;
                };
                check_member_list(membership, sub.is_flat(), cx, report);
                for e in &membership.entries {
                    if sub.is_flat() {
                        if e.is_data() {
                            check_data(store, pl, e.tid, sub, cx, report);
                        }
                    } else if e.child_slot().is_some() {
                        report.bump(CheckKind::MiniTid);
                        match store.read_md_node_at(pl, e.tid) {
                            Ok(child) if child.kind == MdNodeKind::Subobject => {
                                check_object_node(store, pl, &child, sub, layout, cx, report)
                            }
                            Ok(_) => cx.record(
                                report,
                                CheckKind::MdShape,
                                format!("element at {} is not a subobject node", e.tid),
                            ),
                            Err(err) => cx.record(
                                report,
                                CheckKind::MiniTid,
                                format!("subobject MD at {} unreadable: {err}", e.tid),
                            ),
                        }
                    }
                }
            }
            let expected = 1 + subs.len();
            if node.groups.len() != expected {
                cx.record(
                    report,
                    CheckKind::MdShape,
                    format!(
                        "SS2 object node has {} groups, expected {expected}",
                        node.groups.len()
                    ),
                );
            }
        }
        LayoutKind::Ss3 => {
            for (slot, &attr_idx) in subs.iter().enumerate() {
                let sub = sub_schema(schema, attr_idx);
                match own.child_for(slot as u8) {
                    None => cx.record(
                        report,
                        CheckKind::MdShape,
                        format!("missing C entry for subtable slot {slot}"),
                    ),
                    Some(st) => check_ss3_subtable(store, pl, st, sub, cx, report),
                }
            }
        }
    }
}

/// An SS3 subtable node: one entry group per element, each "DCC"-shaped.
fn check_ss3_subtable(
    store: &mut ObjectStore,
    pl: &PageList,
    mt: crate::tid::MiniTid,
    schema: &TableSchema,
    cx: &Cx<'_>,
    report: &mut IntegrityReport,
) {
    report.bump(CheckKind::MiniTid);
    let node = match store.read_md_node_at(pl, mt) {
        Ok(n) => n,
        Err(e) => {
            cx.record(
                report,
                CheckKind::MiniTid,
                format!("subtable MD at {mt} unreadable: {e}"),
            );
            return;
        }
    };
    if node.kind != MdNodeKind::Subtable {
        cx.record(
            report,
            CheckKind::MdShape,
            format!("node at {mt} should be a subtable node"),
        );
        return;
    }
    let subs = schema.table_indices();
    for group in &node.groups {
        check_entry_group(group, subs.len(), cx, report);
        match group.data_entry() {
            None => cx.record(
                report,
                CheckKind::MdShape,
                format!("element group in subtable at {mt} lacks a D entry"),
            ),
            Some(d) => check_data(store, pl, d, schema, cx, report),
        }
        for (slot, &attr_idx) in subs.iter().enumerate() {
            let nested = sub_schema(schema, attr_idx);
            match group.child_for(slot as u8) {
                None => cx.record(
                    report,
                    CheckKind::MdShape,
                    format!("element group lacks a C entry for subtable slot {slot}"),
                ),
                Some(st) => check_ss3_subtable(store, pl, st, nested, cx, report),
            }
        }
    }
}

/// A data subtuple: the Mini-TID must resolve and the decoded atoms
/// must match the schema level's atomic arity.
fn check_data(
    store: &mut ObjectStore,
    pl: &PageList,
    mt: crate::tid::MiniTid,
    schema: &TableSchema,
    cx: &Cx<'_>,
    report: &mut IntegrityReport,
) {
    report.bump(CheckKind::MiniTid);
    match store.read_data_atoms_at(pl, mt) {
        Err(e) => cx.record(
            report,
            CheckKind::MiniTid,
            format!("data subtuple at {mt} unreadable: {e}"),
        ),
        Ok(atoms) => {
            let want = schema.atomic_indices().len();
            if atoms.len() != want {
                cx.record(
                    report,
                    CheckKind::MdShape,
                    format!(
                        "data subtuple at {mt} has {} atoms, schema expects {want}",
                        atoms.len()
                    ),
                );
            }
        }
    }
}

/// A "DCC"-shaped entry group (own groups, SS3 element groups): at most
/// one D entry, leading the group; C slots strictly ascending; no
/// duplicate targets. Entry order is list order (§4.1), so order damage
/// is data damage.
fn check_entry_group(g: &MdGroup, n_subs: usize, cx: &Cx<'_>, report: &mut IntegrityReport) {
    report.bump(CheckKind::OrderedSubtable);
    let d_count = g.entries.iter().filter(|e| e.is_data()).count();
    if d_count > 1 {
        cx.record(
            report,
            CheckKind::OrderedSubtable,
            format!("entry group has {d_count} D entries"),
        );
    }
    if d_count == 1 && !g.entries[0].is_data() {
        cx.record(
            report,
            CheckKind::OrderedSubtable,
            "D entry does not lead its group",
        );
    }
    let slots: Vec<u8> = g.entries.iter().filter_map(|e| e.child_slot()).collect();
    if slots.windows(2).any(|w| w[0] >= w[1]) {
        cx.record(
            report,
            CheckKind::OrderedSubtable,
            format!("C entry slots not strictly ascending: {slots:?}"),
        );
    }
    if let Some(&max) = slots.iter().max() {
        if max as usize >= n_subs {
            cx.record(
                report,
                CheckKind::MdShape,
                format!("C entry names subtable slot {max}, schema has {n_subs}"),
            );
        }
    }
    check_no_dup_targets(g, cx, report);
}

/// A membership / element list group (SS2 membership, SS1 subtable):
/// entries must be homogeneous — all D for flat element types, all C
/// otherwise — and duplicate-free (entry order is the list order).
fn check_member_list(g: &MdGroup, flat: bool, cx: &Cx<'_>, report: &mut IntegrityReport) {
    report.bump(CheckKind::OrderedSubtable);
    let wrong = g.entries.iter().filter(|e| e.is_data() != flat).count();
    if wrong > 0 {
        cx.record(
            report,
            CheckKind::MdShape,
            format!(
                "membership list mixes entry kinds ({wrong} of {} unexpected)",
                g.entries.len()
            ),
        );
    }
    check_no_dup_targets(g, cx, report);
}

fn check_no_dup_targets(g: &MdGroup, cx: &Cx<'_>, report: &mut IntegrityReport) {
    let mut seen = BTreeSet::new();
    for e in &g.entries {
        if !seen.insert((e.tid.lpage, e.tid.slot)) {
            cx.record(
                report,
                CheckKind::OrderedSubtable,
                format!("duplicate entry target {}", e.tid),
            );
        }
    }
}

/// Walk one flat (1NF) table: pages, then every TID resolves to a tuple
/// of the schema's arity.
pub fn check_flat_store(
    store: &mut FlatStore,
    schema: &TableSchema,
    table: &str,
    report: &mut IntegrityReport,
) -> Result<()> {
    check_segment_pages(store.segment_mut(), table, report)?;
    // TID accounting: every registered row sits inside the segment
    // extent, and no TID is registered twice.
    report.bump(CheckKind::PageAccounting);
    let num_pages = store.segment_mut().num_pages();
    let mut seen = BTreeSet::new();
    for tid in store.tids().to_vec() {
        let cx = Cx {
            table,
            object: Some(tid),
        };
        if tid.page.0 >= num_pages {
            cx.record(
                report,
                CheckKind::PageAccounting,
                format!("TID {tid} names a page beyond the segment extent {num_pages}"),
            );
        }
        if !seen.insert(tid) {
            cx.record(
                report,
                CheckKind::PageAccounting,
                format!("TID {tid} registered twice"),
            );
        }
    }
    let want = schema.attrs.len();
    for tid in store.tids().to_vec() {
        let cx = Cx {
            table,
            object: Some(tid),
        };
        report.bump(CheckKind::MiniTid);
        match store.read(tid) {
            Err(e) => cx.record(
                report,
                CheckKind::MiniTid,
                format!("tuple at {tid} unreadable: {e}"),
            ),
            Ok(t) => {
                report.bump(CheckKind::MdShape);
                if t.fields.len() != want {
                    cx.record(
                        report,
                        CheckKind::MdShape,
                        format!(
                            "tuple at {tid} has {} fields, schema expects {want}",
                            t.fields.len()
                        ),
                    );
                }
            }
        }
    }
    // Cold tier: every block record must read, its payload CRC must
    // verify, and the decoded shape must agree with the catalog's
    // block directory (row count, column count, zone maps). The block's
    // home TID is the attributable object — quarantining it takes the
    // whole block out of service, which matches its damage unit.
    for (ord, meta) in store.cold_blocks().to_vec().iter().enumerate() {
        let cx = Cx {
            table,
            object: Some(meta.tid),
        };
        report.bump(CheckKind::PageChecksum);
        let bytes = match store.segment_mut().read(meta.tid) {
            Ok(b) => b,
            Err(e) => {
                cx.record(
                    report,
                    CheckKind::PageChecksum,
                    format!("cold block {ord} unreadable: {e}"),
                );
                continue;
            }
        };
        match decode_block(&bytes) {
            Err(StorageError::ChecksumMismatch(msg)) => cx.record(
                report,
                CheckKind::PageChecksum,
                format!("cold block {ord} CRC mismatch: {msg}"),
            ),
            Err(e) => cx.record(
                report,
                CheckKind::MdShape,
                format!("cold block {ord} undecodable: {e}"),
            ),
            Ok((block, zones)) => {
                report.bump(CheckKind::MdShape);
                if block.rows != meta.rows {
                    cx.record(
                        report,
                        CheckKind::MdShape,
                        format!(
                            "cold block {ord} holds {} rows, directory says {}",
                            block.rows, meta.rows
                        ),
                    );
                } else if block.columns.len() != want {
                    cx.record(
                        report,
                        CheckKind::MdShape,
                        format!(
                            "cold block {ord} has {} columns, schema expects {want}",
                            block.columns.len()
                        ),
                    );
                } else if zones != meta.zones {
                    cx.record(
                        report,
                        CheckKind::MdShape,
                        format!("cold block {ord} zone maps diverge from the directory"),
                    );
                }
            }
        }
    }
    Ok(())
}

// Small helper: the (validated-at-create-time) subtable schema of a
// table-valued attribute. Corrupt *schemas* are the catalog's problem,
// not the walker's, so this can stay infallible.
fn sub_schema(schema: &TableSchema, attr_idx: usize) -> &TableSchema {
    schema.attrs[attr_idx]
        .kind
        .as_table()
        .expect("table-valued attribute")
}

#[allow(unused_imports)]
use StorageError as _; // referenced by doc text

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::segment::Segment;
    use crate::stats::Stats;
    use aim2_model::fixtures;

    fn store(layout: LayoutKind) -> ObjectStore {
        let pool = BufferPool::new(Box::new(MemDisk::new(512)), 16, Stats::new());
        ObjectStore::new(Segment::new(pool), layout)
    }

    #[test]
    fn clean_store_reports_clean_for_all_layouts() {
        let schema = fixtures::departments_schema();
        let value = fixtures::departments_value();
        for layout in LayoutKind::ALL {
            let mut st = store(layout);
            for t in &value.tuples {
                st.insert_object(&schema, t).unwrap();
            }
            let mut report = IntegrityReport::new();
            check_object_store(&mut st, &schema, "DEPTS", &mut report).unwrap();
            assert!(report.is_clean(), "{layout}: {report}");
            assert!(report.checked(CheckKind::PageChecksum) > 0);
            assert!(report.checked(CheckKind::MdShape) > 0);
            assert!(report.checked(CheckKind::MiniTid) > 0);
            assert!(report.checked(CheckKind::OrderedSubtable) > 0);
            assert!(report.checked(CheckKind::PageAccounting) > 0);
        }
    }

    #[test]
    fn clean_flat_store_reports_clean() {
        let schema = fixtures::departments_1nf_schema();
        let value = fixtures::departments_1nf_value();
        let pool = BufferPool::new(Box::new(MemDisk::new(512)), 16, Stats::new());
        let mut fs = FlatStore::new(Segment::new(pool));
        fs.load(&value).unwrap();
        let mut report = IntegrityReport::new();
        check_flat_store(&mut fs, &schema, "DEPTS1NF", &mut report).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(
            report.checked(CheckKind::MiniTid),
            value.tuples.len() as u64
        );
    }

    #[test]
    fn deleted_objects_leave_a_clean_store() {
        let schema = fixtures::departments_schema();
        let value = fixtures::departments_value();
        let mut st = store(LayoutKind::Ss3);
        let mut handles = Vec::new();
        for t in &value.tuples {
            handles.push(st.insert_object(&schema, t).unwrap());
        }
        st.delete_object(handles[0]).unwrap();
        let mut report = IntegrityReport::new();
        check_object_store(&mut st, &schema, "DEPTS", &mut report).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn report_display_is_stable() {
        let mut report = IntegrityReport::new();
        report.bump(CheckKind::PageChecksum);
        report.record(Finding {
            table: "T".into(),
            object: None,
            check: CheckKind::PageChecksum,
            detail: "boom".into(),
        });
        let s = report.to_string();
        assert!(s.contains("integrity: 1 finding(s)"));
        assert!(s.contains("page-checksum: checked=1 findings=1"));
        assert!(s.contains("table=T object=- check=page-checksum: boom"));
    }
}
