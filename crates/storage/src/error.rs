//! Error type for the storage engine.

use crate::tid::{MiniTid, PageId, Tid};
use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A page number beyond the segment's extent was addressed.
    PageOutOfRange(PageId),
    /// A TID's slot does not exist or has been deleted.
    BadTid(Tid),
    /// A Mini-TID's local page index is a gap or beyond the page list.
    BadMiniTid(MiniTid),
    /// A record was too large to ever fit a page.
    RecordTooLarge { len: usize, max: usize },
    /// A stored byte structure failed to decode (corruption or bug).
    Corrupt(String),
    /// A page read from disk failed its CRC-32 verification: the page
    /// was modified outside the engine (bit rot, partial overwrite).
    /// `expected` is the stamped checksum, `found` the recomputed one.
    CorruptPage {
        seg: String,
        page: PageId,
        expected: u32,
        found: u32,
    },
    /// A byte structure inside an otherwise readable page failed bounds
    /// or shape validation (truncated slot directory, garbage offsets).
    CorruptData(String),
    /// A checksummed structure (WAL frame) failed verification — a torn
    /// or corrupted write was *detected*, as opposed to silently read.
    ChecksumMismatch(String),
    /// Model-level error surfaced through storage (encoding atoms etc.).
    Model(aim2_model::ModelError),
    /// The operation does not apply to this object shape (e.g. subtable
    /// path does not exist in the stored schema).
    BadPath(String),
    /// An element index within a subtable was out of range.
    BadElementIndex { index: usize, len: usize },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::PageOutOfRange(p) => write!(f, "page {p} out of range"),
            StorageError::BadTid(t) => write!(f, "invalid TID {t}"),
            StorageError::BadMiniTid(t) => write!(f, "invalid Mini-TID {t}"),
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt storage structure: {msg}"),
            StorageError::CorruptPage {
                seg,
                page,
                expected,
                found,
            } => write!(
                f,
                "corrupt page {page} in segment {seg}: stored checksum {expected:#010x}, computed {found:#010x}"
            ),
            StorageError::CorruptData(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::ChecksumMismatch(msg) => {
                write!(f, "checksum mismatch (torn or corrupt write): {msg}")
            }
            StorageError::Model(e) => write!(f, "model error: {e}"),
            StorageError::BadPath(p) => write!(f, "no such subtable path: {p}"),
            StorageError::BadElementIndex { index, len } => {
                write!(f, "element index {index} out of range (subtable has {len})")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<aim2_model::ModelError> for StorageError {
    fn from(e: aim2_model::ModelError) -> Self {
        StorageError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid::{PageId, SlotNo, Tid};

    #[test]
    fn display_and_source() {
        let e = StorageError::BadTid(Tid::new(PageId(3), SlotNo(7)));
        assert!(e.to_string().contains("3"));
        let io = StorageError::Io(std::io::Error::other("x"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
