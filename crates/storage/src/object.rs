//! The complex-object manager.
//!
//! An [`ObjectStore`] is the storage of one NF² table: it stores each
//! tuple of the table as one *complex object* — its data subtuples plus a
//! Mini Directory in the table's chosen [`LayoutKind`] — inside the
//! object's own local address space (page list). It implements the
//! paper's three demands (§4.1):
//!
//! 1. **clustering on the complex-object level**: new subtuples go to
//!    pages already in the object's page list before a fresh page is
//!    taken;
//! 2. **separation of structure and data**: navigation (partial reads,
//!    element addressing, the data walks used by indexes) touches MD
//!    subtuples only, fetching data subtuples only when their values are
//!    needed;
//! 3. **fast processing of arbitrary parts**: whole objects, single
//!    subtables, single subobjects and single data subtuples are all
//!    directly addressable.
//!
//! Object *move* (check-out / reorganization) copies pages and rewrites
//! the page list only — no `D`/`C` pointer changes, observable through
//! [`crate::stats::Stats::pointer_rewrites`] staying at zero.
//!
//! Mutating operations (update atoms, insert/delete elements) are
//! provided for **SS3**, the layout AIM-II chose; SS1/SS2 support
//! insert / read / partial read / walk / move / delete — everything the
//! Figure-6 comparison needs.

use crate::error::StorageError;
use crate::minidir::{LayoutKind, MdEntry, MdGroup, MdNode, MdNodeKind, RootMd};
use crate::pagelist::PageList;
use crate::segment::{
    Segment, MINITID_SENTINEL, REC_FWD_LOCAL, REC_HEAD_LOCAL, REC_INLINE, REC_OVFL_LOCAL,
};
use crate::tid::{MiniTid, PageId, Tid};
use crate::Result;
use aim2_model::encode::{decode_atoms, encode_atoms};
use aim2_model::{Atom, AttrKind, Path, TableSchema, TableValue, Tuple, Value};

/// Group tag marking a node's *own* entry group (the paper's "DCC"-style
/// group: own data pointer followed by child pointers).
pub(crate) const OWN_GROUP: u16 = u16::MAX;

/// Navigation result of `ObjectStore::locate`: the subtable-node chain
/// taken, the element group reached, and its schema level.
type Located<'s> = (Vec<(MiniTid, usize)>, MdGroup, &'s TableSchema);

/// Handle of a stored complex object: the TID of its root MD subtuple.
/// Stable across updates *and* page-level object moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectHandle(pub Tid);

/// How subtuples are placed on pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPolicy {
    /// The paper's strategy: scan the object's page list for free space,
    /// take a fresh page only when none fits.
    Clustered,
    /// Anti-clustering baseline for the CLU bench: subtuples are spread
    /// round-robin over a shared page pool, interleaving objects — the
    /// "distributed among too many database pages" failure mode the
    /// paper warns about. Move/delete are not supported under this
    /// policy (pages are shared).
    Scattered,
}

/// Size/shape statistics of one stored object (Fig 6 comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MdProfile {
    /// Number of MD subtuples, root included.
    pub md_subtuples: usize,
    /// Number of data subtuples.
    pub data_subtuples: usize,
    /// Total encoded bytes of MD subtuples (root payload included).
    pub md_bytes: usize,
    /// Total encoded bytes of data subtuples.
    pub data_bytes: usize,
    /// Live pages in the object's local address space.
    pub pages: usize,
}

/// One data subtuple found by [`ObjectStore::walk_data`], together with
/// the information needed to build hierarchical index addresses (§4.2).
#[derive(Debug, Clone)]
pub struct DataWalkEntry {
    /// Subtable attribute path from the table level to the subtuple's
    /// level (empty for the object's own data subtuple).
    pub attr_path: Path,
    /// Data subtuples of the complex subobjects on the path, top-down,
    /// **excluding** the object itself and the target.
    pub ancestors: Vec<MiniTid>,
    /// The data subtuple itself.
    pub data: MiniTid,
    /// Its decoded atomic values (in schema order of that level).
    pub atoms: Vec<Atom>,
}

/// One data subtuple with its **MD-pointer path** (the naive Fig 7a
/// address form): the chain of non-root MD subtuples traversed from the
/// root to the data subtuple.
#[derive(Debug, Clone)]
pub struct MdPathEntry {
    pub attr_path: Path,
    /// MD subtuples on the pointer path (subtable/subobject nodes).
    pub md_path: Vec<MiniTid>,
    pub data: MiniTid,
    pub atoms: Vec<Atom>,
}

/// Addresses one (sub)object inside a stored complex object by element
/// ordinals: `steps` is a sequence of (table-valued attribute index at
/// that level, element ordinal). Empty = the object itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ElemLoc {
    pub steps: Vec<(usize, usize)>,
}

impl ElemLoc {
    /// The object itself.
    pub fn object() -> ElemLoc {
        ElemLoc::default()
    }

    /// Descend into element `elem` of the subtable at `attr_idx`.
    pub fn then(mut self, attr_idx: usize, elem: usize) -> ElemLoc {
        self.steps.push((attr_idx, elem));
        self
    }
}

/// Storage for one NF² table's complex objects.
pub struct ObjectStore {
    seg: Segment,
    layout: LayoutKind,
    policy: ClusterPolicy,
    /// Directory pages holding root MD subtuples (outside any object's
    /// local address space, so page-level moves never relocate a root).
    dir_pages: Vec<PageId>,
    /// Pages freed by object deletion, reusable for new objects.
    free_pages: Vec<PageId>,
    /// Shared spread pool for [`ClusterPolicy::Scattered`].
    spread_pages: Vec<PageId>,
    spread_cursor: usize,
}

impl ObjectStore {
    /// Create an object store over a segment using `layout` (AIM-II used
    /// SS3) and the clustered placement policy.
    pub fn new(seg: Segment, layout: LayoutKind) -> ObjectStore {
        ObjectStore {
            seg,
            layout,
            policy: ClusterPolicy::Clustered,
            dir_pages: Vec::new(),
            free_pages: Vec::new(),
            spread_pages: Vec::new(),
            spread_cursor: 0,
        }
    }

    /// Re-attach to an existing store (database restart): the segment's
    /// pages already hold the objects; `dir_pages` / `free_pages` come
    /// from the persisted catalog.
    pub fn reopen(
        seg: Segment,
        layout: LayoutKind,
        dir_pages: Vec<PageId>,
        free_pages: Vec<PageId>,
    ) -> ObjectStore {
        ObjectStore {
            seg,
            layout,
            policy: ClusterPolicy::Clustered,
            dir_pages,
            free_pages,
            spread_pages: Vec::new(),
            spread_cursor: 0,
        }
    }

    /// Directory pages holding root MD subtuples (persisted by the
    /// catalog checkpoint).
    pub fn dir_pages(&self) -> &[PageId] {
        &self.dir_pages
    }

    /// Pages reclaimed from deleted objects (persisted by the catalog
    /// checkpoint).
    pub fn free_pages(&self) -> &[PageId] {
        &self.free_pages
    }

    /// Override the placement policy (benches use `Scattered`).
    pub fn with_policy(mut self, policy: ClusterPolicy) -> ObjectStore {
        self.policy = policy;
        self
    }

    /// The layout this table's objects use.
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// The underlying segment (for stats / buffer control).
    pub fn segment_mut(&mut self) -> &mut Segment {
        &mut self.seg
    }

    /// Shared statistics block.
    pub fn stats(&self) -> crate::stats::Stats {
        self.seg.stats().clone()
    }

    // =================================================================
    // Local-space record primitives
    // =================================================================

    fn fresh_page(&mut self) -> Result<PageId> {
        if let Some(p) = self.free_pages.pop() {
            return Ok(p);
        }
        self.seg.allocate_page()
    }

    /// Fan-out of the Scattered anti-clustering policy: consecutive
    /// subtuples cycle over at least this many pages.
    const SCATTER_FANOUT: usize = 16;

    /// Place one physical record in the object's local address space,
    /// growing the page list as needed. Returns its Mini-TID.
    fn place_local(&mut self, pl: &mut PageList, flag: u8, payload: &[u8]) -> Result<MiniTid> {
        match self.policy {
            ClusterPolicy::Clustered => {
                // §4.1: scan the page list for a page with enough space.
                for (lpage, pid) in pl.iter().collect::<Vec<_>>() {
                    if self.seg.page_free(pid)? > payload.len() {
                        if let Some(slot) = self.seg.rec_insert_in(pid, flag, payload)? {
                            return Ok(MiniTid::new(lpage, slot));
                        }
                    }
                }
                // No page in the local address space fits: take a new one
                // and add it to the page list.
                let pid = self.fresh_page()?;
                let lpage = pl.add(pid);
                let slot = self.seg.rec_insert_in(pid, flag, payload)?.ok_or(
                    StorageError::RecordTooLarge {
                        len: payload.len(),
                        max: self.seg.max_single(),
                    },
                )?;
                Ok(MiniTid::new(lpage, slot))
            }
            ClusterPolicy::Scattered => {
                // Keep a pool of at least SCATTER_FANOUT shared pages and
                // advance the cursor on every placement, so consecutive
                // subtuples (and different objects) interleave across
                // pages — the paper's anti-pattern.
                if self.spread_pages.len() < Self::SCATTER_FANOUT {
                    let pid = self.seg.allocate_page()?;
                    self.spread_pages.push(pid);
                }
                let n = self.spread_pages.len();
                for _ in 0..n {
                    let pid = self.spread_pages[self.spread_cursor % n];
                    self.spread_cursor += 1;
                    if self.seg.page_free(pid)? > payload.len() {
                        if let Some(slot) = self.seg.rec_insert_in(pid, flag, payload)? {
                            let lpage = match pl.position_of(pid) {
                                Some(l) => l,
                                None => pl.add(pid),
                            };
                            return Ok(MiniTid::new(lpage, slot));
                        }
                    }
                }
                let pid = self.seg.allocate_page()?;
                self.spread_pages.push(pid);
                self.spread_cursor += 1;
                let slot = self.seg.rec_insert_in(pid, flag, payload)?.ok_or(
                    StorageError::RecordTooLarge {
                        len: payload.len(),
                        max: self.seg.max_single(),
                    },
                )?;
                let lpage = pl.add(pid);
                Ok(MiniTid::new(lpage, slot))
            }
        }
    }

    fn translate(&self, pl: &PageList, mt: MiniTid) -> Result<PageId> {
        pl.translate(mt.lpage).ok_or(StorageError::BadMiniTid(mt))
    }

    /// Largest chunk of a local overflow record.
    fn max_chunk_local(&self) -> usize {
        self.seg.max_single() - MiniTid::ENCODED_LEN
    }

    /// Store `data` as a chain of local overflow records; returns the
    /// chain head.
    fn store_ovfl_local(&mut self, pl: &mut PageList, data: &[u8]) -> Result<MiniTid> {
        let chunk = self.max_chunk_local();
        let mut next = MINITID_SENTINEL;
        let mut chunks: Vec<&[u8]> = data.chunks(chunk).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        for piece in chunks.iter().rev() {
            let mut payload = Vec::with_capacity(MiniTid::ENCODED_LEN + piece.len());
            next.encode(&mut payload);
            payload.extend_from_slice(piece);
            next = self.place_local(pl, REC_OVFL_LOCAL, &payload)?;
        }
        Ok(next)
    }

    fn read_ovfl_local(&mut self, pl: &PageList, head: MiniTid, out: &mut Vec<u8>) -> Result<()> {
        let mut cur = head;
        loop {
            let pid = self.translate(pl, cur)?;
            let (flag, payload) = self.seg.rec_read(pid, cur.slot)?;
            if flag != REC_OVFL_LOCAL {
                return Err(StorageError::Corrupt(format!(
                    "local overflow chain hit flag {flag}"
                )));
            }
            let mut pos = 0;
            let nxt = MiniTid::decode(&payload, &mut pos)
                .ok_or_else(|| StorageError::Corrupt("truncated local overflow header".into()))?;
            let body = payload.get(pos..).ok_or_else(|| {
                StorageError::CorruptData("local overflow record shorter than its header".into())
            })?;
            out.extend_from_slice(body);
            if nxt == MINITID_SENTINEL {
                return Ok(());
            }
            cur = nxt;
        }
    }

    fn free_ovfl_local(&mut self, pl: &PageList, head: MiniTid) -> Result<()> {
        let mut cur = head;
        loop {
            let pid = self.translate(pl, cur)?;
            let (flag, payload) = self.seg.rec_read(pid, cur.slot)?;
            if flag != REC_OVFL_LOCAL {
                return Err(StorageError::Corrupt(format!(
                    "local overflow chain hit flag {flag}"
                )));
            }
            self.seg.rec_delete(pid, cur.slot)?;
            let mut pos = 0;
            let nxt = MiniTid::decode(&payload, &mut pos)
                .ok_or_else(|| StorageError::Corrupt("truncated local overflow header".into()))?;
            if nxt == MINITID_SENTINEL {
                return Ok(());
            }
            cur = nxt;
        }
    }

    /// Store a subtuple of any length in the local address space.
    fn store_local(&mut self, pl: &mut PageList, payload: &[u8]) -> Result<MiniTid> {
        if payload.len() <= self.seg.max_single() {
            return self.place_local(pl, REC_INLINE, payload);
        }
        let chunk = self.max_chunk_local();
        let tail = self.store_ovfl_local(pl, &payload[chunk..])?;
        let mut head = Vec::with_capacity(MiniTid::ENCODED_LEN + chunk);
        tail.encode(&mut head);
        head.extend_from_slice(&payload[..chunk]);
        self.place_local(pl, REC_HEAD_LOCAL, &head)
    }

    /// Read a subtuple by Mini-TID, whatever its physical layout.
    fn read_local_payload(&mut self, pl: &PageList, mt: MiniTid) -> Result<Vec<u8>> {
        let pid = self.translate(pl, mt)?;
        let (flag, payload) = self.seg.rec_read(pid, mt.slot)?;
        match flag {
            REC_INLINE => Ok(payload),
            REC_FWD_LOCAL => {
                let mut pos = 0;
                let target = MiniTid::decode(&payload, &mut pos)
                    .ok_or_else(|| StorageError::Corrupt("bad local forward".into()))?;
                // The forward target is itself a full blob (inline or
                // chunked) — one hop, never a chain of forwards.
                let tpid = self.translate(pl, target)?;
                let (tflag, tpayload) = self.seg.rec_read(tpid, target.slot)?;
                match tflag {
                    REC_INLINE => Ok(tpayload),
                    REC_HEAD_LOCAL => self.read_head_local(pl, tpayload),
                    other => Err(StorageError::Corrupt(format!(
                        "local forward target has flag {other}"
                    ))),
                }
            }
            REC_HEAD_LOCAL => self.read_head_local(pl, payload),
            REC_OVFL_LOCAL => Err(StorageError::BadMiniTid(mt)),
            other => Err(StorageError::Corrupt(format!("unexpected flag {other}"))),
        }
    }

    fn read_head_local(&mut self, pl: &PageList, payload: Vec<u8>) -> Result<Vec<u8>> {
        let mut pos = 0;
        let next = MiniTid::decode(&payload, &mut pos)
            .ok_or_else(|| StorageError::Corrupt("bad local head header".into()))?;
        let mut out = payload
            .get(pos..)
            .ok_or_else(|| {
                StorageError::CorruptData("local head record shorter than its header".into())
            })?
            .to_vec();
        if next != MINITID_SENTINEL {
            self.read_ovfl_local(pl, next, &mut out)?;
        }
        Ok(out)
    }

    /// Free any storage a subtuple holds beyond its home record.
    fn free_local_extras(&mut self, pl: &PageList, mt: MiniTid) -> Result<()> {
        let pid = self.translate(pl, mt)?;
        let (flag, payload) = self.seg.rec_read(pid, mt.slot)?;
        match flag {
            REC_INLINE => Ok(()),
            REC_HEAD_LOCAL => {
                let mut pos = 0;
                let next = MiniTid::decode(&payload, &mut pos)
                    .ok_or_else(|| StorageError::Corrupt("bad local head header".into()))?;
                if next != MINITID_SENTINEL {
                    self.free_ovfl_local(pl, next)?;
                }
                Ok(())
            }
            REC_FWD_LOCAL => {
                let mut pos = 0;
                let target = MiniTid::decode(&payload, &mut pos)
                    .ok_or_else(|| StorageError::Corrupt("bad local forward".into()))?;
                self.free_local_extras(pl, target)?;
                let tpid = self.translate(pl, target)?;
                self.seg.rec_delete(tpid, target.slot)
            }
            REC_OVFL_LOCAL => Err(StorageError::BadMiniTid(mt)),
            other => Err(StorageError::Corrupt(format!("unexpected flag {other}"))),
        }
    }

    /// Update the subtuple at `mt`, keeping the Mini-TID valid (home
    /// record becomes a local forward when the value no longer fits).
    fn update_local(&mut self, pl: &mut PageList, mt: MiniTid, payload: &[u8]) -> Result<()> {
        self.free_local_extras(pl, mt)?;
        let pid = self.translate(pl, mt)?;
        if payload.len() <= self.seg.max_single()
            && self.seg.rec_update(pid, mt.slot, REC_INLINE, payload)?
        {
            return Ok(());
        }
        let target = self.store_local(pl, payload)?;
        let mut fwd = Vec::with_capacity(MiniTid::ENCODED_LEN);
        target.encode(&mut fwd);
        let pid = self.translate(pl, mt)?;
        if !self.seg.rec_update(pid, mt.slot, REC_FWD_LOCAL, &fwd)? {
            return Err(StorageError::Corrupt(
                "page too full to place a local forward pointer".into(),
            ));
        }
        Ok(())
    }

    /// Delete the subtuple at `mt` including any overflow storage.
    fn delete_local(&mut self, pl: &PageList, mt: MiniTid) -> Result<()> {
        self.free_local_extras(pl, mt)?;
        let pid = self.translate(pl, mt)?;
        self.seg.rec_delete(pid, mt.slot)
    }

    fn read_md_node(&mut self, pl: &PageList, mt: MiniTid) -> Result<MdNode> {
        let payload = self.read_local_payload(pl, mt)?;
        let mut pos = 0;
        MdNode::decode(&payload, &mut pos)
    }

    fn read_data_atoms(&mut self, pl: &PageList, mt: MiniTid) -> Result<Vec<Atom>> {
        let payload = self.read_local_payload(pl, mt)?;
        let atoms = decode_atoms(&payload)?;
        self.seg.stats().add_atoms_decoded(atoms.len() as u64);
        Ok(atoms)
    }

    /// Crate-internal accessors for the integrity walker (check.rs),
    /// which navigates MD trees from outside this module.
    pub(crate) fn read_md_node_at(&mut self, pl: &PageList, mt: MiniTid) -> Result<MdNode> {
        self.read_md_node(pl, mt)
    }

    pub(crate) fn read_data_atoms_at(&mut self, pl: &PageList, mt: MiniTid) -> Result<Vec<Atom>> {
        self.read_data_atoms(pl, mt)
    }

    // =================================================================
    // Root MD subtuples (object directory)
    // =================================================================

    fn store_root(&mut self, root: &RootMd) -> Result<ObjectHandle> {
        let bytes = root.encode();
        for &pid in &self.dir_pages {
            if self.seg.page_free(pid)? > bytes.len() {
                if let Some(slot) = self.seg.rec_insert_in(pid, REC_INLINE, &bytes)? {
                    return Ok(ObjectHandle(Tid::new(pid, slot)));
                }
            }
        }
        let pid = self.seg.allocate_page()?;
        self.dir_pages.push(pid);
        let slot = self.seg.rec_insert_in(pid, REC_INLINE, &bytes)?.ok_or(
            StorageError::RecordTooLarge {
                len: bytes.len(),
                max: crate::page::Page::max_record_len(self.seg.page_size()) - 1,
            },
        )?;
        Ok(ObjectHandle(Tid::new(pid, slot)))
    }

    /// Read the root MD subtuple of `handle`.
    pub fn root_md(&mut self, handle: ObjectHandle) -> Result<RootMd> {
        let bytes = self.seg.read(handle.0)?;
        RootMd::decode(&bytes)
    }

    fn write_root(&mut self, handle: ObjectHandle, root: &RootMd) -> Result<()> {
        self.seg.update(handle.0, &root.encode())
    }

    /// All object handles in this store, in directory order.
    pub fn handles(&mut self) -> Result<Vec<ObjectHandle>> {
        let mut out = Vec::new();
        for &pid in &self.dir_pages.clone() {
            let slots: Vec<crate::tid::SlotNo> = self.seg.pool_mut().with_page(pid, |buf| {
                crate::page::PageRef::new(buf)
                    .live_records()
                    .map(|(s, _)| s)
                    .collect()
            })?;
            for slot in slots {
                out.push(ObjectHandle(Tid::new(pid, slot)));
            }
        }
        Ok(out)
    }

    // =================================================================
    // Insert
    // =================================================================

    /// Store `tuple` (one row of `schema`) as a complex object; returns
    /// its handle. The caller is expected to have validated the tuple
    /// against the schema.
    pub fn insert_object(&mut self, schema: &TableSchema, tuple: &Tuple) -> Result<ObjectHandle> {
        let mut pl = PageList::new();
        let node = match self.layout {
            LayoutKind::Ss1 => self.build_ss1(&mut pl, schema, tuple, MdNodeKind::Root)?,
            LayoutKind::Ss2 => self.build_ss2(&mut pl, schema, tuple, MdNodeKind::Root)?,
            LayoutKind::Ss3 => self.build_ss3_object(&mut pl, schema, tuple)?,
        };
        let root = RootMd {
            layout: self.layout,
            page_list: pl,
            node,
        };
        self.store_root(&root)
    }

    fn store_data_subtuple(
        &mut self,
        pl: &mut PageList,
        schema: &TableSchema,
        tuple: &Tuple,
    ) -> Result<MiniTid> {
        let atoms = tuple.atomic_fields(schema);
        let payload = encode_atoms(atoms);
        self.store_local(pl, &payload)
    }

    /// SS1 (Fig 6a): MD subtuple per subtable *and* per complex
    /// subobject.
    fn build_ss1(
        &mut self,
        pl: &mut PageList,
        schema: &TableSchema,
        tuple: &Tuple,
        kind: MdNodeKind,
    ) -> Result<MdNode> {
        let data = self.store_data_subtuple(pl, schema, tuple)?;
        let mut own = MdGroup::new(OWN_GROUP);
        own.entries.push(MdEntry::data(data));
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table attr");
            let sub_value = tuple.fields[attr_idx].as_table().ok_or_else(|| {
                StorageError::Corrupt("schema/value mismatch: expected table".into())
            })?;
            // Build the subtable MD subtuple: one entry per element.
            let mut st_group = MdGroup::new(0);
            for elem in &sub_value.tuples {
                if sub_schema.is_flat() {
                    let d = self.store_data_subtuple(pl, sub_schema, elem)?;
                    st_group.entries.push(MdEntry::data(d));
                } else {
                    let child = self.build_ss1(pl, sub_schema, elem, MdNodeKind::Subobject)?;
                    let mut bytes = Vec::with_capacity(child.encoded_len());
                    child.encode(&mut bytes);
                    let c = self.store_local(pl, &bytes)?;
                    st_group.entries.push(MdEntry::child(0, c));
                }
            }
            let mut st_node = MdNode::new(MdNodeKind::Subtable);
            st_node.groups.push(st_group);
            let mut bytes = Vec::with_capacity(st_node.encoded_len());
            st_node.encode(&mut bytes);
            let st_mt = self.store_local(pl, &bytes)?;
            own.entries.push(MdEntry::child(slot as u8, st_mt));
        }
        let mut node = MdNode::new(kind);
        node.groups.push(own);
        Ok(node)
    }

    /// SS2 (Fig 6b): MD subtuples only per complex subobject; subtable
    /// membership lists folded into the parent object's node.
    fn build_ss2(
        &mut self,
        pl: &mut PageList,
        schema: &TableSchema,
        tuple: &Tuple,
        kind: MdNodeKind,
    ) -> Result<MdNode> {
        let data = self.store_data_subtuple(pl, schema, tuple)?;
        let mut node = MdNode::new(kind);
        let mut own = MdGroup::new(OWN_GROUP);
        own.entries.push(MdEntry::data(data));
        node.groups.push(own);
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table attr");
            let sub_value = tuple.fields[attr_idx].as_table().ok_or_else(|| {
                StorageError::Corrupt("schema/value mismatch: expected table".into())
            })?;
            let mut membership = MdGroup::new(slot as u16);
            for elem in &sub_value.tuples {
                if sub_schema.is_flat() {
                    let d = self.store_data_subtuple(pl, sub_schema, elem)?;
                    membership.entries.push(MdEntry::data(d));
                } else {
                    let child = self.build_ss2(pl, sub_schema, elem, MdNodeKind::Subobject)?;
                    let mut bytes = Vec::with_capacity(child.encoded_len());
                    child.encode(&mut bytes);
                    let c = self.store_local(pl, &bytes)?;
                    membership.entries.push(MdEntry::child(slot as u8, c));
                }
            }
            node.groups.push(membership);
        }
        Ok(node)
    }

    /// SS3 (Fig 6c, AIM-II's choice): MD subtuples only per subtable;
    /// each element is one group inside the subtable node.
    fn build_ss3_object(
        &mut self,
        pl: &mut PageList,
        schema: &TableSchema,
        tuple: &Tuple,
    ) -> Result<MdNode> {
        let data = self.store_data_subtuple(pl, schema, tuple)?;
        let mut own = MdGroup::new(OWN_GROUP);
        own.entries.push(MdEntry::data(data));
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table attr");
            let sub_value = tuple.fields[attr_idx].as_table().ok_or_else(|| {
                StorageError::Corrupt("schema/value mismatch: expected table".into())
            })?;
            let st_mt = self.build_ss3_subtable(pl, sub_schema, sub_value)?;
            own.entries.push(MdEntry::child(slot as u8, st_mt));
        }
        let mut node = MdNode::new(MdNodeKind::Root);
        node.groups.push(own);
        Ok(node)
    }

    /// Build and store one SS3 subtable node; returns its Mini-TID.
    fn build_ss3_subtable(
        &mut self,
        pl: &mut PageList,
        sub_schema: &TableSchema,
        value: &TableValue,
    ) -> Result<MiniTid> {
        let mut node = MdNode::new(MdNodeKind::Subtable);
        for elem in &value.tuples {
            node.groups.push(self.build_ss3_elem(pl, sub_schema, elem)?);
        }
        let mut bytes = Vec::with_capacity(node.encoded_len());
        node.encode(&mut bytes);
        self.store_local(pl, &bytes)
    }

    /// Build one SS3 element group (data pointer + child pointers to the
    /// element's own subtable nodes).
    fn build_ss3_elem(
        &mut self,
        pl: &mut PageList,
        sub_schema: &TableSchema,
        elem: &Tuple,
    ) -> Result<MdGroup> {
        let d = self.store_data_subtuple(pl, sub_schema, elem)?;
        let mut group = MdGroup::new(0);
        group.entries.push(MdEntry::data(d));
        for (slot, attr_idx) in sub_schema.table_indices().into_iter().enumerate() {
            let nested_schema = sub_schema.attrs[attr_idx]
                .kind
                .as_table()
                .expect("table attr");
            let nested_value = elem.fields[attr_idx].as_table().ok_or_else(|| {
                StorageError::Corrupt("schema/value mismatch: expected table".into())
            })?;
            let st = self.build_ss3_subtable(pl, nested_schema, nested_value)?;
            group.entries.push(MdEntry::child(slot as u8, st));
        }
        Ok(group)
    }

    // =================================================================
    // Read (full and partial)
    // =================================================================

    /// Materialize the whole object.
    pub fn read_object(&mut self, schema: &TableSchema, handle: ObjectHandle) -> Result<Tuple> {
        self.read_object_projected(schema, handle, &|_| true)
    }

    /// Materialize the object, descending only into subtable attributes
    /// for which `keep(path)` is true; pruned subtables come back as
    /// empty tables. This is the paper's *partial retrieval*: pruned
    /// subtrees cost no page accesses at all.
    pub fn read_object_projected(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        keep: &dyn Fn(&Path) -> bool,
    ) -> Result<Tuple> {
        let root = self.root_md(handle)?;
        self.seg.stats().inc_object_visit();
        self.seg.stats().inc_object_decoded();
        let pl = root.page_list.clone();
        match root.layout {
            LayoutKind::Ss1 => self.assemble_ss1(&pl, &root.node, schema, &Path::root(), keep),
            LayoutKind::Ss2 => self.assemble_ss2(&pl, &root.node, schema, &Path::root(), keep),
            LayoutKind::Ss3 => {
                self.assemble_ss3_object(&pl, &root.node, schema, &Path::root(), keep)
            }
        }
    }

    /// Read only the first-level atomic attribute values of the object —
    /// exactly one data-subtuple access after the root.
    pub fn read_first_level_atoms(&mut self, handle: ObjectHandle) -> Result<Vec<Atom>> {
        let root = self.root_md(handle)?;
        let own = root
            .node
            .groups
            .iter()
            .find(|g| g.tag == OWN_GROUP)
            .ok_or_else(|| StorageError::Corrupt("root node lacks own group".into()))?;
        let data = own
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("root own group lacks D entry".into()))?;
        self.read_data_atoms(&root.page_list, data)
    }

    /// Decode the data subtuple at `mt` inside `handle`'s local space
    /// (used by index lookups resolving hierarchical addresses).
    pub fn read_data_subtuple(&mut self, handle: ObjectHandle, mt: MiniTid) -> Result<Vec<Atom>> {
        let root = self.root_md(handle)?;
        self.read_data_atoms(&root.page_list, mt)
    }

    fn atoms_to_tuple(
        schema: &TableSchema,
        atoms: Vec<Atom>,
        mut subtables: Vec<TableValue>,
    ) -> Result<Tuple> {
        let mut fields = Vec::with_capacity(schema.attrs.len());
        let mut atom_it = atoms.into_iter();
        let mut sub_it = subtables.drain(..);
        for attr in &schema.attrs {
            match &attr.kind {
                AttrKind::Atomic(_) => {
                    let a = atom_it.next().ok_or_else(|| {
                        StorageError::Corrupt("data subtuple has too few atoms".into())
                    })?;
                    fields.push(Value::Atom(a));
                }
                AttrKind::Table(_) => {
                    let t = sub_it
                        .next()
                        .ok_or_else(|| StorageError::Corrupt("missing subtable value".into()))?;
                    fields.push(Value::Table(t));
                }
            }
        }
        Ok(Tuple::new(fields))
    }

    fn empty_table(schema: &TableSchema) -> TableValue {
        TableValue {
            kind: schema.kind,
            tuples: Vec::new(),
        }
    }

    fn assemble_ss1(
        &mut self,
        pl: &PageList,
        node: &MdNode,
        schema: &TableSchema,
        at: &Path,
        keep: &dyn Fn(&Path) -> bool,
    ) -> Result<Tuple> {
        let own = node
            .groups
            .first()
            .filter(|g| g.tag == OWN_GROUP)
            .ok_or_else(|| StorageError::Corrupt("SS1 node lacks own group".into()))?
            .clone();
        let data = own
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("SS1 node lacks D entry".into()))?;
        let atoms = self.read_data_atoms(pl, data)?;
        let mut subtables = Vec::new();
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
            let sub_path = at.child(&schema.attrs[attr_idx].name);
            if !keep(&sub_path) {
                subtables.push(Self::empty_table(sub_schema));
                continue;
            }
            let st_mt = own.child_for(slot as u8).ok_or_else(|| {
                StorageError::Corrupt(format!("SS1 node lacks C entry for slot {slot}"))
            })?;
            let st_node = self.read_md_node(pl, st_mt)?;
            let st_group = st_node
                .groups
                .first()
                .ok_or_else(|| StorageError::Corrupt("SS1 subtable node empty".into()))?;
            let mut tuples = Vec::with_capacity(st_group.entries.len());
            for e in &st_group.entries {
                if e.is_data() {
                    let atoms = self.read_data_atoms(pl, e.tid)?;
                    tuples.push(Self::atoms_to_tuple(sub_schema, atoms, Vec::new())?);
                } else {
                    let child = self.read_md_node(pl, e.tid)?;
                    tuples.push(self.assemble_ss1(pl, &child, sub_schema, &sub_path, keep)?);
                }
            }
            subtables.push(TableValue {
                kind: sub_schema.kind,
                tuples,
            });
        }
        Self::atoms_to_tuple(schema, atoms, subtables)
    }

    fn assemble_ss2(
        &mut self,
        pl: &PageList,
        node: &MdNode,
        schema: &TableSchema,
        at: &Path,
        keep: &dyn Fn(&Path) -> bool,
    ) -> Result<Tuple> {
        let own = node
            .groups
            .iter()
            .find(|g| g.tag == OWN_GROUP)
            .ok_or_else(|| StorageError::Corrupt("SS2 node lacks own group".into()))?;
        let data = own
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("SS2 node lacks D entry".into()))?;
        let atoms = self.read_data_atoms(pl, data)?;
        let mut subtables = Vec::new();
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
            let sub_path = at.child(&schema.attrs[attr_idx].name);
            if !keep(&sub_path) {
                subtables.push(Self::empty_table(sub_schema));
                continue;
            }
            let membership = node
                .groups
                .iter()
                .find(|g| g.tag == slot as u16)
                .cloned()
                .unwrap_or_else(|| MdGroup::new(slot as u16));
            let mut tuples = Vec::with_capacity(membership.entries.len());
            for e in &membership.entries {
                if e.is_data() {
                    let atoms = self.read_data_atoms(pl, e.tid)?;
                    tuples.push(Self::atoms_to_tuple(sub_schema, atoms, Vec::new())?);
                } else {
                    let child = self.read_md_node(pl, e.tid)?;
                    tuples.push(self.assemble_ss2(pl, &child, sub_schema, &sub_path, keep)?);
                }
            }
            subtables.push(TableValue {
                kind: sub_schema.kind,
                tuples,
            });
        }
        Self::atoms_to_tuple(schema, atoms, subtables)
    }

    fn assemble_ss3_object(
        &mut self,
        pl: &PageList,
        node: &MdNode,
        schema: &TableSchema,
        at: &Path,
        keep: &dyn Fn(&Path) -> bool,
    ) -> Result<Tuple> {
        let own = node
            .groups
            .first()
            .filter(|g| g.tag == OWN_GROUP)
            .ok_or_else(|| StorageError::Corrupt("SS3 object node lacks own group".into()))?
            .clone();
        let data = own
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("SS3 object node lacks D entry".into()))?;
        let atoms = self.read_data_atoms(pl, data)?;
        let mut subtables = Vec::new();
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
            let sub_path = at.child(&schema.attrs[attr_idx].name);
            if !keep(&sub_path) {
                subtables.push(Self::empty_table(sub_schema));
                continue;
            }
            let st_mt = own.child_for(slot as u8).ok_or_else(|| {
                StorageError::Corrupt(format!("SS3 object node lacks C for slot {slot}"))
            })?;
            subtables.push(self.assemble_ss3_subtable(pl, st_mt, sub_schema, &sub_path, keep)?);
        }
        Self::atoms_to_tuple(schema, atoms, subtables)
    }

    fn assemble_ss3_subtable(
        &mut self,
        pl: &PageList,
        st_mt: MiniTid,
        sub_schema: &TableSchema,
        at: &Path,
        keep: &dyn Fn(&Path) -> bool,
    ) -> Result<TableValue> {
        let st_node = self.read_md_node(pl, st_mt)?;
        let mut tuples = Vec::with_capacity(st_node.groups.len());
        for group in &st_node.groups {
            tuples.push(self.assemble_ss3_elem(pl, group, sub_schema, at, keep)?);
        }
        Ok(TableValue {
            kind: sub_schema.kind,
            tuples,
        })
    }

    fn assemble_ss3_elem(
        &mut self,
        pl: &PageList,
        group: &MdGroup,
        sub_schema: &TableSchema,
        at: &Path,
        keep: &dyn Fn(&Path) -> bool,
    ) -> Result<Tuple> {
        let data = group
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("SS3 element lacks D entry".into()))?;
        let atoms = self.read_data_atoms(pl, data)?;
        let mut subtables = Vec::new();
        for (slot, attr_idx) in sub_schema.table_indices().into_iter().enumerate() {
            let nested = sub_schema.attrs[attr_idx].kind.as_table().expect("table");
            let nested_path = at.child(&sub_schema.attrs[attr_idx].name);
            if !keep(&nested_path) {
                subtables.push(Self::empty_table(nested));
                continue;
            }
            let st = group.child_for(slot as u8).ok_or_else(|| {
                StorageError::Corrupt(format!("SS3 element lacks C for slot {slot}"))
            })?;
            subtables.push(self.assemble_ss3_subtable(pl, st, nested, &nested_path, keep)?);
        }
        Self::atoms_to_tuple(sub_schema, atoms, subtables)
    }

    // =================================================================
    // Data walks (index building, §4.2) and MD profiling (Fig 6)
    // =================================================================

    /// Enumerate every data subtuple of the object with its hierarchical
    /// context: `ancestors` are the data subtuples of the complex
    /// subobjects on the path (the components of a final-form Fig-7b
    /// hierarchical address).
    pub fn walk_data(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
    ) -> Result<Vec<DataWalkEntry>> {
        let root = self.root_md(handle)?;
        let pl = root.page_list.clone();
        let mut out = Vec::new();
        self.walk_node(
            &pl,
            root.layout,
            &root.node,
            schema,
            &Path::root(),
            &mut Vec::new(),
            &mut out,
        )?;
        Ok(out)
    }

    /// Walk an object-shaped node (SS1/SS2/SS3 root, SS1/SS2 subobject).
    #[allow(clippy::too_many_arguments)]
    fn walk_node(
        &mut self,
        pl: &PageList,
        layout: LayoutKind,
        node: &MdNode,
        schema: &TableSchema,
        at: &Path,
        ancestors: &mut Vec<MiniTid>,
        out: &mut Vec<DataWalkEntry>,
    ) -> Result<()> {
        let own = node
            .groups
            .iter()
            .find(|g| g.tag == OWN_GROUP)
            .ok_or_else(|| StorageError::Corrupt("node lacks own group".into()))?
            .clone();
        let data = own
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("node lacks D entry".into()))?;
        let atoms = self.read_data_atoms(pl, data)?;
        out.push(DataWalkEntry {
            attr_path: at.clone(),
            ancestors: ancestors.clone(),
            data,
            atoms,
        });
        let is_root = at.is_root();
        if !is_root {
            ancestors.push(data);
        }
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
            let sub_path = at.child(&schema.attrs[attr_idx].name);
            match layout {
                LayoutKind::Ss1 => {
                    let st_mt = own.child_for(slot as u8).ok_or_else(|| {
                        StorageError::Corrupt("SS1 missing subtable child".into())
                    })?;
                    let st_node = self.read_md_node(pl, st_mt)?;
                    let entries = st_node
                        .groups
                        .first()
                        .map(|g| g.entries.clone())
                        .unwrap_or_default();
                    for e in entries {
                        if e.is_data() {
                            let atoms = self.read_data_atoms(pl, e.tid)?;
                            out.push(DataWalkEntry {
                                attr_path: sub_path.clone(),
                                ancestors: ancestors.clone(),
                                data: e.tid,
                                atoms,
                            });
                        } else {
                            let child = self.read_md_node(pl, e.tid)?;
                            self.walk_node(
                                pl, layout, &child, sub_schema, &sub_path, ancestors, out,
                            )?;
                        }
                    }
                }
                LayoutKind::Ss2 => {
                    let membership = node
                        .groups
                        .iter()
                        .find(|g| g.tag == slot as u16)
                        .cloned()
                        .unwrap_or_else(|| MdGroup::new(slot as u16));
                    for e in membership.entries {
                        if e.is_data() {
                            let atoms = self.read_data_atoms(pl, e.tid)?;
                            out.push(DataWalkEntry {
                                attr_path: sub_path.clone(),
                                ancestors: ancestors.clone(),
                                data: e.tid,
                                atoms,
                            });
                        } else {
                            let child = self.read_md_node(pl, e.tid)?;
                            self.walk_node(
                                pl, layout, &child, sub_schema, &sub_path, ancestors, out,
                            )?;
                        }
                    }
                }
                LayoutKind::Ss3 => {
                    let st_mt = own.child_for(slot as u8).ok_or_else(|| {
                        StorageError::Corrupt("SS3 missing subtable child".into())
                    })?;
                    self.walk_ss3_subtable(pl, st_mt, sub_schema, &sub_path, ancestors, out)?;
                }
            }
        }
        if !is_root {
            ancestors.pop();
        }
        Ok(())
    }

    fn walk_ss3_subtable(
        &mut self,
        pl: &PageList,
        st_mt: MiniTid,
        sub_schema: &TableSchema,
        at: &Path,
        ancestors: &mut Vec<MiniTid>,
        out: &mut Vec<DataWalkEntry>,
    ) -> Result<()> {
        let st_node = self.read_md_node(pl, st_mt)?;
        for group in &st_node.groups {
            let data = group
                .data_entry()
                .ok_or_else(|| StorageError::Corrupt("SS3 element lacks D".into()))?;
            let atoms = self.read_data_atoms(pl, data)?;
            out.push(DataWalkEntry {
                attr_path: at.clone(),
                ancestors: ancestors.clone(),
                data,
                atoms,
            });
            if !sub_schema.is_flat() {
                ancestors.push(data);
                for (slot, attr_idx) in sub_schema.table_indices().into_iter().enumerate() {
                    let nested = sub_schema.attrs[attr_idx].kind.as_table().expect("table");
                    let nested_path = at.child(&sub_schema.attrs[attr_idx].name);
                    let nested_mt = group
                        .child_for(slot as u8)
                        .ok_or_else(|| StorageError::Corrupt("SS3 element missing C".into()))?;
                    self.walk_ss3_subtable(pl, nested_mt, nested, &nested_path, ancestors, out)?;
                }
                ancestors.pop();
            }
        }
        Ok(())
    }

    /// Enumerate data subtuples with their **MD-pointer paths** — the
    /// naive Fig-7a hierarchical address form, whose components identify
    /// subtables rather than subobjects. Only meaningful for SS3 (the
    /// layout Fig 7 is drawn for).
    pub fn walk_data_md_paths(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
    ) -> Result<Vec<MdPathEntry>> {
        let root = self.root_md(handle)?;
        if root.layout != LayoutKind::Ss3 {
            return Err(StorageError::Corrupt(
                "MD-path walk is defined for SS3 (Fig 7)".into(),
            ));
        }
        let pl = root.page_list.clone();
        let own = root
            .node
            .groups
            .first()
            .filter(|g| g.tag == OWN_GROUP)
            .ok_or_else(|| StorageError::Corrupt("root lacks own group".into()))?
            .clone();
        let mut out = Vec::new();
        let data = own
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("root lacks D".into()))?;
        let atoms = self.read_data_atoms(&pl, data)?;
        out.push(MdPathEntry {
            attr_path: Path::root(),
            md_path: Vec::new(),
            data,
            atoms,
        });
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
            let sub_path = Path::root().child(&schema.attrs[attr_idx].name);
            let st_mt = own
                .child_for(slot as u8)
                .ok_or_else(|| StorageError::Corrupt("root missing C".into()))?;
            self.walk_md_paths_subtable(
                &pl,
                st_mt,
                sub_schema,
                &sub_path,
                &mut vec![st_mt],
                &mut out,
            )?;
        }
        Ok(out)
    }

    fn walk_md_paths_subtable(
        &mut self,
        pl: &PageList,
        st_mt: MiniTid,
        sub_schema: &TableSchema,
        at: &Path,
        md_path: &mut Vec<MiniTid>,
        out: &mut Vec<MdPathEntry>,
    ) -> Result<()> {
        let st_node = self.read_md_node(pl, st_mt)?;
        for group in &st_node.groups {
            let data = group
                .data_entry()
                .ok_or_else(|| StorageError::Corrupt("element lacks D".into()))?;
            let atoms = self.read_data_atoms(pl, data)?;
            out.push(MdPathEntry {
                attr_path: at.clone(),
                md_path: md_path.clone(),
                data,
                atoms,
            });
            for (slot, attr_idx) in sub_schema.table_indices().into_iter().enumerate() {
                let nested = sub_schema.attrs[attr_idx].kind.as_table().expect("table");
                let nested_path = at.child(&sub_schema.attrs[attr_idx].name);
                let nested_mt = group
                    .child_for(slot as u8)
                    .ok_or_else(|| StorageError::Corrupt("element missing C".into()))?;
                md_path.push(nested_mt);
                self.walk_md_paths_subtable(pl, nested_mt, nested, &nested_path, md_path, out)?;
                md_path.pop();
            }
        }
        Ok(())
    }

    /// Count MD / data subtuples and bytes (Fig 6 comparison; the §4.1
    /// claim SS1 > SS3 > SS2 is about `md_subtuples`).
    pub fn md_profile(&mut self, handle: ObjectHandle) -> Result<MdProfile> {
        let root = self.root_md(handle)?;
        let pl = root.page_list.clone();
        let mut prof = MdProfile {
            md_subtuples: 1, // the root MD subtuple
            md_bytes: root.encode().len(),
            pages: pl.page_count(),
            ..MdProfile::default()
        };
        self.profile_groups(&pl, &root.node, &mut prof)?;
        Ok(prof)
    }

    fn profile_groups(&mut self, pl: &PageList, node: &MdNode, prof: &mut MdProfile) -> Result<()> {
        for g in &node.groups {
            for e in &g.entries {
                if e.is_data() {
                    let payload = self.read_local_payload(pl, e.tid)?;
                    prof.data_subtuples += 1;
                    prof.data_bytes += payload.len();
                } else {
                    let child = self.read_md_node(pl, e.tid)?;
                    let mut bytes = Vec::new();
                    child.encode(&mut bytes);
                    prof.md_subtuples += 1;
                    prof.md_bytes += bytes.len();
                    self.profile_groups(pl, &child, prof)?;
                }
            }
        }
        Ok(())
    }

    /// Render the MD tree as indented text in the style of Fig 6 — the
    /// `reproduce` binary prints this for department 314 under all three
    /// layouts.
    pub fn dump_md_tree(&mut self, handle: ObjectHandle) -> Result<String> {
        use std::fmt::Write as _;
        let root = self.root_md(handle)?;
        let pl = root.page_list.clone();
        let mut out = String::new();
        let letters: String = root
            .node
            .groups
            .iter()
            .flat_map(|g| g.entries.iter())
            .map(|e| if e.is_data() { 'D' } else { 'C' })
            .collect();
        let _ = writeln!(
            out,
            "root MD subtuple [{letters}] (layout {}, {} page(s) in local address space)",
            root.layout,
            pl.page_count()
        );
        self.dump_groups(&pl, &root.node, 1, &mut out)?;
        Ok(out)
    }

    fn dump_groups(
        &mut self,
        pl: &PageList,
        node: &MdNode,
        depth: usize,
        out: &mut String,
    ) -> Result<()> {
        use std::fmt::Write as _;
        for g in &node.groups {
            for e in &g.entries {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                if e.is_data() {
                    let atoms = self.read_data_atoms(pl, e.tid)?;
                    let vals: Vec<String> = atoms.iter().map(|a| a.to_string()).collect();
                    let _ = writeln!(out, "D @{} -> data subtuple '{}'", e.tid, vals.join(" "));
                } else {
                    let child = self.read_md_node(pl, e.tid)?;
                    let kind = match child.kind {
                        MdNodeKind::Root => "root",
                        MdNodeKind::Subtable => "subtable",
                        MdNodeKind::Subobject => "subobject",
                    };
                    let letters: String = child
                        .groups
                        .iter()
                        .flat_map(|g| g.entries.iter())
                        .map(|e| if e.is_data() { 'D' } else { 'C' })
                        .collect();
                    let _ = writeln!(out, "C @{} -> {kind} MD subtuple [{letters}]", e.tid);
                    self.dump_groups(pl, &child, depth + 1, out)?;
                }
            }
        }
        Ok(())
    }

    // =================================================================
    // Mutations (SS3 — the layout AIM-II chose)
    // =================================================================

    fn require_ss3(&self) -> Result<()> {
        if self.layout != LayoutKind::Ss3 {
            return Err(StorageError::Corrupt(format!(
                "mutation supported on SS3 only (store uses {})",
                self.layout
            )));
        }
        Ok(())
    }

    /// Navigate to the element group addressed by `loc`. Returns the
    /// chain of `(subtable node Mini-TID, group index)` taken, the final
    /// element group, and the schema level reached.
    fn locate<'s>(
        &mut self,
        pl: &PageList,
        root_node: &MdNode,
        schema: &'s TableSchema,
        loc: &ElemLoc,
    ) -> Result<Located<'s>> {
        let mut level_schema = schema;
        let mut group = root_node
            .groups
            .first()
            .filter(|g| g.tag == OWN_GROUP)
            .ok_or_else(|| StorageError::Corrupt("root lacks own group".into()))?
            .clone();
        let mut chain = Vec::new();
        for &(attr_idx, elem) in &loc.steps {
            let sub_schema = level_schema
                .attrs
                .get(attr_idx)
                .and_then(|a| a.kind.as_table())
                .ok_or_else(|| StorageError::BadPath(format!("attr index {attr_idx}")))?;
            let slot = level_schema
                .table_indices()
                .iter()
                .position(|&i| i == attr_idx)
                .ok_or_else(|| StorageError::BadPath(format!("attr index {attr_idx}")))?;
            let st_mt = group
                .child_for(slot as u8)
                .ok_or_else(|| StorageError::Corrupt("missing subtable child".into()))?;
            let st_node = self.read_md_node(pl, st_mt)?;
            let g = st_node
                .groups
                .get(elem)
                .ok_or(StorageError::BadElementIndex {
                    index: elem,
                    len: st_node.groups.len(),
                })?
                .clone();
            chain.push((st_mt, elem));
            group = g;
            level_schema = sub_schema;
        }
        Ok((chain, group, level_schema))
    }

    /// Overwrite the atomic attribute values of the (sub)object at `loc`
    /// — rewrites exactly one data subtuple; all pointers stay valid.
    /// Read just the atomic attribute values of the (sub)object at
    /// `loc` — the before-image a transactional in-place undo records
    /// ahead of [`ObjectStore::update_atoms`].
    pub fn read_atoms_at(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        loc: &ElemLoc,
    ) -> Result<Vec<Atom>> {
        if !loc.steps.is_empty() {
            self.require_ss3()?;
        }
        let root = self.root_md(handle)?;
        let (_, group, _) = self.locate(&root.page_list, &root.node, schema, loc)?;
        let data = group
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("element lacks D".into()))?;
        self.read_data_atoms(&root.page_list, data)
    }

    pub fn update_atoms(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        loc: &ElemLoc,
        atoms: &[Atom],
    ) -> Result<()> {
        // Object-level atom updates (empty loc) touch only the root's own
        // data subtuple and work under every layout; element-level
        // updates navigate SS3 structure (the AIM-II layout).
        if !loc.steps.is_empty() {
            self.require_ss3()?;
        }
        let root = self.root_md(handle)?;
        let mut pl = root.page_list.clone();
        let (_, group, level_schema) = self.locate(&pl, &root.node, schema, loc)?;
        if atoms.len() != level_schema.atomic_indices().len() {
            return Err(StorageError::Corrupt(format!(
                "expected {} atoms, got {}",
                level_schema.atomic_indices().len(),
                atoms.len()
            )));
        }
        let data = group
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("element lacks D".into()))?;
        let payload = encode_atoms(atoms.iter());
        self.update_local(&mut pl, data, &payload)?;
        if pl != root.page_list {
            let mut new_root = root;
            new_root.page_list = pl;
            self.write_root(handle, &new_root)?;
        }
        Ok(())
    }

    /// Insert a new element `tuple` into the subtable `attr_idx` of the
    /// (sub)object at `loc`. For ordered subtables the element is
    /// appended (entry order is list order).
    pub fn insert_element(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        loc: &ElemLoc,
        attr_idx: usize,
        tuple: &Tuple,
    ) -> Result<()> {
        self.require_ss3()?;
        let root = self.root_md(handle)?;
        let mut pl = root.page_list.clone();
        let (_, group, level_schema) = self.locate(&pl, &root.node, schema, loc)?;
        let sub_schema = level_schema
            .attrs
            .get(attr_idx)
            .and_then(|a| a.kind.as_table())
            .ok_or_else(|| StorageError::BadPath(format!("attr index {attr_idx}")))?;
        let slot = level_schema
            .table_indices()
            .iter()
            .position(|&i| i == attr_idx)
            .ok_or_else(|| StorageError::BadPath(format!("attr index {attr_idx}")))?;
        let st_mt = group
            .child_for(slot as u8)
            .ok_or_else(|| StorageError::Corrupt("missing subtable child".into()))?;
        // Build the new element's subtree, then append its group to the
        // subtable node.
        let new_group = self.build_ss3_elem(&mut pl, sub_schema, tuple)?;
        let mut st_node = self.read_md_node(&pl, st_mt)?;
        st_node.groups.push(new_group);
        let mut bytes = Vec::with_capacity(st_node.encoded_len());
        st_node.encode(&mut bytes);
        self.update_local(&mut pl, st_mt, &bytes)?;
        if pl != root.page_list {
            let mut new_root = root;
            new_root.page_list = pl;
            self.write_root(handle, &new_root)?;
        }
        Ok(())
    }

    /// Delete element `elem_idx` (and its entire subtree) from the
    /// subtable `attr_idx` of the (sub)object at `loc`.
    pub fn delete_element(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        loc: &ElemLoc,
        attr_idx: usize,
        elem_idx: usize,
    ) -> Result<()> {
        self.require_ss3()?;
        let root = self.root_md(handle)?;
        let mut pl = root.page_list.clone();
        let (_, group, level_schema) = self.locate(&pl, &root.node, schema, loc)?;
        let slot = level_schema
            .table_indices()
            .iter()
            .position(|&i| i == attr_idx)
            .ok_or_else(|| StorageError::BadPath(format!("attr index {attr_idx}")))?;
        let st_mt = group
            .child_for(slot as u8)
            .ok_or_else(|| StorageError::Corrupt("missing subtable child".into()))?;
        let mut st_node = self.read_md_node(&pl, st_mt)?;
        if elem_idx >= st_node.groups.len() {
            return Err(StorageError::BadElementIndex {
                index: elem_idx,
                len: st_node.groups.len(),
            });
        }
        let removed = st_node.groups.remove(elem_idx);
        // Free the element's subtree (data + nested subtable nodes).
        self.free_group(&pl, &removed)?;
        let mut bytes = Vec::with_capacity(st_node.encoded_len());
        st_node.encode(&mut bytes);
        self.update_local(&mut pl, st_mt, &bytes)?;
        if pl != root.page_list {
            let mut new_root = root;
            new_root.page_list = pl;
            self.write_root(handle, &new_root)?;
        }
        Ok(())
    }

    /// Recursively delete every subtuple reachable from a group.
    fn free_group(&mut self, pl: &PageList, group: &MdGroup) -> Result<()> {
        for e in &group.entries {
            if e.is_data() {
                self.delete_local(pl, e.tid)?;
            } else {
                let child = self.read_md_node(pl, e.tid)?;
                for g in &child.groups {
                    self.free_group(pl, g)?;
                }
                self.delete_local(pl, e.tid)?;
            }
        }
        Ok(())
    }

    // =================================================================
    // Whole-object operations
    // =================================================================

    /// Delete the whole object: every subtuple, the pages of its local
    /// address space (returned to the store's free list), and the root
    /// MD subtuple.
    pub fn delete_object(&mut self, handle: ObjectHandle) -> Result<()> {
        if self.policy == ClusterPolicy::Scattered {
            return Err(StorageError::Corrupt(
                "delete_object not supported under the Scattered bench policy".into(),
            ));
        }
        let root = self.root_md(handle)?;
        // Pages of the local address space belong to this object alone:
        // reclaim them wholesale — no per-subtuple deletes needed.
        for (_, pid) in root.page_list.iter() {
            self.seg.pool_mut().with_page_mut(pid, |buf| {
                crate::page::Page::init(buf);
            })?;
            // Refresh the free-space estimate for the re-initialized page.
            let _ = self.seg.page_free(pid)?;
            self.free_pages.push(pid);
        }
        self.seg.delete(handle.0)
    }

    /// Move the object to a fresh page set ("check-out" / relocation,
    /// §4.1): pages are copied wholesale, the page list is updated — and
    /// **no `D`/`C` pointer is touched**, because Mini-TIDs address page
    /// list positions. The handle (root TID) is unchanged.
    pub fn move_object(&mut self, handle: ObjectHandle) -> Result<()> {
        if self.policy == ClusterPolicy::Scattered {
            return Err(StorageError::Corrupt(
                "move_object not supported under the Scattered bench policy".into(),
            ));
        }
        let mut root = self.root_md(handle)?;
        let live: Vec<(u16, PageId)> = root.page_list.iter().collect();
        for (lpage, old_pid) in live {
            let new_pid = self.fresh_page()?;
            self.seg.copy_page_raw(old_pid, new_pid)?;
            root.page_list.replace(lpage, new_pid)?;
            // The vacated page is reusable.
            self.seg.pool_mut().with_page_mut(old_pid, |buf| {
                crate::page::Page::init(buf);
            })?;
            let _ = self.seg.page_free(old_pid)?;
            self.free_pages.push(old_pid);
        }
        self.write_root(handle, &root)
    }

    /// Physical pages currently holding the object (for clustering
    /// measurements).
    pub fn object_pages(&mut self, handle: ObjectHandle) -> Result<Vec<PageId>> {
        let root = self.root_md(handle)?;
        Ok(root.page_list.iter().map(|(_, p)| p).collect())
    }

    // =================================================================
    // Address resolution (used by indexes and tuple names, §4.2/§4.3)
    // =================================================================

    /// Physical (global) TID of the data subtuple at `mt` — the paper's
    /// first address scheme ("TIDs of data subtuples as addresses").
    /// Note the fragility this scheme carries: these TIDs dangle after a
    /// page-level object move, unlike hierarchical addresses whose first
    /// component is the (stable) root TID.
    pub fn data_subtuple_tid(&mut self, handle: ObjectHandle, mt: MiniTid) -> Result<Tid> {
        let root = self.root_md(handle)?;
        let pid = self.translate(&root.page_list, mt)?;
        Ok(Tid::new(pid, mt.slot))
    }

    /// Data-subtuple Mini-TID and ancestor data Mini-TIDs of the
    /// (sub)object at `loc` (SS3) — the building blocks of hierarchical
    /// addresses and subobject tuple names.
    pub fn resolve_elem_addr(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        loc: &ElemLoc,
    ) -> Result<(MiniTid, Vec<MiniTid>)> {
        self.require_ss3()?;
        let root = self.root_md(handle)?;
        let pl = root.page_list.clone();
        let mut level_schema = schema;
        let mut group = root
            .node
            .groups
            .first()
            .filter(|g| g.tag == OWN_GROUP)
            .ok_or_else(|| StorageError::Corrupt("root lacks own group".into()))?
            .clone();
        let mut ancestors = Vec::new();
        for (i, &(attr_idx, elem)) in loc.steps.iter().enumerate() {
            if i > 0 {
                // The previous level's element (a complex subobject) is
                // an ancestor of everything below it.
                ancestors.push(
                    group
                        .data_entry()
                        .ok_or_else(|| StorageError::Corrupt("element lacks D entry".into()))?,
                );
            }
            let sub_schema = level_schema
                .attrs
                .get(attr_idx)
                .and_then(|a| a.kind.as_table())
                .ok_or_else(|| StorageError::BadPath(format!("attr index {attr_idx}")))?;
            let slot = level_schema
                .table_indices()
                .iter()
                .position(|&i| i == attr_idx)
                .ok_or_else(|| StorageError::BadPath(format!("attr index {attr_idx}")))?;
            let st_mt = group
                .child_for(slot as u8)
                .ok_or_else(|| StorageError::Corrupt("missing subtable child".into()))?;
            let st_node = self.read_md_node(&pl, st_mt)?;
            group = st_node
                .groups
                .get(elem)
                .ok_or(StorageError::BadElementIndex {
                    index: elem,
                    len: st_node.groups.len(),
                })?
                .clone();
            level_schema = sub_schema;
        }
        let data = group
            .data_entry()
            .ok_or_else(|| StorageError::Corrupt("element lacks D entry".into()))?;
        Ok((data, ancestors))
    }

    /// Mini-TID of the MD subtuple representing the subtable `attr_idx`
    /// of the (sub)object at `loc` (SS3) — the basis of *subtable* tuple
    /// names (W and X in Fig 8).
    pub fn resolve_subtable_md(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        loc: &ElemLoc,
        attr_idx: usize,
    ) -> Result<MiniTid> {
        self.require_ss3()?;
        let root = self.root_md(handle)?;
        let pl = root.page_list.clone();
        let (_, group, level_schema) = self.locate(&pl, &root.node, schema, loc)?;
        let slot = level_schema
            .table_indices()
            .iter()
            .position(|&i| i == attr_idx)
            .ok_or_else(|| StorageError::BadPath(format!("attr index {attr_idx}")))?;
        group
            .child_for(slot as u8)
            .ok_or_else(|| StorageError::Corrupt("missing subtable child".into()))
    }

    /// Find the element group whose level-by-level data subtuples match
    /// `comps` (ancestors then target), starting from the root's own
    /// group; returns the group and its schema level. Only MD subtuples
    /// are read — no unrelated data is scanned (§4.2's goal).
    fn find_by_data_path<'s>(
        &mut self,
        pl: &PageList,
        own: MdGroup,
        schema: &'s TableSchema,
        comps: &[MiniTid],
    ) -> Result<(MdGroup, &'s TableSchema)> {
        let mut group = own;
        let mut level_schema = schema;
        for (depth, &want) in comps.iter().enumerate() {
            let mut found = None;
            'search: for (slot, attr_idx) in level_schema.table_indices().into_iter().enumerate() {
                let sub_schema = level_schema.attrs[attr_idx].kind.as_table().expect("table");
                let st_mt = match group.child_for(slot as u8) {
                    Some(mt) => mt,
                    None => continue,
                };
                let st_node = self.read_md_node(pl, st_mt)?;
                for g in &st_node.groups {
                    if g.data_entry() == Some(want) {
                        found = Some((g.clone(), sub_schema));
                        break 'search;
                    }
                }
            }
            let (g, s) = found.ok_or_else(|| {
                StorageError::Corrupt(format!(
                    "address component {depth} ({want}) not found under its parent"
                ))
            })?;
            group = g;
            level_schema = s;
        }
        Ok((group, level_schema))
    }

    fn strip_own_component<'c>(own: &MdGroup, comps: &'c [MiniTid]) -> &'c [MiniTid] {
        // The object's own data subtuple may lead the component list
        // (addresses for first-level atomic values do this).
        match comps.first() {
            Some(&first) if own.data_entry() == Some(first) => &comps[1..],
            _ => comps,
        }
    }

    fn root_own_group(root: &RootMd) -> Result<MdGroup> {
        root.node
            .groups
            .first()
            .filter(|g| g.tag == OWN_GROUP)
            .cloned()
            .ok_or_else(|| StorageError::Corrupt("root lacks own group".into()))
    }

    /// Materialize the (sub)object a hierarchical address / subobject
    /// tuple name refers to (SS3).
    pub fn materialize_by_data_path(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        comps: &[MiniTid],
    ) -> Result<Tuple> {
        self.require_ss3()?;
        let root = self.root_md(handle)?;
        let pl = root.page_list.clone();
        let own = Self::root_own_group(&root)?;
        let comps = Self::strip_own_component(&own, comps);
        if comps.is_empty() {
            return self.read_object(schema, handle);
        }
        let (group, level_schema) = self.find_by_data_path(&pl, own, schema, comps)?;
        self.assemble_ss3_elem(&pl, &group, level_schema, &Path::root(), &|_| true)
    }

    /// Materialize the subtable whose MD subtuple is `md` beneath the
    /// element addressed by `comps` (SS3) — dereferences *subtable*
    /// tuple names.
    pub fn materialize_subtable_md(
        &mut self,
        schema: &TableSchema,
        handle: ObjectHandle,
        comps: &[MiniTid],
        md: MiniTid,
    ) -> Result<TableValue> {
        self.require_ss3()?;
        let root = self.root_md(handle)?;
        let pl = root.page_list.clone();
        let own = Self::root_own_group(&root)?;
        let comps = Self::strip_own_component(&own, comps);
        let (group, level_schema) = self.find_by_data_path(&pl, own, schema, comps)?;
        for (slot, attr_idx) in level_schema.table_indices().into_iter().enumerate() {
            if group.child_for(slot as u8) == Some(md) {
                let sub_schema = level_schema.attrs[attr_idx].kind.as_table().expect("table");
                return self.assemble_ss3_subtable(&pl, md, sub_schema, &Path::root(), &|_| true);
            }
        }
        Err(StorageError::Corrupt(
            "subtable MD subtuple not found at addressed element".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::stats::Stats;
    use aim2_model::fixtures;
    use aim2_model::value::build::{a, rel, tup};

    fn store(layout: LayoutKind) -> ObjectStore {
        store_sized(layout, 4096, 64)
    }

    fn store_sized(layout: LayoutKind, page_size: usize, frames: usize) -> ObjectStore {
        let pool = BufferPool::new(Box::new(MemDisk::new(page_size)), frames, Stats::new());
        ObjectStore::new(Segment::new(pool), layout)
    }

    fn dept_314() -> (TableSchema, Tuple) {
        (fixtures::departments_schema(), fixtures::department_314())
    }

    #[test]
    fn roundtrip_all_layouts() {
        let (schema, t) = dept_314();
        for layout in LayoutKind::ALL {
            let mut os = store(layout);
            let h = os.insert_object(&schema, &t).unwrap();
            let back = os.read_object(&schema, h).unwrap();
            assert_eq!(back, t, "layout {layout} roundtrip");
        }
    }

    #[test]
    fn roundtrip_all_departments_all_layouts() {
        let schema = fixtures::departments_schema();
        let all = fixtures::departments_value();
        for layout in LayoutKind::ALL {
            let mut os = store(layout);
            let mut handles = Vec::new();
            for t in &all.tuples {
                handles.push(os.insert_object(&schema, t).unwrap());
            }
            assert_eq!(os.handles().unwrap(), handles);
            for (h, t) in handles.iter().zip(&all.tuples) {
                assert_eq!(&os.read_object(&schema, *h).unwrap(), t);
            }
        }
    }

    #[test]
    fn md_subtuple_counts_match_fig6_for_dept_314() {
        // Dept 314: PROJECTS (2 complex elements) + EQUIP (flat),
        // project members are flat.
        // SS1: root + PROJECTS + 2 subobjects + 2 MEMBERS + EQUIP = 7
        // SS2: root + 2 project subobjects = 3
        // SS3: root + PROJECTS + 2 MEMBERS + EQUIP = 5
        let (schema, t) = dept_314();
        let mut counts = Vec::new();
        for layout in LayoutKind::ALL {
            let mut os = store(layout);
            let h = os.insert_object(&schema, &t).unwrap();
            counts.push(os.md_profile(h).unwrap().md_subtuples);
        }
        assert_eq!(counts, vec![7, 3, 5], "SS1, SS2, SS3 MD subtuple counts");
        // §4.1 ordering: SS1 > SS3 > SS2.
        assert!(counts[0] > counts[2] && counts[2] > counts[1]);
    }

    #[test]
    fn data_subtuple_count_is_layout_independent() {
        // Dept 314: 1 (dept) + 2 (projects) + 7 (members) + 3 (equip) = 13.
        let (schema, t) = dept_314();
        for layout in LayoutKind::ALL {
            let mut os = store(layout);
            let h = os.insert_object(&schema, &t).unwrap();
            let prof = os.md_profile(h).unwrap();
            assert_eq!(prof.data_subtuples, 13, "layout {layout}");
        }
    }

    #[test]
    fn flat_object_has_no_md_nodes_beyond_root() {
        // A flat (1NF) table's objects: root carries only a D pointer —
        // "a flat table does not have Mini Directories ... at all"; the
        // root here is just the object directory entry.
        let schema = fixtures::equip_1nf_schema();
        let mut os = store(LayoutKind::Ss3);
        let h = os
            .insert_object(&schema, &tup(vec![a(314), a(2), a("3278")]))
            .unwrap();
        let prof = os.md_profile(h).unwrap();
        assert_eq!(prof.md_subtuples, 1);
        assert_eq!(prof.data_subtuples, 1);
    }

    #[test]
    fn partial_read_prunes_subtables_and_saves_accesses() {
        let (schema, t) = dept_314();
        let mut os = store(LayoutKind::Ss3);
        let h = os.insert_object(&schema, &t).unwrap();
        let stats = os.stats();
        let before = stats.snapshot();
        let partial = os
            .read_object_projected(&schema, h, &|p| p.to_string() == "EQUIP")
            .unwrap();
        let after_partial = stats.snapshot();
        // PROJECTS pruned → empty; EQUIP present.
        assert!(partial.fields[2].as_table().unwrap().is_empty());
        assert_eq!(partial.fields[4].as_table().unwrap().len(), 3);
        let full = os.read_object(&schema, h).unwrap();
        let after_full = stats.snapshot();
        assert_eq!(full, t);
        let partial_reads = before.delta(&after_partial).subtuple_reads;
        let full_reads = after_partial.delta(&after_full).subtuple_reads;
        assert!(
            partial_reads < full_reads,
            "partial {partial_reads} !< full {full_reads}"
        );
    }

    #[test]
    fn first_level_atoms_cheap_read() {
        let (schema, t) = dept_314();
        for layout in LayoutKind::ALL {
            let mut os = store(layout);
            let h = os.insert_object(&schema, &t).unwrap();
            let atoms = os.read_first_level_atoms(h).unwrap();
            assert_eq!(
                atoms,
                vec![Atom::Int(314), Atom::Int(56194), Atom::Int(320_000)]
            );
        }
    }

    #[test]
    fn walk_data_produces_hierarchical_context() {
        let (schema, t) = dept_314();
        for layout in LayoutKind::ALL {
            let mut os = store(layout);
            let h = os.insert_object(&schema, &t).unwrap();
            let walk = os.walk_data(&schema, h).unwrap();
            assert_eq!(walk.len(), 13, "one entry per data subtuple");
            // The object's own data subtuple: empty path, no ancestors.
            assert!(walk[0].attr_path.is_root());
            assert!(walk[0].ancestors.is_empty());
            // Find the '56019 Consultant' member.
            let member = walk
                .iter()
                .find(|e| e.atoms.first() == Some(&Atom::Int(56019)))
                .expect("member 56019 present");
            assert_eq!(member.attr_path.to_string(), "PROJECTS.MEMBERS");
            assert_eq!(
                member.ancestors.len(),
                1,
                "one complex-subobject ancestor (project 17)"
            );
            // The ancestor is project 17's data subtuple.
            let anc_atoms = os.read_data_subtuple(h, member.ancestors[0]).unwrap();
            assert_eq!(anc_atoms[0], Atom::Int(17));
            // Paper §4.2: P2 = F2 — the PNO address component for project
            // 17 equals the member's ancestor component.
            let pno17 = walk
                .iter()
                .find(|e| e.attr_path.to_string() == "PROJECTS" && e.atoms[0] == Atom::Int(17))
                .unwrap();
            assert_eq!(pno17.data, member.ancestors[0]);
            // EQUIP entries: flat subobjects, no ancestors.
            let equip = walk
                .iter()
                .filter(|e| e.attr_path.to_string() == "EQUIP")
                .count();
            assert_eq!(equip, 3);
            assert!(walk
                .iter()
                .filter(|e| e.attr_path.to_string() == "EQUIP")
                .all(|e| e.ancestors.is_empty()));
        }
    }

    #[test]
    fn walk_md_paths_is_the_naive_fig7a_form() {
        let (schema, t) = dept_314();
        let mut os = store(LayoutKind::Ss3);
        let h = os.insert_object(&schema, &t).unwrap();
        let walk = os.walk_data_md_paths(&schema, h).unwrap();
        // P (PNO=17): root + PROJECTS-MD, data '17 CGA' → md_path len 1.
        let p = walk
            .iter()
            .find(|e| e.attr_path.to_string() == "PROJECTS" && e.atoms[0] == Atom::Int(17))
            .unwrap();
        assert_eq!(p.md_path.len(), 1);
        // F (56019 Consultant): root + PROJECTS-MD + MEMBERS-MD → len 2.
        let f = walk
            .iter()
            .find(|e| e.atoms.first() == Some(&Atom::Int(56019)))
            .unwrap();
        assert_eq!(f.md_path.len(), 2);
        // The naive form's "P2 = F2" compares subtable MDs: equal but
        // useless — it's the same PROJECTS node for members of project 17
        // AND project 23.
        assert_eq!(p.md_path[0], f.md_path[0]);
        let f23 = walk
            .iter()
            .find(|e| e.atoms.first() == Some(&Atom::Int(58912)))
            .unwrap(); // member of project 23
        assert_eq!(
            p.md_path[0], f23.md_path[0],
            "naive P2=F2 also matches members of OTHER projects — Fig 7a's flaw"
        );
        // MD-path walk is SS3-only.
        let mut os1 = store(LayoutKind::Ss1);
        let h1 = os1.insert_object(&schema, &t).unwrap();
        assert!(os1.walk_data_md_paths(&schema, h1).is_err());
    }

    #[test]
    fn update_atoms_rewrites_one_data_subtuple() {
        let (schema, t) = dept_314();
        let mut os = store(LayoutKind::Ss3);
        let h = os.insert_object(&schema, &t).unwrap();
        // Raise the budget (object level).
        os.update_atoms(
            &schema,
            h,
            &ElemLoc::object(),
            &[Atom::Int(314), Atom::Int(56194), Atom::Int(999_000)],
        )
        .unwrap();
        // Rename project 17 (element 0 of PROJECTS = attr 2).
        os.update_atoms(
            &schema,
            h,
            &ElemLoc::object().then(2, 0),
            &[Atom::Int(17), Atom::Str("CGA-2".into())],
        )
        .unwrap();
        let back = os.read_object(&schema, h).unwrap();
        assert_eq!(back.fields[3].as_atom().unwrap().as_int(), Some(999_000));
        let projects = back.fields[2].as_table().unwrap();
        assert_eq!(
            projects.tuples[0].fields[1].as_atom().unwrap().as_str(),
            Some("CGA-2")
        );
        // Members untouched.
        assert_eq!(projects.tuples[0].fields[2].as_table().unwrap().len(), 3);
    }

    #[test]
    fn update_atoms_wrong_arity_rejected() {
        let (schema, t) = dept_314();
        let mut os = store(LayoutKind::Ss3);
        let h = os.insert_object(&schema, &t).unwrap();
        assert!(os
            .update_atoms(&schema, h, &ElemLoc::object(), &[Atom::Int(1)])
            .is_err());
    }

    #[test]
    fn insert_and_delete_elements() {
        let (schema, t) = dept_314();
        let mut os = store(LayoutKind::Ss3);
        let h = os.insert_object(&schema, &t).unwrap();
        // Add a new project with one member (PROJECTS is attr index 2).
        let new_project = tup(vec![
            a(99),
            a("AIM"),
            rel(vec![tup(vec![a(11111), a("Leader")])]),
        ]);
        os.insert_element(&schema, h, &ElemLoc::object(), 2, &new_project)
            .unwrap();
        // Add a member to project 17 (MEMBERS is attr index 2 of PROJECTS
        // level).
        os.insert_element(
            &schema,
            h,
            &ElemLoc::object().then(2, 0),
            2,
            &tup(vec![a(22222), a("Staff")]),
        )
        .unwrap();
        let back = os.read_object(&schema, h).unwrap();
        let projects = back.fields[2].as_table().unwrap();
        assert_eq!(projects.len(), 3);
        assert_eq!(
            projects.tuples[2].fields[0].as_atom().unwrap().as_int(),
            Some(99)
        );
        assert_eq!(projects.tuples[0].fields[2].as_table().unwrap().len(), 4);
        // Delete project 23 (element 1).
        os.delete_element(&schema, h, &ElemLoc::object(), 2, 1)
            .unwrap();
        let back = os.read_object(&schema, h).unwrap();
        let projects = back.fields[2].as_table().unwrap();
        assert_eq!(projects.len(), 2);
        let pnos: Vec<i64> = projects
            .tuples
            .iter()
            .map(|p| p.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pnos, vec![17, 99]);
        // Deleting out of range errors.
        assert!(matches!(
            os.delete_element(&schema, h, &ElemLoc::object(), 2, 9),
            Err(StorageError::BadElementIndex { .. })
        ));
    }

    #[test]
    fn element_mutations_rejected_on_ss1_ss2_but_object_updates_work() {
        let (schema, t) = dept_314();
        for layout in [LayoutKind::Ss1, LayoutKind::Ss2] {
            let mut os = store(layout);
            let h = os.insert_object(&schema, &t).unwrap();
            // Element-level mutation requires SS3 (the AIM-II layout).
            assert!(os
                .update_atoms(
                    &schema,
                    h,
                    &ElemLoc::object().then(2, 0),
                    &[Atom::Int(17), Atom::Str("X".into())]
                )
                .is_err());
            // Object-level atom updates work under every layout.
            os.update_atoms(
                &schema,
                h,
                &ElemLoc::object(),
                &[Atom::Int(314), Atom::Int(56194), Atom::Int(1)],
            )
            .unwrap();
            let back = os.read_object(&schema, h).unwrap();
            assert_eq!(back.fields[3].as_atom().unwrap().as_int(), Some(1));
        }
    }

    #[test]
    fn many_elements_grow_md_across_pages() {
        // A subtable far larger than one page forces the MD node through
        // the local-forwarding path and the page list to grow; Mini-TIDs
        // must stay valid throughout.
        let schema = TableSchema::relation("BIG")
            .with_atom("ID", aim2_model::AtomType::Int)
            .with_table(
                TableSchema::relation("ITEMS")
                    .with_atom("K", aim2_model::AtomType::Int)
                    .with_atom("V", aim2_model::AtomType::Str),
            );
        let mut os = store_sized(LayoutKind::Ss3, 512, 32);
        let h = os
            .insert_object(
                &schema,
                &tup(vec![a(1), rel(vec![tup(vec![a(0), a("v0")])])]),
            )
            .unwrap();
        for i in 1..300i64 {
            os.insert_element(
                &schema,
                h,
                &ElemLoc::object(),
                1,
                &tup(vec![a(i), a(format!("value-{i}"))]),
            )
            .unwrap();
        }
        let back = os.read_object(&schema, h).unwrap();
        let items = back.fields[1].as_table().unwrap();
        assert_eq!(items.len(), 300);
        for (i, t) in items.tuples.iter().enumerate() {
            assert_eq!(t.fields[0].as_atom().unwrap().as_int(), Some(i as i64));
        }
        assert!(os.object_pages(h).unwrap().len() > 3);
    }

    #[test]
    fn move_object_rewrites_no_pointers() {
        let (schema, t) = dept_314();
        let mut os = store_sized(LayoutKind::Ss3, 512, 32);
        let h = os.insert_object(&schema, &t).unwrap();
        let pages_before = os.object_pages(h).unwrap();
        let stats = os.stats();
        let before = stats.snapshot();
        os.move_object(h).unwrap();
        let after = stats.snapshot();
        assert_eq!(
            before.delta(&after).pointer_rewrites,
            0,
            "page-level move touches no D/C pointers (§4.1)"
        );
        let pages_after = os.object_pages(h).unwrap();
        assert_ne!(pages_before, pages_after, "object relocated");
        // Everything still reads back — Mini-TIDs valid, handle unchanged.
        assert_eq!(os.read_object(&schema, h).unwrap(), t);
    }

    #[test]
    fn delete_object_reclaims_pages_for_new_objects() {
        let (schema, t) = dept_314();
        let mut os = store_sized(LayoutKind::Ss3, 512, 32);
        let h = os.insert_object(&schema, &t).unwrap();
        let freed = os.object_pages(h).unwrap();
        os.delete_object(h).unwrap();
        assert!(os.root_md(h).is_err(), "handle invalid after delete");
        // A new object reuses the freed pages.
        let h2 = os.insert_object(&schema, &t).unwrap();
        let reused = os.object_pages(h2).unwrap();
        assert!(
            reused.iter().any(|p| freed.contains(p)),
            "freed pages reused"
        );
        assert_eq!(os.read_object(&schema, h2).unwrap(), t);
    }

    #[test]
    fn clustered_objects_touch_few_pages_scattered_many() {
        let (schema, t) = dept_314();
        let mut clustered = store_sized(LayoutKind::Ss3, 512, 256);
        let mut scattered =
            store_sized(LayoutKind::Ss3, 512, 256).with_policy(ClusterPolicy::Scattered);
        // Interleave several objects so the scattered store mixes them.
        let mut ch = Vec::new();
        let mut sh = Vec::new();
        for _ in 0..8 {
            ch.push(clustered.insert_object(&schema, &t).unwrap());
            sh.push(scattered.insert_object(&schema, &t).unwrap());
        }
        let cp = clustered.object_pages(ch[0]).unwrap().len();
        let sp = scattered.object_pages(sh[0]).unwrap().len();
        assert!(
            cp < sp,
            "clustered object on {cp} pages vs scattered on {sp}"
        );
        // Both still read correctly.
        assert_eq!(clustered.read_object(&schema, ch[0]).unwrap(), t);
        assert_eq!(scattered.read_object(&schema, sh[0]).unwrap(), t);
    }

    #[test]
    fn dump_md_tree_shows_fig6_shape() {
        let (schema, t) = dept_314();
        let mut os = store(LayoutKind::Ss3);
        let h = os.insert_object(&schema, &t).unwrap();
        let dump = os.dump_md_tree(h).unwrap();
        // Root entry is "DCC" — exactly the paper's Fig 6 annotation.
        assert!(dump.contains("[DCC]"), "dump:\n{dump}");
        assert!(dump.contains("314 56194 320000"));
        assert!(dump.contains("17 CGA"));
        assert!(dump.contains("subtable MD subtuple"));
    }

    #[test]
    fn ordered_subtable_preserves_order_via_entry_sequence() {
        let schema = fixtures::reports_schema();
        let reports = fixtures::reports_value();
        for layout in LayoutKind::ALL {
            let mut os = store(layout);
            let h = os.insert_object(&schema, &reports.tuples[2]).unwrap();
            let back = os.read_object(&schema, h).unwrap();
            let authors = back.fields[1].as_table().unwrap();
            let names: Vec<&str> = authors
                .tuples
                .iter()
                .map(|t| t.fields[0].as_atom().unwrap().as_str().unwrap())
                .collect();
            assert_eq!(
                names,
                vec!["Pool A.V.", "Meyer P.", "Jones A."],
                "list order kept under {layout}"
            );
        }
    }

    #[test]
    fn empty_subtables_roundtrip() {
        let (schema, _) = dept_314();
        let empty_dept = tup(vec![a(999), a(1), rel(vec![]), a(0), rel(vec![])]);
        for layout in LayoutKind::ALL {
            let mut os = store(layout);
            let h = os.insert_object(&schema, &empty_dept).unwrap();
            let back = os.read_object(&schema, h).unwrap();
            assert_eq!(back, empty_dept, "layout {layout}");
            let walk = os.walk_data(&schema, h).unwrap();
            assert_eq!(walk.len(), 1);
        }
    }
}
