//! Deterministic fault injection for crash-consistency testing.
//!
//! [`FaultInjector`] is a small shared state machine that decides, for
//! every write anywhere in the database (data pages, WAL appends, the
//! catalog temp file), whether that write succeeds, is *torn* (only a
//! prefix reaches the platter before the simulated power cut), or fails
//! transiently. It is seed-driven and fully deterministic: the same
//! plan over the same workload injects the same fault at the same byte.
//!
//! [`FaultDisk`] composes over any [`Disk`] (file- or memory-backed) and
//! routes its writes through an injector. The crash-consistency suite
//! builds its sweep on top: run a workload once to count writes `N`,
//! then for every `k ≤ N` re-run with `stop_after(k)` and verify the
//! reopened database equals its last checkpoint.

use crate::disk::Disk;
use crate::error::StorageError;
use crate::tid::PageId;
use crate::Result;
use std::sync::{Arc, Mutex};

/// What the injector decided about one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write goes through untouched.
    Full,
    /// Only the first `n` bytes persist, then the disk stops — the torn
    /// write *and* the power cut in one event.
    Torn(usize),
    /// The write fails and nothing persists; the disk keeps running
    /// (transient) or has stopped (post-crash).
    Fail,
    /// The write lands, but with bit `bit` of byte `byte` flipped — a
    /// silent bit-rot event. The disk keeps running and reports success;
    /// only checksums can tell.
    Corrupted { byte: usize, bit: u8 },
}

#[derive(Debug)]
struct State {
    seed: u64,
    plan: Plan,
    writes: u64,
    stopped: bool,
}

#[derive(Debug, Clone, Copy)]
enum Plan {
    /// Count writes, never inject.
    Observe,
    /// Write number `n` (1-based) completes; every later write fails.
    StopAfter(u64),
    /// Write number `n` is torn at a seed-derived offset; every later
    /// write fails.
    TearAt(u64),
    /// Write number `n` fails once; everything else succeeds.
    TransientAt(u64),
    /// Write number `n` silently lands with one seed-derived bit
    /// flipped; the disk keeps running and never reports the damage.
    CorruptAt(u64),
}

/// Shared, clonable fault-decision state. One injector is typically
/// threaded through a whole database so the write counter is global
/// across all its segments, the WAL, and the catalog. `Send + Sync`:
/// concurrent sessions share one injector, and the write numbering is
/// then whatever order the writes actually reached the (locked) state.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: Arc<Mutex<State>>,
}

impl FaultInjector {
    fn with_plan(seed: u64, plan: Plan) -> FaultInjector {
        FaultInjector {
            state: Arc::new(Mutex::new(State {
                seed,
                plan,
                writes: 0,
                stopped: false,
            })),
        }
    }

    /// Count writes without ever injecting — the sweep's reference run.
    pub fn observer() -> FaultInjector {
        FaultInjector::with_plan(0, Plan::Observe)
    }

    /// The disk dies cleanly after the `n`-th write (1-based) completes.
    pub fn stop_after(n: u64) -> FaultInjector {
        FaultInjector::with_plan(0, Plan::StopAfter(n))
    }

    /// The `n`-th write (1-based) is torn at a `seed`-derived byte
    /// offset, then the disk dies.
    pub fn tear_at(n: u64, seed: u64) -> FaultInjector {
        FaultInjector::with_plan(seed, Plan::TearAt(n))
    }

    /// The `n`-th write (1-based) fails with an I/O error; the disk
    /// keeps working afterwards.
    pub fn transient_at(n: u64) -> FaultInjector {
        FaultInjector::with_plan(0, Plan::TransientAt(n))
    }

    /// The `n`-th write (1-based) silently lands with one `seed`-derived
    /// bit flipped — deterministic bit rot. The disk keeps running and
    /// reports success; detection is the checksum layer's job.
    pub fn corrupt_at(n: u64, seed: u64) -> FaultInjector {
        FaultInjector::with_plan(seed, Plan::CorruptAt(n))
    }

    /// Total writes observed so far (including the failed ones).
    pub fn writes(&self) -> u64 {
        self.state.lock().unwrap().writes
    }

    /// Whether the simulated power cut has happened.
    pub fn stopped(&self) -> bool {
        self.state.lock().unwrap().stopped
    }

    /// Decide the fate of a `len`-byte write. Callers must honour the
    /// outcome: persist everything, persist exactly the torn prefix, or
    /// persist nothing.
    pub fn check_write(&self, len: usize) -> WriteOutcome {
        let mut s = self.state.lock().unwrap();
        if s.stopped {
            return WriteOutcome::Fail;
        }
        s.writes += 1;
        let n = s.writes;
        match s.plan {
            Plan::Observe => WriteOutcome::Full,
            Plan::StopAfter(k) => {
                if n == k {
                    s.stopped = true;
                }
                WriteOutcome::Full
            }
            Plan::TearAt(k) if n == k => {
                s.stopped = true;
                // Deterministic torn length in 1..len (never empty,
                // never complete); a 1-byte write can only vanish.
                if len <= 1 {
                    WriteOutcome::Fail
                } else {
                    let h = splitmix64(s.seed ^ n);
                    WriteOutcome::Torn(1 + (h % (len as u64 - 1)) as usize)
                }
            }
            Plan::TearAt(_) => WriteOutcome::Full,
            Plan::TransientAt(k) if n == k => WriteOutcome::Fail,
            Plan::TransientAt(_) => WriteOutcome::Full,
            Plan::CorruptAt(k) if n == k && len > 0 => {
                let h = splitmix64(s.seed ^ n);
                WriteOutcome::Corrupted {
                    byte: (h % len as u64) as usize,
                    bit: (splitmix64(h) % 8) as u8,
                }
            }
            Plan::CorruptAt(_) => WriteOutcome::Full,
        }
    }

    /// [`FaultInjector::check_write`] folded into the shape raw-file
    /// writers want: `Ok(None)` = write fully, `Ok(Some(k))` = persist
    /// the first `k` bytes then report the crash, `Err` = nothing
    /// persisted.
    pub fn plan_write(&self, len: usize) -> Result<Option<usize>> {
        match self.check_write(len) {
            WriteOutcome::Full => Ok(None),
            WriteOutcome::Torn(k) => Ok(Some(k)),
            WriteOutcome::Fail => Err(StorageError::Io(std::io::Error::other(
                "fault injection: write failed",
            ))),
            // Bit rot targets page-granular writes; stream writers (WAL,
            // catalog) carry their own record checksums and pass through.
            WriteOutcome::Corrupted { .. } => Ok(None),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`Disk`] that routes every mutation through a [`FaultInjector`].
/// Reads are never faulted (the harness models write-path crashes);
/// allocation counts as a write of one zero page.
pub struct FaultDisk {
    inner: Box<dyn Disk>,
    inj: FaultInjector,
}

impl FaultDisk {
    pub fn new(inner: Box<dyn Disk>, inj: FaultInjector) -> FaultDisk {
        FaultDisk { inner, inj }
    }
}

impl Disk for FaultDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn allocate(&mut self) -> Result<PageId> {
        match self.inj.check_write(self.inner.page_size()) {
            WriteOutcome::Full => self.inner.allocate(),
            // A torn extension of the file is modelled as the
            // allocation never happening — the segment's committed
            // extent is unaffected either way.
            WriteOutcome::Torn(_) | WriteOutcome::Fail => Err(StorageError::Io(
                std::io::Error::other("fault injection: allocation failed, disk stopped"),
            )),
            // An all-zero fresh page has no checksum to violate; rot on
            // an allocation write is indistinguishable from rot on the
            // page's first real write, which the plan can target instead.
            WriteOutcome::Corrupted { .. } => self.inner.allocate(),
        }
    }

    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        self.inner.read_page(pid, buf)
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        match self.inj.check_write(buf.len()) {
            WriteOutcome::Full => self.inner.write_page(pid, buf),
            WriteOutcome::Torn(k) => {
                // New prefix + old suffix persist: exactly what a torn
                // sector write leaves behind.
                let mut torn = vec![0u8; buf.len()];
                self.inner.read_page(pid, &mut torn)?;
                torn[..k].copy_from_slice(&buf[..k]);
                self.inner.write_page(pid, &torn)?;
                Err(StorageError::Io(std::io::Error::other(
                    "fault injection: page write torn, disk stopped",
                )))
            }
            WriteOutcome::Fail => Err(StorageError::Io(std::io::Error::other(
                "fault injection: page write failed",
            ))),
            WriteOutcome::Corrupted { byte, bit } => {
                let mut rotted = buf.to_vec();
                rotted[byte] ^= 1 << bit;
                // The caller sees success: silent corruption.
                self.inner.write_page(pid, &rotted)
            }
        }
    }

    fn sync(&mut self) -> Result<()> {
        if self.inj.stopped() {
            return Err(StorageError::Io(std::io::Error::other(
                "fault injection: sync failed, disk stopped",
            )));
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn faulted(inj: &FaultInjector) -> FaultDisk {
        FaultDisk::new(Box::new(MemDisk::new(64)), inj.clone())
    }

    #[test]
    fn observer_counts_and_never_faults() {
        let inj = FaultInjector::observer();
        let mut d = faulted(&inj);
        let p = d.allocate().unwrap();
        d.write_page(p, &[7u8; 64]).unwrap();
        d.write_page(p, &[8u8; 64]).unwrap();
        assert_eq!(inj.writes(), 3, "allocation counts as a write");
        assert!(!inj.stopped());
    }

    #[test]
    fn stop_after_kills_later_writes_but_not_reads() {
        let inj = FaultInjector::stop_after(2);
        let mut d = faulted(&inj);
        let p = d.allocate().unwrap();
        d.write_page(p, &[7u8; 64]).unwrap(); // write #2 — last to land
        assert!(d.write_page(p, &[9u8; 64]).is_err());
        assert!(d.sync().is_err());
        assert!(inj.stopped());
        let mut buf = [0u8; 64];
        d.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64], "pre-crash state still readable");
    }

    #[test]
    fn tear_leaves_new_prefix_old_suffix() {
        let inj = FaultInjector::tear_at(3, 42);
        let mut d = faulted(&inj);
        let p = d.allocate().unwrap();
        d.write_page(p, &[1u8; 64]).unwrap();
        assert!(d.write_page(p, &[2u8; 64]).is_err(), "write #3 is torn");
        let mut buf = [0u8; 64];
        d.read_page(p, &mut buf).unwrap();
        let cut = buf
            .iter()
            .position(|&b| b == 1)
            .expect("old suffix remains");
        assert!(cut >= 1, "some new bytes landed");
        assert!(buf[..cut].iter().all(|&b| b == 2));
        assert!(buf[cut..].iter().all(|&b| b == 1));
        // Deterministic: same seed, same cut.
        let inj2 = FaultInjector::tear_at(3, 42);
        let mut d2 = faulted(&inj2);
        let p2 = d2.allocate().unwrap();
        d2.write_page(p2, &[1u8; 64]).unwrap();
        let _ = d2.write_page(p2, &[2u8; 64]);
        let mut buf2 = [0u8; 64];
        d2.read_page(p2, &mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn corrupt_at_flips_exactly_one_bit_silently() {
        let inj = FaultInjector::corrupt_at(2, 1234);
        let mut d = faulted(&inj);
        let p = d.allocate().unwrap();
        d.write_page(p, &[0u8; 64]).unwrap(); // write #2 — rotted, but Ok
        assert!(!inj.stopped(), "bit rot never stops the disk");
        let mut buf = [0u8; 64];
        d.read_page(p, &mut buf).unwrap();
        let flipped: Vec<(usize, u8)> = buf
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != 0)
            .map(|(i, &b)| (i, b))
            .collect();
        assert_eq!(flipped.len(), 1, "exactly one byte differs");
        assert_eq!(flipped[0].1.count_ones(), 1, "exactly one bit differs");
        // The disk keeps serving writes afterwards.
        d.write_page(p, &[3u8; 64]).unwrap();
        d.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 64]);
    }

    #[test]
    fn corrupt_at_is_seed_deterministic() {
        let run = |seed: u64| {
            let inj = FaultInjector::corrupt_at(2, seed);
            let mut d = faulted(&inj);
            let p = d.allocate().unwrap();
            d.write_page(p, &[0u8; 64]).unwrap();
            let mut buf = [0u8; 64];
            d.read_page(p, &mut buf).unwrap();
            buf
        };
        assert_eq!(run(7), run(7), "same seed, same flip");
        assert_ne!(run(7), run(8), "different seed, different flip");
    }

    #[test]
    fn corrupted_page_write_is_caught_by_pool_checksum() {
        use crate::buffer::BufferPool;
        use crate::stats::Stats;
        // Write #2 is the pool's flush of the page; rot it, then a cold
        // read must surface CorruptPage instead of garbage.
        let inj = FaultInjector::corrupt_at(2, 99);
        let disk = FaultDisk::new(Box::new(MemDisk::new(128)), inj);
        let bp = BufferPool::new(Box::new(disk), 2, Stats::new());
        let p = bp.allocate_page().unwrap();
        bp.with_page_mut(p, |b| b.iter_mut().for_each(|x| *x = 0x55))
            .unwrap();
        bp.clear_cache().unwrap();
        match bp.with_page(p, |_| ()) {
            Err(StorageError::CorruptPage { page, .. }) => assert_eq!(page, p),
            other => panic!("expected CorruptPage, got {other:?}"),
        }
    }

    #[test]
    fn transient_fails_once_then_recovers() {
        let inj = FaultInjector::transient_at(2);
        let mut d = faulted(&inj);
        let p = d.allocate().unwrap();
        assert!(d.write_page(p, &[5u8; 64]).is_err(), "write #2 fails");
        assert!(!inj.stopped());
        d.write_page(p, &[5u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        d.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 64]);
    }
}
