//! # aim2-storage — the AIM-II storage engine
//!
//! A from-scratch page-based storage engine implementing Section 4.1 of
//! Dadam et al., SIGMOD 1986:
//!
//! * slotted pages, TIDs, a file- or memory-backed [`disk`], and a
//!   [`buffer`] pool with hit/miss accounting (the substrate — "in the
//!   AIM-II project we had the opportunity to build a totally new DBMS
//!   from scratch");
//! * a [`segment`]-level record manager whose records are the paper's
//!   *subtuples* ("the basic storage unit, like a tuple or a record in
//!   traditional database systems"), with TID-stable forwarding;
//! * **Mini Directories** ([`minidir`]): the paper's separation of
//!   structural information from data, in all three layout alternatives
//!   SS1 / SS2 / SS3 (Figures 6a–6c);
//! * **local address spaces** ([`pagelist`]): a page list in the root MD
//!   subtuple, Mini-TIDs interpreted relative to it, gap-preserving
//!   deletion so existing Mini-TIDs never move;
//! * the complex [`object`] manager: insert / full and partial retrieval /
//!   update / delete of complex objects and arbitrary parts of them, plus
//!   page-level object move ("check-out") that rewrites no pointers;
//! * [`flatstore`]: flat 1NF tables as the degenerate case (one data
//!   subtuple per tuple, no Mini Directory at all), with a tiered
//!   [`colstore`] cold tier — immutable dictionary-encoded columnar
//!   blocks with zone maps, frozen out of the hot heap by compaction;
//! * two baselines the paper compares against: [`lorie`] (complex objects
//!   chained with hidden child/sibling/father/root pointers on top of
//!   flat tables, /LP83/) and [`ims`] (segment hierarchies with GN / GNP
//!   navigation, Figure 1).

pub mod buffer;
pub mod check;
pub mod colstore;
pub mod disk;
pub mod error;
pub mod faultdisk;
pub mod flatstore;
pub mod ims;
pub mod lorie;
pub mod minidir;
pub mod object;
pub mod page;
pub mod pagelist;
pub mod segment;
pub mod stats;
pub mod tid;
pub mod wal;

pub use check::{CheckKind, Finding, IntegrityReport};
pub use colstore::{cold_key, split_cold_key, ColdBlockMeta, DecodedBlock, COLD_KEY_BIT};
pub use error::StorageError;
pub use faultdisk::{FaultDisk, FaultInjector, WriteOutcome};
pub use minidir::LayoutKind;
pub use object::{ClusterPolicy, ElemLoc, ObjectHandle, ObjectStore};
pub use stats::Stats;
pub use tid::{MiniTid, PageId, SlotNo, Tid};
pub use wal::{read_wal, Wal, WalContents, WalFrame};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
