//! TIDs and Mini-TIDs.
//!
//! A [`Tid`] is the classic tuple identifier of /As76/ (System R): a page
//! number interpreted relative to the beginning of the database segment,
//! plus a slot number.
//!
//! A [`MiniTid`] is the paper's *local* pointer (§4.1): its page number is
//! interpreted **relative to the complex object's page list** ("the page
//! number in a Mini TID is always interpreted relatively to the beginning
//! of the complex object's local address space"). Mini-TIDs are smaller
//! than TIDs (4 vs 6 bytes here) — the paper notes this saves Mini
//! Directory space — and, crucially, they survive page-level object moves
//! unchanged, because only the page list must be updated.

use std::fmt;

/// Physical page number within a segment (u32 — segments up to 2^32
/// pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Slot number within a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotNo(pub u16);

impl fmt::Display for SlotNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Segment-global tuple identifier: (page number, slot number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid {
    pub page: PageId,
    pub slot: SlotNo,
}

impl Tid {
    /// Serialized size in bytes.
    pub const ENCODED_LEN: usize = 6;

    pub fn new(page: PageId, slot: SlotNo) -> Tid {
        Tid { page, slot }
    }

    /// Pack into a `u64` (opaque cursor row key).
    pub fn to_u64(self) -> u64 {
        ((self.page.0 as u64) << 16) | self.slot.0 as u64
    }

    /// Inverse of [`Tid::to_u64`].
    pub fn from_u64(v: u64) -> Tid {
        Tid {
            page: PageId((v >> 16) as u32),
            slot: SlotNo((v & 0xFFFF) as u16),
        }
    }

    /// Serialize to 6 bytes (LE page, LE slot).
    pub fn encode(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.page.0.to_le_bytes());
        out.extend_from_slice(&self.slot.0.to_le_bytes());
    }

    /// Deserialize from 6 bytes at `buf[*pos..]`, advancing `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<Tid> {
        let b = buf.get(*pos..*pos + Self::ENCODED_LEN)?;
        *pos += Self::ENCODED_LEN;
        Some(Tid {
            page: PageId(u32::from_le_bytes(b[0..4].try_into().unwrap())),
            slot: SlotNo(u16::from_le_bytes(b[4..6].try_into().unwrap())),
        })
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.page, self.slot)
    }
}

/// Object-local tuple identifier: (index into the object's page list,
/// slot number). 4 bytes encoded — smaller than a TID, as §4.1 notes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MiniTid {
    /// Index into the owning object's page list (*not* a physical page).
    pub lpage: u16,
    pub slot: SlotNo,
}

impl MiniTid {
    /// Serialized size in bytes (smaller than a TID — §4.1).
    pub const ENCODED_LEN: usize = 4;

    pub fn new(lpage: u16, slot: SlotNo) -> MiniTid {
        MiniTid { lpage, slot }
    }

    /// Serialize to 4 bytes.
    pub fn encode(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.lpage.to_le_bytes());
        out.extend_from_slice(&self.slot.0.to_le_bytes());
    }

    /// Deserialize from 4 bytes at `buf[*pos..]`, advancing `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<MiniTid> {
        let b = buf.get(*pos..*pos + Self::ENCODED_LEN)?;
        *pos += Self::ENCODED_LEN;
        Some(MiniTid {
            lpage: u16::from_le_bytes(b[0..2].try_into().unwrap()),
            slot: SlotNo(u16::from_le_bytes(b[2..4].try_into().unwrap())),
        })
    }
}

impl fmt::Display for MiniTid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}.{}", self.lpage, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_roundtrip() {
        let t = Tid::new(PageId(0xDEADBE), SlotNo(0x1234));
        let mut buf = Vec::new();
        t.encode(&mut buf);
        assert_eq!(buf.len(), Tid::ENCODED_LEN);
        let mut pos = 0;
        assert_eq!(Tid::decode(&buf, &mut pos), Some(t));
        assert_eq!(pos, Tid::ENCODED_LEN);
    }

    #[test]
    fn mini_tid_roundtrip_and_smaller() {
        let m = MiniTid::new(7, SlotNo(3));
        let mut buf = Vec::new();
        m.encode(&mut buf);
        assert_eq!(buf.len(), MiniTid::ENCODED_LEN);
        const { assert!(MiniTid::ENCODED_LEN < Tid::ENCODED_LEN) } // §4.1 space claim
        let mut pos = 0;
        assert_eq!(MiniTid::decode(&buf, &mut pos), Some(m));
    }

    #[test]
    fn decode_truncated_returns_none() {
        let mut pos = 0;
        assert_eq!(Tid::decode(&[1, 2, 3], &mut pos), None);
        assert_eq!(pos, 0);
        assert_eq!(MiniTid::decode(&[1], &mut pos), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tid::new(PageId(3), SlotNo(1)).to_string(), "P3.s1");
        assert_eq!(MiniTid::new(0, SlotNo(2)).to_string(), "p0.s2");
    }
}
