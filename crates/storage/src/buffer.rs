//! Buffer pool.
//!
//! A fixed number of in-memory frames cache disk pages with clock-sweep
//! replacement and write-back of dirty frames. All page traffic of the
//! engine flows through here, so the [`Stats`] hit/miss counters measure
//! exactly the "number of database pages accessed" that the paper's
//! clustering and navigation arguments are about.
//!
//! The pool is `Send + Sync`: its whole state sits behind one internal
//! mutex (a *pool latch*), so page reads and writes from concurrent
//! sessions serialize at page-access granularity while the transaction
//! layer above provides logical isolation via object/table locks. No
//! reference to a frame ever escapes a call (the closure API), so no
//! per-frame pin counts are needed.

use crate::disk::Disk;
use crate::error::StorageError;
use crate::stats::Stats;
use crate::tid::PageId;
use crate::wal::{crc32, SharedWal};
use crate::Result;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// Bytes reserved at the head of every raw disk page for the CRC-32 the
/// pool stamps on write-back. Callers of [`BufferPool::with_page`] /
/// [`BufferPool::with_page_mut`] see only the usable remainder, and
/// [`BufferPool::page_size`] reports the usable size, so layout code
/// above the pool never sees (or can clobber) the checksum.
pub const CHECKSUM_LEN: usize = 4;

struct Frame {
    pid: PageId,
    data: Box<[u8]>,
    dirty: bool,
    /// Clock reference bit: set on access, cleared as the sweep hand
    /// passes — victim selection is O(1) amortized instead of a full
    /// frame scan per miss.
    referenced: bool,
}

/// Clock-sweep (second-chance) write-back buffer pool over a [`Disk`].
///
/// When a [`Wal`](crate::wal::Wal) is attached (file-backed databases),
/// the pool enforces the write-ahead rule: before any dirty page's first
/// write-back of the current checkpoint epoch, its on-disk
/// *before-image* is appended to the log and the log is synced. Pages
/// allocated within the epoch have no committed before-image and are
/// exempt — after a crash they are unreferenced by the restored catalog.
pub struct BufferPool {
    state: Mutex<PoolState>,
}

struct PoolState {
    disk: Box<dyn Disk>,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    stats: Stats,
    /// Write-ahead log shared with the database's other pools.
    wal: Option<SharedWal>,
    /// Segment file name recorded in this pool's WAL frames.
    seg_name: String,
    /// Pages whose before-image is already logged this epoch.
    logged: HashSet<PageId>,
    /// Pages allocated this epoch (no before-image exists yet).
    fresh: HashSet<PageId>,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Box<dyn Disk>, capacity: usize, stats: Stats) -> BufferPool {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            state: Mutex::new(PoolState {
                disk,
                capacity,
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                stats,
                wal: None,
                seg_name: String::new(),
                logged: HashSet::new(),
                fresh: HashSet::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().expect("buffer pool latch poisoned")
    }

    /// Attach a write-ahead log. `seg_name` identifies this pool's
    /// segment file in log frames (recovery maps frames back to files).
    pub fn attach_wal(&self, wal: SharedWal, seg_name: impl Into<String>) {
        let mut s = self.lock();
        s.wal = Some(wal);
        s.seg_name = seg_name.into();
    }

    /// A checkpoint has committed: the on-disk images are the new
    /// recovery baseline, so every page needs fresh logging before its
    /// next write-back.
    pub fn note_checkpoint(&self) {
        let mut s = self.lock();
        s.logged.clear();
        s.fresh.clear();
    }

    /// Flush the underlying disk's volatile buffers to stable storage.
    pub fn sync_disk(&self) -> Result<()> {
        self.lock().disk.sync()
    }

    /// Usable page size: the underlying disk's page size minus the
    /// checksum header the pool maintains.
    pub fn page_size(&self) -> usize {
        self.lock().disk.page_size() - CHECKSUM_LEN
    }

    /// Number of pages allocated on disk.
    pub fn num_pages(&self) -> u32 {
        self.lock().disk.num_pages()
    }

    /// The shared stats block.
    pub fn stats(&self) -> Stats {
        self.lock().stats.clone()
    }

    /// Allocate a fresh zeroed page; it enters the pool without a disk
    /// read.
    pub fn allocate_page(&self) -> Result<PageId> {
        let mut s = self.lock();
        let pid = s.disk.allocate()?;
        if s.wal.is_some() {
            s.fresh.insert(pid);
        }
        let idx = s.free_frame()?;
        let ps = s.disk.page_size();
        let f = &mut s.frames[idx];
        f.pid = pid;
        f.data.iter_mut().for_each(|b| *b = 0);
        debug_assert_eq!(f.data.len(), ps);
        f.dirty = false;
        f.referenced = true;
        s.map.insert(pid, idx);
        Ok(pid)
    }

    /// Run `f` over the (read-only) usable contents of page `pid`.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut s = self.lock();
        let idx = s.fetch(pid)?;
        s.frames[idx].referenced = true;
        Ok(f(&s.frames[idx].data[CHECKSUM_LEN..]))
    }

    /// Run `f` over the mutable usable contents of page `pid`; the frame
    /// is marked dirty.
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut s = self.lock();
        let idx = s.fetch(pid)?;
        let frame = &mut s.frames[idx];
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.data[CHECKSUM_LEN..]))
    }

    /// Write all dirty frames back to disk. With a WAL attached this is
    /// a *group flush*: every needed before-image is appended first,
    /// the log is synced once, and only then do the page writes start.
    pub fn flush_all(&self) -> Result<()> {
        self.lock().flush_all()
    }

    /// Append before-images for every dirty frame — without writing the
    /// frames back and without syncing the log. This is the transaction
    /// layer's commit barrier: the caller batches the sync through
    /// [`crate::wal::GroupCommit`], and the pages themselves stay in
    /// the pool, reaching disk later through the WAL-safe eviction and
    /// checkpoint paths (which always sync before a page write).
    /// Returns the log's append sequence number after the appends, or
    /// `None` when no WAL is attached.
    pub fn log_dirty(&self) -> Result<Option<u64>> {
        let mut s = self.lock();
        if s.wal.is_none() {
            return Ok(None);
        }
        let dirty: Vec<PageId> = s.frames.iter().filter(|f| f.dirty).map(|f| f.pid).collect();
        for pid in dirty {
            s.log_before_image(pid)?;
        }
        let wal = s.wal.as_ref().expect("checked above");
        let seq = wal.lock().expect("wal mutex poisoned").appended_seq();
        Ok(Some(seq))
    }

    /// Drop every cached frame (flushing dirty ones) — used by benches to
    /// measure cold-cache behaviour deterministically.
    pub fn clear_cache(&self) -> Result<()> {
        let mut s = self.lock();
        s.flush_all()?;
        s.frames.clear();
        s.map.clear();
        s.hand = 0;
        Ok(())
    }
}

/// Stamp the CRC-32 of the usable page contents into the raw page's
/// checksum header. Called on every write-back path so on-disk pages
/// always carry a checksum of their payload.
fn stamp_checksum(raw: &mut [u8]) {
    let crc = crc32(&raw[CHECKSUM_LEN..]);
    raw[..CHECKSUM_LEN].copy_from_slice(&crc.to_le_bytes());
}

impl PoolState {
    /// Verify the checksum of a raw page just read from disk. A stored
    /// value of zero marks a never-written page (fresh allocations are
    /// zeroed by the disk layer) and is skipped — the CRC of real page
    /// content is zero only with probability 2^-32, in which case that
    /// one page merely loses detection, never correctness.
    fn verify_checksum(&self, pid: PageId, raw: &[u8]) -> Result<()> {
        let stored = u32::from_le_bytes(raw[..CHECKSUM_LEN].try_into().expect("4-byte header"));
        if stored == 0 {
            return Ok(());
        }
        self.stats.inc_checksum_verification();
        let found = crc32(&raw[CHECKSUM_LEN..]);
        if found != stored {
            self.stats.inc_corrupt_page_detected();
            return Err(StorageError::CorruptPage {
                seg: self.seg_name.clone(),
                page: pid,
                expected: stored,
                found,
            });
        }
        Ok(())
    }

    fn flush_all(&mut self) -> Result<()> {
        if self.wal.is_some() {
            let dirty: Vec<PageId> = self
                .frames
                .iter()
                .filter(|f| f.dirty)
                .map(|f| f.pid)
                .collect();
            for pid in dirty {
                self.log_before_image(pid)?;
            }
            // Write-ahead: the log hits stable storage before any page.
            self.wal_sync()?;
        }
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                stamp_checksum(&mut self.frames[i].data);
                let _t = self.stats.time_page_write();
                self.disk
                    .write_page(self.frames[i].pid, &self.frames[i].data)?;
                self.frames[i].dirty = false;
                self.stats.inc_page_write();
            }
        }
        Ok(())
    }

    /// Log `pid`'s on-disk content as a before-image, once per epoch.
    /// The on-disk image still equals the last checkpoint's because all
    /// writes flow through this pool's (logging) write-back paths.
    fn log_before_image(&mut self, pid: PageId) -> Result<()> {
        if self.logged.contains(&pid) || self.fresh.contains(&pid) {
            return Ok(());
        }
        let mut before = vec![0u8; self.disk.page_size()];
        {
            let _t = self.stats.time_page_read();
            self.disk.read_page(pid, &mut before)?;
        }
        if let Some(wal) = &self.wal {
            wal.lock()
                .expect("wal mutex poisoned")
                .append_before_image(&self.seg_name, pid, &before)?;
        }
        self.logged.insert(pid);
        Ok(())
    }

    fn wal_sync(&mut self) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.lock().expect("wal mutex poisoned").sync()?;
        }
        Ok(())
    }

    fn fetch(&mut self, pid: PageId) -> Result<usize> {
        if let Some(&idx) = self.map.get(&pid) {
            self.stats.inc_buf_hit();
            return Ok(idx);
        }
        self.stats.inc_buf_miss();
        let idx = self.free_frame()?;
        {
            let _t = self.stats.time_page_read();
            self.disk.read_page(pid, &mut self.frames[idx].data)?;
        }
        if let Err(e) = self.verify_checksum(pid, &self.frames[idx].data) {
            // Do not cache the corrupt frame: every read keeps hitting
            // the verification (and keeps erroring) until repaired.
            self.frames[idx].pid = PageId(u32::MAX);
            self.frames[idx].referenced = false;
            return Err(e);
        }
        self.frames[idx].pid = pid;
        self.frames[idx].dirty = false;
        self.frames[idx].referenced = true;
        self.map.insert(pid, idx);
        Ok(idx)
    }

    /// Obtain a frame index to (re)use, evicting via the clock sweep if
    /// the pool is full. The returned frame is unmapped.
    fn free_frame(&mut self) -> Result<usize> {
        if self.frames.len() < self.capacity {
            let ps = self.disk.page_size();
            self.frames.push(Frame {
                pid: PageId(u32::MAX),
                data: vec![0u8; ps].into_boxed_slice(),
                dirty: false,
                referenced: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Clock sweep: give referenced frames a second chance; after at
        // most two revolutions a victim is found.
        let idx = loop {
            let i = self.hand % self.frames.len();
            self.hand = (i + 1) % self.frames.len();
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
            } else {
                break i;
            }
        };
        if self.frames[idx].dirty {
            let pid = self.frames[idx].pid;
            if self.wal.is_some() {
                // Write-ahead: before-image on stable storage first.
                self.log_before_image(pid)?;
                self.wal_sync()?;
            }
            stamp_checksum(&mut self.frames[idx].data);
            {
                let _t = self.stats.time_page_write();
                self.disk.write_page(pid, &self.frames[idx].data)?;
            }
            self.frames[idx].dirty = false;
            self.stats.inc_page_write();
        }
        let old = self.frames[idx].pid;
        self.map.remove(&old);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new(256)), frames, Stats::new())
    }

    #[test]
    fn read_your_writes() {
        let bp = pool(4);
        let p = bp.allocate_page().unwrap();
        bp.with_page_mut(p, |b| b[10] = 0x7F).unwrap();
        let v = bp.with_page(p, |b| b[10]).unwrap();
        assert_eq!(v, 0x7F);
    }

    #[test]
    fn hit_miss_accounting() {
        let bp = pool(2);
        let p0 = bp.allocate_page().unwrap();
        let p1 = bp.allocate_page().unwrap();
        let p2 = bp.allocate_page().unwrap(); // evicts p0 (LRU)
        bp.with_page(p2, |_| ()).unwrap(); // hit
        bp.with_page(p1, |_| ()).unwrap(); // hit
        let miss_before = bp.stats().buf_misses();
        bp.with_page(p0, |_| ()).unwrap(); // miss — was evicted
        assert_eq!(bp.stats().buf_misses(), miss_before + 1);
        assert!(bp.stats().buf_hits() >= 2);
    }

    #[test]
    fn eviction_preserves_dirty_data() {
        let bp = pool(1); // pathological pool: every switch evicts
        let p0 = bp.allocate_page().unwrap();
        bp.with_page_mut(p0, |b| b[0] = 1).unwrap();
        let p1 = bp.allocate_page().unwrap(); // evicts dirty p0
        bp.with_page_mut(p1, |b| b[0] = 2).unwrap();
        assert_eq!(bp.with_page(p0, |b| b[0]).unwrap(), 1);
        assert_eq!(bp.with_page(p1, |b| b[0]).unwrap(), 2);
        assert!(bp.stats().page_writes() >= 1);
    }

    #[test]
    fn flush_then_cold_read() {
        let bp = pool(4);
        let p = bp.allocate_page().unwrap();
        bp.with_page_mut(p, |b| b[3] = 9).unwrap();
        bp.clear_cache().unwrap();
        let before = bp.stats().buf_misses();
        assert_eq!(bp.with_page(p, |b| b[3]).unwrap(), 9);
        assert_eq!(bp.stats().buf_misses(), before + 1, "cold read is a miss");
    }

    #[test]
    fn clock_sweep_gives_second_chances() {
        // With 2 frames, the clock must evict SOME page on overflow and
        // keep the pool usable; referenced frames survive one sweep.
        let bp = pool(2);
        let p0 = bp.allocate_page().unwrap();
        let p1 = bp.allocate_page().unwrap();
        bp.with_page(p0, |_| ()).unwrap();
        bp.with_page(p1, |_| ()).unwrap();
        let p2 = bp.allocate_page().unwrap(); // one of p0/p1 evicted
                                              // All three pages remain readable (the evicted one via re-fetch).
        for p in [p0, p1, p2] {
            bp.with_page(p, |_| ()).unwrap();
        }
        // Exactly one of p0/p1 was a miss on re-read.
        assert!(bp.stats().buf_misses() >= 1);
        // Hammer one page: it must stay resident across evictions of
        // others (second-chance property).
        for _ in 0..10 {
            bp.with_page(p2, |_| ()).unwrap();
            let _ = bp.allocate_page().unwrap();
            bp.with_page(p2, |_| ()).unwrap();
        }
    }

    #[test]
    fn clear_cache_resets_the_clock_hand() {
        // Regression: a stale sweep hand past the (re)filled frame table
        // must not index out of bounds.
        let bp = pool(2);
        for _ in 0..5 {
            let _ = bp.allocate_page().unwrap(); // advance the hand
        }
        bp.clear_cache().unwrap();
        for _ in 0..5 {
            let _ = bp.allocate_page().unwrap(); // refill + evict again
        }
    }

    #[test]
    fn concurrent_page_traffic_is_safe() {
        use std::sync::Arc;
        let bp = Arc::new(pool(8));
        let mut pids = Vec::new();
        for _ in 0..16 {
            pids.push(bp.allocate_page().unwrap());
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let bp = bp.clone();
                let pids = pids.clone();
                std::thread::spawn(move || {
                    for (i, &p) in pids.iter().enumerate() {
                        if i % 4 == t {
                            bp.with_page_mut(p, |b| b[0] = t as u8 + 1).unwrap();
                        } else {
                            bp.with_page(p, |_| ()).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, &p) in pids.iter().enumerate() {
            let owner = (i % 4) as u8 + 1;
            assert_eq!(bp.with_page(p, |b| b[0]).unwrap(), owner);
        }
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = pool(0);
    }

    #[test]
    fn usable_page_size_excludes_checksum() {
        let bp = pool(2);
        assert_eq!(bp.page_size(), 256 - CHECKSUM_LEN);
        let p = bp.allocate_page().unwrap();
        assert_eq!(bp.with_page(p, |b| b.len()).unwrap(), 256 - CHECKSUM_LEN);
    }

    #[test]
    fn cold_reads_verify_checksums() {
        let bp = pool(4);
        let p = bp.allocate_page().unwrap();
        bp.with_page_mut(p, |b| b[0] = 0xAB).unwrap();
        bp.clear_cache().unwrap(); // flush stamps the CRC
        let before = bp.stats().snapshot().checksum_verifications;
        assert_eq!(bp.with_page(p, |b| b[0]).unwrap(), 0xAB);
        assert_eq!(
            bp.stats().snapshot().checksum_verifications,
            before + 1,
            "cold read of a written page must verify"
        );
        assert_eq!(bp.stats().snapshot().corrupt_pages_detected, 0);
    }

    #[test]
    fn bit_flip_on_disk_is_detected_not_cached() {
        use crate::disk::FileDisk;
        let path = std::env::temp_dir().join(format!(
            "aim2_buffer_crc_{}_{:?}.seg",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let disk = FileDisk::open(&path, 256).unwrap();
            let bp = BufferPool::new(Box::new(disk), 2, Stats::new());
            let p = bp.allocate_page().unwrap();
            bp.with_page_mut(p, |b| b.iter_mut().for_each(|x| *x = 7))
                .unwrap();
            bp.flush_all().unwrap();
        }
        // Flip one payload bit behind the engine's back.
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let mut byte = [0u8; 1];
            f.seek(SeekFrom::Start(100)).unwrap();
            f.read_exact(&mut byte).unwrap();
            byte[0] ^= 0x10;
            f.seek(SeekFrom::Start(100)).unwrap();
            f.write_all(&byte).unwrap();
        }
        let disk = FileDisk::open(&path, 256).unwrap();
        let bp = BufferPool::new(Box::new(disk), 2, Stats::new());
        for _ in 0..2 {
            // Erroring twice proves the corrupt frame was not cached.
            match bp.with_page(PageId(0), |_| ()) {
                Err(StorageError::CorruptPage { page, .. }) => assert_eq!(page, PageId(0)),
                other => panic!("expected CorruptPage, got {other:?}"),
            }
        }
        assert_eq!(bp.stats().snapshot().corrupt_pages_detected, 2);
        let _ = std::fs::remove_file(&path);
    }
}
