//! Mini Directories: the structural half of a complex object.
//!
//! AIM-II separates *structural information* from *data* (§4.1): each
//! complex object has a **Mini Directory (MD)** — a tree of MD subtuples
//! linked by pointers — holding the structure, while the values live in
//! *data subtuples*. An MD subtuple's entries are `D` pointers (MD →
//! data subtuple) and `C` pointers (MD → MD subtuple); the paper's root
//! entry "DCC" for department 314 is literally one [`MdGroup`] with a
//! data pointer followed by two child pointers.
//!
//! Three layout alternatives are implemented, exactly Figures 6a–6c:
//!
//! * [`LayoutKind::Ss1`] — one MD subtuple per subtable **and** per
//!   complex subobject (symmetric, most nodes);
//! * [`LayoutKind::Ss2`] — MD subtuples only for complex subobjects
//!   (subtable membership lists folded upward; fewest nodes);
//! * [`LayoutKind::Ss3`] — MD subtuples only for subtables (subobject
//!   entries folded upward; **AIM-II's choice**).
//!
//! For every object the invariant SS1 > SS3 > SS2 on MD-subtuple counts
//! holds (§4.1); `reproduce` prints the counts for department 314 and a
//! property test in the object manager checks the ordering on random
//! objects.
//!
//! Ordered subtables (lists) need no extra machinery: "the integration of
//! ordered subtables can be done easily just by using the sequence of
//! entries in the MD subtuples" — entry order *is* list order.

use crate::error::StorageError;
use crate::pagelist::PageList;
use crate::tid::MiniTid;
use std::fmt;

/// Which storage structure (Fig 6a/6b/6c) a table's objects use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// SS1 — MD subtuples for subtables and complex subobjects (Fig 6a).
    Ss1,
    /// SS2 — MD subtuples only for complex subobjects (Fig 6b).
    Ss2,
    /// SS3 — MD subtuples only for subtables (Fig 6c); AIM-II default.
    Ss3,
}

impl LayoutKind {
    /// All three alternatives, for comparison benches.
    pub const ALL: [LayoutKind; 3] = [LayoutKind::Ss1, LayoutKind::Ss2, LayoutKind::Ss3];

    /// Paper name ("SS1" ...).
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::Ss1 => "SS1",
            LayoutKind::Ss2 => "SS2",
            LayoutKind::Ss3 => "SS3",
        }
    }

    fn code(self) -> u8 {
        match self {
            LayoutKind::Ss1 => 1,
            LayoutKind::Ss2 => 2,
            LayoutKind::Ss3 => 3,
        }
    }

    fn from_code(c: u8) -> Option<LayoutKind> {
        match c {
            1 => Some(LayoutKind::Ss1),
            2 => Some(LayoutKind::Ss2),
            3 => Some(LayoutKind::Ss3),
            _ => None,
        }
    }
}

impl fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What role an MD subtuple plays in the MD tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdNodeKind {
    /// The root MD subtuple (one per complex object; also carries the
    /// page list).
    Root,
    /// An MD subtuple representing a subtable (SS1, SS3).
    Subtable,
    /// An MD subtuple representing a complex subobject (SS1, SS2).
    Subobject,
}

impl MdNodeKind {
    fn code(self) -> u8 {
        match self {
            MdNodeKind::Root => 0,
            MdNodeKind::Subtable => 1,
            MdNodeKind::Subobject => 2,
        }
    }

    fn from_code(c: u8) -> Option<MdNodeKind> {
        match c {
            0 => Some(MdNodeKind::Root),
            1 => Some(MdNodeKind::Subtable),
            2 => Some(MdNodeKind::Subobject),
            _ => None,
        }
    }
}

/// Entry-kind code for a `D` (data) pointer.
pub const ENTRY_DATA: u8 = 0;

/// One pointer entry in an MD subtuple: a `D` pointer (`kind ==
/// ENTRY_DATA`) or a `C` pointer whose kind byte encodes which
/// table-valued attribute it belongs to (`kind == 1 + attr_slot`, where
/// `attr_slot` is the position among the level's table-valued
/// attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdEntry {
    pub kind: u8,
    pub tid: MiniTid,
}

impl MdEntry {
    /// A `D` pointer to a data subtuple.
    pub fn data(tid: MiniTid) -> MdEntry {
        MdEntry {
            kind: ENTRY_DATA,
            tid,
        }
    }

    /// A `C` pointer for the `attr_slot`-th table-valued attribute.
    pub fn child(attr_slot: u8, tid: MiniTid) -> MdEntry {
        MdEntry {
            kind: 1 + attr_slot,
            tid,
        }
    }

    /// True for `D` pointers.
    pub fn is_data(&self) -> bool {
        self.kind == ENTRY_DATA
    }

    /// The attribute slot of a `C` pointer; `None` for `D` pointers.
    pub fn child_slot(&self) -> Option<u8> {
        (self.kind > 0).then(|| self.kind - 1)
    }
}

/// A group of entries within an MD subtuple.
///
/// * object-shaped nodes (root / subobject) have **one** group — the
///   paper's "DCC"-style entry: own data pointer then child pointers;
/// * SS2 object nodes have one *additional* group per table-valued
///   attribute carrying the folded-in subtable membership list (`tag` =
///   attribute slot);
/// * SS3 subtable nodes have one group **per element**: the element's
///   data pointer plus child pointers to its own subtables;
/// * SS1 subtable nodes have one group listing all elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdGroup {
    /// Group meaning depends on the node shape (see above); for SS2
    /// membership groups this is the attribute slot.
    pub tag: u16,
    pub entries: Vec<MdEntry>,
}

impl MdGroup {
    pub fn new(tag: u16) -> MdGroup {
        MdGroup {
            tag,
            entries: Vec::new(),
        }
    }

    /// The group's `D` entry, if present (element groups, object groups).
    pub fn data_entry(&self) -> Option<MiniTid> {
        self.entries.iter().find(|e| e.is_data()).map(|e| e.tid)
    }

    /// The `C` entry for `attr_slot`, if present.
    pub fn child_for(&self, attr_slot: u8) -> Option<MiniTid> {
        self.entries
            .iter()
            .find(|e| e.child_slot() == Some(attr_slot))
            .map(|e| e.tid)
    }
}

/// One MD subtuple, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdNode {
    pub kind: MdNodeKind,
    pub groups: Vec<MdGroup>,
}

impl MdNode {
    pub fn new(kind: MdNodeKind) -> MdNode {
        MdNode {
            kind,
            groups: Vec::new(),
        }
    }

    /// Serialized byte size (to plan page placement).
    pub fn encoded_len(&self) -> usize {
        let mut n = 1 + 2; // kind + group count
        for g in &self.groups {
            n += 2 + 2 + g.entries.len() * (1 + MiniTid::ENCODED_LEN);
        }
        n
    }

    /// Serialize.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.kind.code());
        out.extend_from_slice(&(self.groups.len() as u16).to_le_bytes());
        for g in &self.groups {
            out.extend_from_slice(&g.tag.to_le_bytes());
            out.extend_from_slice(&(g.entries.len() as u16).to_le_bytes());
            for e in &g.entries {
                out.push(e.kind);
                e.tid.encode(out);
            }
        }
    }

    /// Deserialize from `buf[*pos..]`, advancing `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<MdNode, StorageError> {
        let err = || StorageError::Corrupt("truncated MD subtuple".into());
        let kind = MdNodeKind::from_code(*buf.get(*pos).ok_or_else(err)?)
            .ok_or_else(|| StorageError::Corrupt("bad MD node kind".into()))?;
        *pos += 1;
        let ngroups =
            u16::from_le_bytes(buf.get(*pos..*pos + 2).ok_or_else(err)?.try_into().unwrap());
        *pos += 2;
        let mut groups = Vec::with_capacity(ngroups as usize);
        for _ in 0..ngroups {
            let tag =
                u16::from_le_bytes(buf.get(*pos..*pos + 2).ok_or_else(err)?.try_into().unwrap());
            *pos += 2;
            let nent =
                u16::from_le_bytes(buf.get(*pos..*pos + 2).ok_or_else(err)?.try_into().unwrap());
            *pos += 2;
            let mut entries = Vec::with_capacity(nent as usize);
            for _ in 0..nent {
                let kind = *buf.get(*pos).ok_or_else(err)?;
                *pos += 1;
                let tid = MiniTid::decode(buf, pos).ok_or_else(err)?;
                entries.push(MdEntry { kind, tid });
            }
            groups.push(MdGroup { tag, entries });
        }
        Ok(MdNode { kind, groups })
    }
}

/// The payload of a **root** MD subtuple: layout tag, the object's page
/// list (its local address space), and the root node's pointer groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootMd {
    pub layout: LayoutKind,
    pub page_list: PageList,
    pub node: MdNode,
}

impl RootMd {
    /// Serialize the root MD subtuple payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.node.encoded_len());
        out.push(self.layout.code());
        self.page_list.encode(&mut out);
        self.node.encode(&mut out);
        out
    }

    /// Deserialize a root MD subtuple payload.
    pub fn decode(buf: &[u8]) -> Result<RootMd, StorageError> {
        let mut pos = 0;
        let layout = LayoutKind::from_code(
            *buf.get(pos)
                .ok_or_else(|| StorageError::Corrupt("empty root MD".into()))?,
        )
        .ok_or_else(|| StorageError::Corrupt("bad layout code".into()))?;
        pos += 1;
        let page_list = PageList::decode(buf, &mut pos)?;
        let node = MdNode::decode(buf, &mut pos)?;
        if node.kind != MdNodeKind::Root {
            return Err(StorageError::Corrupt("root MD node has wrong kind".into()));
        }
        Ok(RootMd {
            layout,
            page_list,
            node,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid::{PageId, SlotNo};

    fn mt(l: u16, s: u16) -> MiniTid {
        MiniTid::new(l, SlotNo(s))
    }

    #[test]
    fn entry_kinds() {
        let d = MdEntry::data(mt(0, 1));
        assert!(d.is_data());
        assert_eq!(d.child_slot(), None);
        let c = MdEntry::child(2, mt(1, 0));
        assert!(!c.is_data());
        assert_eq!(c.child_slot(), Some(2));
    }

    #[test]
    fn group_lookups() {
        let mut g = MdGroup::new(0);
        g.entries.push(MdEntry::data(mt(0, 0)));
        g.entries.push(MdEntry::child(0, mt(0, 1)));
        g.entries.push(MdEntry::child(1, mt(0, 2)));
        assert_eq!(g.data_entry(), Some(mt(0, 0)));
        assert_eq!(g.child_for(0), Some(mt(0, 1)));
        assert_eq!(g.child_for(1), Some(mt(0, 2)));
        assert_eq!(g.child_for(2), None);
    }

    #[test]
    fn node_roundtrip() {
        // The paper's root "DCC" entry for department 314.
        let mut node = MdNode::new(MdNodeKind::Root);
        let mut g = MdGroup::new(0);
        g.entries.push(MdEntry::data(mt(0, 0))); // D → '314 56194 320000'
        g.entries.push(MdEntry::child(0, mt(0, 1))); // C → PROJECTS
        g.entries.push(MdEntry::child(1, mt(1, 0))); // C → EQUIP
        node.groups.push(g);
        let mut buf = Vec::new();
        node.encode(&mut buf);
        assert_eq!(buf.len(), node.encoded_len());
        let mut pos = 0;
        let back = MdNode::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, node);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn multi_group_node_roundtrip() {
        // An SS3 subtable node: one group per element.
        let mut node = MdNode::new(MdNodeKind::Subtable);
        for i in 0..5u16 {
            let mut g = MdGroup::new(0);
            g.entries.push(MdEntry::data(mt(i, 0)));
            if i % 2 == 0 {
                g.entries.push(MdEntry::child(0, mt(i, 1)));
            }
            node.groups.push(g);
        }
        let mut buf = Vec::new();
        node.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(MdNode::decode(&buf, &mut pos).unwrap(), node);
    }

    #[test]
    fn root_md_roundtrip() {
        let mut pl = PageList::new();
        pl.add(PageId(12));
        pl.add(PageId(99));
        pl.remove_at(0);
        let mut node = MdNode::new(MdNodeKind::Root);
        node.groups.push(MdGroup::new(0));
        let root = RootMd {
            layout: LayoutKind::Ss3,
            page_list: pl,
            node,
        };
        let bytes = root.encode();
        let back = RootMd::decode(&bytes).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn root_md_rejects_non_root_node() {
        let mut pl = PageList::new();
        pl.add(PageId(1));
        let root = RootMd {
            layout: LayoutKind::Ss1,
            page_list: pl,
            node: MdNode::new(MdNodeKind::Subtable),
        };
        let bytes = root.encode();
        assert!(RootMd::decode(&bytes).is_err());
    }

    #[test]
    fn decode_garbage_errors() {
        assert!(RootMd::decode(&[]).is_err());
        assert!(RootMd::decode(&[9, 9, 9]).is_err());
        let mut pos = 0;
        assert!(MdNode::decode(&[7], &mut pos).is_err());
    }

    #[test]
    fn layout_names() {
        assert_eq!(LayoutKind::Ss1.name(), "SS1");
        assert_eq!(LayoutKind::Ss3.to_string(), "SS3");
        for l in LayoutKind::ALL {
            assert_eq!(LayoutKind::from_code(l.code()), Some(l));
        }
    }
}
