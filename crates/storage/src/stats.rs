//! Access counters.
//!
//! The paper's Section 4 arguments are all *access-count* arguments:
//! clustering keeps a complex object on "a relatively small page set",
//! navigation on the Mini Directory avoids touching data subtuples,
//! wrong index address schemes cause objects to be "(unnecessarily)
//! accessed more than once". [`Stats`] makes every one of those effects
//! measurable; benches and the `reproduce` binary report them.
//!
//! The block is shared across threads (sessions, the lock manager, the
//! group committer all increment it concurrently), so the counters are
//! relaxed atomics behind an `Arc` — `Stats` is `Send + Sync` and stays
//! cheaply clonable.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, cheaply clonable counter block (`Send + Sync`; every counter
/// is a relaxed atomic — they are statistics, not synchronization).
#[derive(Clone, Default)]
pub struct Stats {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    /// Buffer pool hits (page found in memory).
    buf_hits: AtomicU64,
    /// Buffer pool misses (page read from disk).
    buf_misses: AtomicU64,
    /// Pages written back to disk (evictions + flushes).
    page_writes: AtomicU64,
    /// Records (subtuples) read.
    subtuple_reads: AtomicU64,
    /// Records (subtuples) written (insert + update).
    subtuple_writes: AtomicU64,
    /// Pointer fields rewritten (Lorie baseline move/reorg cost).
    pointer_rewrites: AtomicU64,
    /// Whole complex objects visited (for the §4.2 duplicate-visit
    /// argument).
    object_visits: AtomicU64,
    /// Before-image records appended to the write-ahead log.
    wal_appends: AtomicU64,
    /// WAL records replayed (pages rolled back) during recovery.
    wal_replays: AtomicU64,
    /// Torn (partially written) structures detected by checksum during
    /// recovery.
    torn_pages_detected: AtomicU64,
    /// Lock requests that had to block behind a conflicting holder.
    lock_waits: AtomicU64,
    /// Transactions aborted as deadlock victims.
    deadlocks_aborted: AtomicU64,
    /// Physical WAL syncs issued by the group committer (each batch
    /// makes every commit appended before it durable at once).
    group_commit_batches: AtomicU64,
    /// Page checksums verified on cold buffer-pool reads.
    checksum_verifications: AtomicU64,
    /// Pages whose stamped CRC-32 did not match their contents.
    corrupt_pages_detected: AtomicU64,
    /// Objects quarantined by the integrity walker or a failed read.
    objects_quarantined: AtomicU64,
    /// Objects carried into a fresh database by `salvage()`.
    salvaged_objects: AtomicU64,
    /// Complex objects (or flat tuples) fully or partially decoded into
    /// model values by a cursor pull.
    objects_decoded: AtomicU64,
    /// Atoms decoded from data subtuples (the per-field cost partial
    /// retrieval avoids).
    atoms_decoded: AtomicU64,
    /// Scans closed before exhaustion (EXISTS witnesses, quantifier
    /// short-circuits): pages the pipeline never had to pull.
    cursor_early_exits: AtomicU64,
}

macro_rules! counter {
    ($inc:ident, $get:ident, $field:ident) => {
        #[doc = concat!("Increment the `", stringify!($field), "` counter.")]
        pub fn $inc(&self) {
            self.inner.$field.fetch_add(1, Ordering::Relaxed);
        }
        #[doc = concat!("Current value of the `", stringify!($field), "` counter.")]
        pub fn $get(&self) -> u64 {
            self.inner.$field.load(Ordering::Relaxed)
        }
    };
}

impl Stats {
    /// A fresh, zeroed counter block.
    pub fn new() -> Stats {
        Stats::default()
    }

    counter!(inc_buf_hit, buf_hits, buf_hits);
    counter!(inc_buf_miss, buf_misses, buf_misses);
    counter!(inc_page_write, page_writes, page_writes);
    counter!(inc_subtuple_read, subtuple_reads, subtuple_reads);
    counter!(inc_subtuple_write, subtuple_writes, subtuple_writes);
    counter!(inc_pointer_rewrite, pointer_rewrites, pointer_rewrites);
    counter!(inc_object_visit, object_visits, object_visits);
    counter!(inc_wal_append, wal_appends, wal_appends);
    counter!(inc_wal_replay, wal_replays, wal_replays);
    counter!(
        inc_torn_page_detected,
        torn_pages_detected,
        torn_pages_detected
    );
    counter!(inc_lock_wait, lock_waits, lock_waits);
    counter!(inc_deadlock_aborted, deadlocks_aborted, deadlocks_aborted);
    counter!(
        inc_group_commit_batch,
        group_commit_batches,
        group_commit_batches
    );
    counter!(
        inc_checksum_verification,
        checksum_verifications,
        checksum_verifications
    );
    counter!(
        inc_corrupt_page_detected,
        corrupt_pages_detected,
        corrupt_pages_detected
    );
    counter!(
        inc_object_quarantined,
        objects_quarantined,
        objects_quarantined
    );
    counter!(inc_salvaged_object, salvaged_objects, salvaged_objects);
    counter!(inc_object_decoded, objects_decoded, objects_decoded);
    counter!(inc_atom_decoded, atoms_decoded, atoms_decoded);
    counter!(
        inc_cursor_early_exit,
        cursor_early_exits,
        cursor_early_exits
    );

    /// Bulk-add to `atoms_decoded` (one data subtuple decodes many
    /// atoms at once).
    pub fn add_atoms_decoded(&self, n: u64) {
        self.inner.atoms_decoded.fetch_add(n, Ordering::Relaxed);
    }

    /// Total page accesses (hits + misses).
    pub fn page_accesses(&self) -> u64 {
        self.buf_hits() + self.buf_misses()
    }

    /// Reset all counters to zero (shared across clones).
    pub fn reset(&self) {
        let i = &self.inner;
        for c in [
            &i.buf_hits,
            &i.buf_misses,
            &i.page_writes,
            &i.subtuple_reads,
            &i.subtuple_writes,
            &i.pointer_rewrites,
            &i.object_visits,
            &i.wal_appends,
            &i.wal_replays,
            &i.torn_pages_detected,
            &i.lock_waits,
            &i.deadlocks_aborted,
            &i.group_commit_batches,
            &i.checksum_verifications,
            &i.corrupt_pages_detected,
            &i.objects_quarantined,
            &i.salvaged_objects,
            &i.objects_decoded,
            &i.atoms_decoded,
            &i.cursor_early_exits,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot of all counters, for delta computations in benches.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            buf_hits: self.buf_hits(),
            buf_misses: self.buf_misses(),
            page_writes: self.page_writes(),
            subtuple_reads: self.subtuple_reads(),
            subtuple_writes: self.subtuple_writes(),
            pointer_rewrites: self.pointer_rewrites(),
            object_visits: self.object_visits(),
            wal_appends: self.wal_appends(),
            wal_replays: self.wal_replays(),
            torn_pages_detected: self.torn_pages_detected(),
            lock_waits: self.lock_waits(),
            deadlocks_aborted: self.deadlocks_aborted(),
            group_commit_batches: self.group_commit_batches(),
            checksum_verifications: self.checksum_verifications(),
            corrupt_pages_detected: self.corrupt_pages_detected(),
            objects_quarantined: self.objects_quarantined(),
            salvaged_objects: self.salvaged_objects(),
            objects_decoded: self.objects_decoded(),
            atoms_decoded: self.atoms_decoded(),
            cursor_early_exits: self.cursor_early_exits(),
        }
    }
}

/// Immutable copy of the counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub buf_hits: u64,
    pub buf_misses: u64,
    pub page_writes: u64,
    pub subtuple_reads: u64,
    pub subtuple_writes: u64,
    pub pointer_rewrites: u64,
    pub object_visits: u64,
    pub wal_appends: u64,
    pub wal_replays: u64,
    pub torn_pages_detected: u64,
    pub lock_waits: u64,
    pub deadlocks_aborted: u64,
    pub group_commit_batches: u64,
    pub checksum_verifications: u64,
    pub corrupt_pages_detected: u64,
    pub objects_quarantined: u64,
    pub salvaged_objects: u64,
    pub objects_decoded: u64,
    pub atoms_decoded: u64,
    pub cursor_early_exits: u64,
}

impl StatsSnapshot {
    /// Per-counter difference `later - self`.
    pub fn delta(&self, later: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            buf_hits: later.buf_hits - self.buf_hits,
            buf_misses: later.buf_misses - self.buf_misses,
            page_writes: later.page_writes - self.page_writes,
            subtuple_reads: later.subtuple_reads - self.subtuple_reads,
            subtuple_writes: later.subtuple_writes - self.subtuple_writes,
            pointer_rewrites: later.pointer_rewrites - self.pointer_rewrites,
            object_visits: later.object_visits - self.object_visits,
            wal_appends: later.wal_appends - self.wal_appends,
            wal_replays: later.wal_replays - self.wal_replays,
            torn_pages_detected: later.torn_pages_detected - self.torn_pages_detected,
            lock_waits: later.lock_waits - self.lock_waits,
            deadlocks_aborted: later.deadlocks_aborted - self.deadlocks_aborted,
            group_commit_batches: later.group_commit_batches - self.group_commit_batches,
            checksum_verifications: later.checksum_verifications - self.checksum_verifications,
            corrupt_pages_detected: later.corrupt_pages_detected - self.corrupt_pages_detected,
            objects_quarantined: later.objects_quarantined - self.objects_quarantined,
            salvaged_objects: later.salvaged_objects - self.salvaged_objects,
            objects_decoded: later.objects_decoded - self.objects_decoded,
            atoms_decoded: later.atoms_decoded - self.atoms_decoded,
            cursor_early_exits: later.cursor_early_exits - self.cursor_early_exits,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} pwrites={} sreads={} swrites={} ptr-rewrites={} obj-visits={} \
             wal-appends={} wal-replays={} torn-detected={} lock-waits={} deadlocks-aborted={} \
             group-commit-batches={} checksum-verifications={} corrupt-pages-detected={} \
             objects-quarantined={} salvaged-objects={} objects-decoded={} atoms-decoded={} \
             cursor-early-exits={}",
            self.buf_hits,
            self.buf_misses,
            self.page_writes,
            self.subtuple_reads,
            self.subtuple_writes,
            self.pointer_rewrites,
            self.object_visits,
            self.wal_appends,
            self.wal_replays,
            self.torn_pages_detected,
            self.lock_waits,
            self.deadlocks_aborted,
            self.group_commit_batches,
            self.checksum_verifications,
            self.corrupt_pages_detected,
            self.objects_quarantined,
            self.salvaged_objects,
            self.objects_decoded,
            self.atoms_decoded,
            self.cursor_early_exits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_across_clones() {
        let s = Stats::new();
        let s2 = s.clone();
        s.inc_buf_hit();
        s2.inc_buf_hit();
        s2.inc_buf_miss();
        assert_eq!(s.buf_hits(), 2);
        assert_eq!(s.buf_misses(), 1);
        assert_eq!(s.page_accesses(), 3);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::new();
        s.inc_subtuple_read();
        let before = s.snapshot();
        s.inc_subtuple_read();
        s.inc_subtuple_read();
        s.inc_object_visit();
        let after = s.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.subtuple_reads, 2);
        assert_eq!(d.object_visits, 1);
        assert_eq!(d.buf_hits, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::new();
        s.inc_pointer_rewrite();
        s.inc_page_write();
        s.inc_lock_wait();
        s.inc_deadlock_aborted();
        s.inc_group_commit_batch();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn counters_shared_across_threads() {
        let s = Stats::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.inc_lock_wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.lock_waits(), 4000);
    }
}
