//! Access counters.
//!
//! The paper's Section 4 arguments are all *access-count* arguments:
//! clustering keeps a complex object on "a relatively small page set",
//! navigation on the Mini Directory avoids touching data subtuples,
//! wrong index address schemes cause objects to be "(unnecessarily)
//! accessed more than once". [`Stats`] makes every one of those effects
//! measurable; benches and the `reproduce` binary report them.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Shared, cheaply clonable counter block (single-threaded engine —
/// `Cell` suffices, no atomics needed).
#[derive(Clone, Default)]
pub struct Stats {
    inner: Rc<Inner>,
}

#[derive(Default)]
struct Inner {
    /// Buffer pool hits (page found in memory).
    buf_hits: Cell<u64>,
    /// Buffer pool misses (page read from disk).
    buf_misses: Cell<u64>,
    /// Pages written back to disk (evictions + flushes).
    page_writes: Cell<u64>,
    /// Records (subtuples) read.
    subtuple_reads: Cell<u64>,
    /// Records (subtuples) written (insert + update).
    subtuple_writes: Cell<u64>,
    /// Pointer fields rewritten (Lorie baseline move/reorg cost).
    pointer_rewrites: Cell<u64>,
    /// Whole complex objects visited (for the §4.2 duplicate-visit
    /// argument).
    object_visits: Cell<u64>,
    /// Before-image records appended to the write-ahead log.
    wal_appends: Cell<u64>,
    /// WAL records replayed (pages rolled back) during recovery.
    wal_replays: Cell<u64>,
    /// Torn (partially written) structures detected by checksum during
    /// recovery.
    torn_pages_detected: Cell<u64>,
}

macro_rules! counter {
    ($inc:ident, $get:ident, $field:ident) => {
        #[doc = concat!("Increment the `", stringify!($field), "` counter.")]
        pub fn $inc(&self) {
            self.inner.$field.set(self.inner.$field.get() + 1);
        }
        #[doc = concat!("Current value of the `", stringify!($field), "` counter.")]
        pub fn $get(&self) -> u64 {
            self.inner.$field.get()
        }
    };
}

impl Stats {
    /// A fresh, zeroed counter block.
    pub fn new() -> Stats {
        Stats::default()
    }

    counter!(inc_buf_hit, buf_hits, buf_hits);
    counter!(inc_buf_miss, buf_misses, buf_misses);
    counter!(inc_page_write, page_writes, page_writes);
    counter!(inc_subtuple_read, subtuple_reads, subtuple_reads);
    counter!(inc_subtuple_write, subtuple_writes, subtuple_writes);
    counter!(inc_pointer_rewrite, pointer_rewrites, pointer_rewrites);
    counter!(inc_object_visit, object_visits, object_visits);
    counter!(inc_wal_append, wal_appends, wal_appends);
    counter!(inc_wal_replay, wal_replays, wal_replays);
    counter!(
        inc_torn_page_detected,
        torn_pages_detected,
        torn_pages_detected
    );

    /// Total page accesses (hits + misses).
    pub fn page_accesses(&self) -> u64 {
        self.buf_hits() + self.buf_misses()
    }

    /// Reset all counters to zero (shared across clones).
    pub fn reset(&self) {
        self.inner.buf_hits.set(0);
        self.inner.buf_misses.set(0);
        self.inner.page_writes.set(0);
        self.inner.subtuple_reads.set(0);
        self.inner.subtuple_writes.set(0);
        self.inner.pointer_rewrites.set(0);
        self.inner.object_visits.set(0);
        self.inner.wal_appends.set(0);
        self.inner.wal_replays.set(0);
        self.inner.torn_pages_detected.set(0);
    }

    /// Snapshot of all counters, for delta computations in benches.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            buf_hits: self.buf_hits(),
            buf_misses: self.buf_misses(),
            page_writes: self.page_writes(),
            subtuple_reads: self.subtuple_reads(),
            subtuple_writes: self.subtuple_writes(),
            pointer_rewrites: self.pointer_rewrites(),
            object_visits: self.object_visits(),
            wal_appends: self.wal_appends(),
            wal_replays: self.wal_replays(),
            torn_pages_detected: self.torn_pages_detected(),
        }
    }
}

/// Immutable copy of the counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub buf_hits: u64,
    pub buf_misses: u64,
    pub page_writes: u64,
    pub subtuple_reads: u64,
    pub subtuple_writes: u64,
    pub pointer_rewrites: u64,
    pub object_visits: u64,
    pub wal_appends: u64,
    pub wal_replays: u64,
    pub torn_pages_detected: u64,
}

impl StatsSnapshot {
    /// Per-counter difference `later - self`.
    pub fn delta(&self, later: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            buf_hits: later.buf_hits - self.buf_hits,
            buf_misses: later.buf_misses - self.buf_misses,
            page_writes: later.page_writes - self.page_writes,
            subtuple_reads: later.subtuple_reads - self.subtuple_reads,
            subtuple_writes: later.subtuple_writes - self.subtuple_writes,
            pointer_rewrites: later.pointer_rewrites - self.pointer_rewrites,
            object_visits: later.object_visits - self.object_visits,
            wal_appends: later.wal_appends - self.wal_appends,
            wal_replays: later.wal_replays - self.wal_replays,
            torn_pages_detected: later.torn_pages_detected - self.torn_pages_detected,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} pwrites={} sreads={} swrites={} ptr-rewrites={} obj-visits={} \
             wal-appends={} wal-replays={} torn-detected={}",
            self.buf_hits,
            self.buf_misses,
            self.page_writes,
            self.subtuple_reads,
            self.subtuple_writes,
            self.pointer_rewrites,
            self.object_visits,
            self.wal_appends,
            self.wal_replays,
            self.torn_pages_detected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_across_clones() {
        let s = Stats::new();
        let s2 = s.clone();
        s.inc_buf_hit();
        s2.inc_buf_hit();
        s2.inc_buf_miss();
        assert_eq!(s.buf_hits(), 2);
        assert_eq!(s.buf_misses(), 1);
        assert_eq!(s.page_accesses(), 3);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::new();
        s.inc_subtuple_read();
        let before = s.snapshot();
        s.inc_subtuple_read();
        s.inc_subtuple_read();
        s.inc_object_visit();
        let after = s.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.subtuple_reads, 2);
        assert_eq!(d.object_visits, 1);
        assert_eq!(d.buf_hits, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::new();
        s.inc_pointer_rewrite();
        s.inc_page_write();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
