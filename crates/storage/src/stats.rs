//! Access counters and latency instruments.
//!
//! The paper's Section 4 arguments are all *access-count* arguments:
//! clustering keeps a complex object on "a relatively small page set",
//! navigation on the Mini Directory avoids touching data subtuples,
//! wrong index address schemes cause objects to be "(unnecessarily)
//! accessed more than once". [`Stats`] makes every one of those effects
//! measurable; benches and the `reproduce` binary report them.
//!
//! Alongside the counters, the block owns an [`obs::Metrics`] registry
//! with pre-resolved histogram handles for the engine's latency sites
//! (page I/O, WAL append/fsync, lock waits, commits, cursor lifetimes,
//! checkpoint/recovery, whole queries) — every component that already
//! holds a `Stats` clone gets span timers with no extra plumbing.
//!
//! The block is shared across threads (sessions, the lock manager, the
//! group committer all increment it concurrently), so the counters are
//! relaxed atomics behind an `Arc` — `Stats` is `Send + Sync` and stays
//! cheaply clonable.

pub use aim2_obs::MetricsSnapshot;
use aim2_obs::{FlightRecorder, Gauge, HistSnapshot, Histogram, Metrics, Timer};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, cheaply clonable counter block (`Send + Sync`; every counter
/// is a relaxed atomic — they are statistics, not synchronization).
#[derive(Clone, Default)]
pub struct Stats {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    c: Counters,
    obs: ObsHandles,
}

#[derive(Default)]
struct Counters {
    /// Buffer pool hits (page found in memory).
    buf_hits: AtomicU64,
    /// Buffer pool misses (page read from disk).
    buf_misses: AtomicU64,
    /// Pages written back to disk (evictions + flushes).
    page_writes: AtomicU64,
    /// Records (subtuples) read.
    subtuple_reads: AtomicU64,
    /// Records (subtuples) written (insert + update).
    subtuple_writes: AtomicU64,
    /// Pointer fields rewritten (Lorie baseline move/reorg cost).
    pointer_rewrites: AtomicU64,
    /// Whole complex objects visited (for the §4.2 duplicate-visit
    /// argument).
    object_visits: AtomicU64,
    /// Before-image records appended to the write-ahead log.
    wal_appends: AtomicU64,
    /// WAL records replayed (pages rolled back) during recovery.
    wal_replays: AtomicU64,
    /// Torn (partially written) structures detected by checksum during
    /// recovery.
    torn_pages_detected: AtomicU64,
    /// Lock requests that had to block behind a conflicting holder.
    lock_waits: AtomicU64,
    /// Transactions aborted as deadlock victims.
    deadlocks_aborted: AtomicU64,
    /// Physical WAL syncs issued by the group committer (each batch
    /// makes every commit appended before it durable at once).
    group_commit_batches: AtomicU64,
    /// Page checksums verified on cold buffer-pool reads.
    checksum_verifications: AtomicU64,
    /// Pages whose stamped CRC-32 did not match their contents.
    corrupt_pages_detected: AtomicU64,
    /// Objects quarantined by the integrity walker or a failed read.
    objects_quarantined: AtomicU64,
    /// Objects carried into a fresh database by `salvage()`.
    salvaged_objects: AtomicU64,
    /// Complex objects (or flat tuples) fully or partially decoded into
    /// model values by a cursor pull.
    objects_decoded: AtomicU64,
    /// Atoms decoded from data subtuples (the per-field cost partial
    /// retrieval avoids).
    atoms_decoded: AtomicU64,
    /// Scans closed before exhaustion (EXISTS witnesses, quantifier
    /// short-circuits): pages the pipeline never had to pull.
    cursor_early_exits: AtomicU64,
    /// Columnar blocks built by `compact_table` freezes.
    colstore_blocks_built: AtomicU64,
    /// Columnar blocks skipped by zone maps before any decode.
    colstore_blocks_pruned: AtomicU64,
    /// Columnar blocks read and dictionary-decoded.
    colstore_blocks_decoded: AtomicU64,
    /// Column cells consulted by vectorized/dictionary filters.
    colstore_values_scanned: AtomicU64,
    /// Heap rows frozen into columnar blocks.
    colstore_rows_compacted: AtomicU64,
    /// Table/object reads served from a pinned MVCC snapshot (zero
    /// lock-manager traffic).
    snapshot_reads: AtomicU64,
    /// Epoch versions published by committing writers (one per table a
    /// commit touched, plus rollback/checkpoint refreshes).
    mvcc_versions_published: AtomicU64,
    /// Superseded epoch versions reclaimed by the snapshot GC.
    mvcc_gc_reclaimed: AtomicU64,
    /// Well-formed frames decoded from client connections.
    net_frames_in: AtomicU64,
    /// Frames written to client connections.
    net_frames_out: AtomicU64,
    /// Statements received over the wire (Query requests admitted).
    net_queries: AtomicU64,
    /// Result rows streamed to clients across all connections.
    net_rows_streamed: AtomicU64,
    /// Connections or queries refused by admission control, plus
    /// connections dropped for framing/protocol violations.
    net_rejected: AtomicU64,
    /// Statements shed by the load-shedding watermark (connection or
    /// in-flight limits) with a `retry_after_ms` hint.
    net_load_shed: AtomicU64,
    /// Statements that arrived marked as client retries (`attempt > 0`
    /// on the Query frame).
    net_retries: AtomicU64,
    /// Statements that expired their deadline mid-evaluation.
    net_deadline_exceeded: AtomicU64,
    /// Keepalive pings answered.
    net_pings: AtomicU64,
}

/// Pre-resolved instrument handles: one registry lookup at construction
/// time, then lock-free recording on every hot path.
struct ObsHandles {
    metrics: Metrics,
    page_read: Histogram,
    page_write: Histogram,
    wal_append: Histogram,
    wal_fsync: Histogram,
    lock_wait: Histogram,
    commit: Histogram,
    cursor_lifetime: Histogram,
    checkpoint: Histogram,
    recovery: Histogram,
    query: Histogram,
    snapshot_age: Histogram,
    mvcc_publish: Histogram,
    colstore_compact: Histogram,
    lock_queue: Gauge,
    versions_retained: Gauge,
    /// Per-database ring of completed request traces. Lives here so
    /// every holder of a `Stats` clone — the `Database` facade, the
    /// network server, tests — shares one recorder per database.
    recorder: FlightRecorder,
}

impl Default for ObsHandles {
    fn default() -> Self {
        let metrics = Metrics::new();
        ObsHandles {
            page_read: metrics.histogram("storage.page_read"),
            page_write: metrics.histogram("storage.page_write"),
            wal_append: metrics.histogram("wal.append"),
            wal_fsync: metrics.histogram("wal.fsync"),
            lock_wait: metrics.histogram("txn.lock_wait"),
            commit: metrics.histogram("txn.commit"),
            cursor_lifetime: metrics.histogram("exec.cursor_lifetime"),
            checkpoint: metrics.histogram("db.checkpoint"),
            recovery: metrics.histogram("db.recovery"),
            query: metrics.histogram("db.query"),
            snapshot_age: metrics.histogram("txn.snapshot_age"),
            mvcc_publish: metrics.histogram("mvcc.publish"),
            colstore_compact: metrics.histogram("colstore.compact"),
            lock_queue: metrics.gauge("txn.lock_queue_depth"),
            versions_retained: metrics.gauge("mvcc.versions_retained"),
            recorder: FlightRecorder::default(),
            metrics,
        }
    }
}

impl ObsHandles {
    fn with_flight_capacity(capacity: usize) -> Self {
        ObsHandles {
            recorder: FlightRecorder::with_capacity(capacity),
            ..ObsHandles::default()
        }
    }
}

macro_rules! counter {
    ($inc:ident, $get:ident, $field:ident) => {
        #[doc = concat!("Increment the `", stringify!($field), "` counter.")]
        pub fn $inc(&self) {
            self.inner.c.$field.fetch_add(1, Ordering::Relaxed);
        }
        #[doc = concat!("Current value of the `", stringify!($field), "` counter.")]
        pub fn $get(&self) -> u64 {
            self.inner.c.$field.load(Ordering::Relaxed)
        }
    };
}

macro_rules! span_timer {
    ($fn_name:ident, $field:ident, $name:literal) => {
        #[doc = concat!(
                            "Start a span recording into the `", $name, "` histogram on drop."
                        )]
        pub fn $fn_name(&self) -> Timer {
            Timer::start(self.inner.obs.$field.clone(), $name)
        }
    };
}

impl Stats {
    /// A fresh, zeroed counter block.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// A fresh block whose flight recorder holds `capacity` traces.
    pub fn with_flight_capacity(capacity: usize) -> Stats {
        Stats {
            inner: Arc::new(Inner {
                c: Counters::default(),
                obs: ObsHandles::with_flight_capacity(capacity),
            }),
        }
    }

    counter!(inc_buf_hit, buf_hits, buf_hits);
    counter!(inc_buf_miss, buf_misses, buf_misses);
    counter!(inc_page_write, page_writes, page_writes);
    counter!(inc_subtuple_read, subtuple_reads, subtuple_reads);
    counter!(inc_subtuple_write, subtuple_writes, subtuple_writes);
    counter!(inc_pointer_rewrite, pointer_rewrites, pointer_rewrites);
    counter!(inc_object_visit, object_visits, object_visits);
    counter!(inc_wal_append, wal_appends, wal_appends);
    counter!(inc_wal_replay, wal_replays, wal_replays);
    counter!(
        inc_torn_page_detected,
        torn_pages_detected,
        torn_pages_detected
    );
    counter!(inc_lock_wait, lock_waits, lock_waits);
    counter!(inc_deadlock_aborted, deadlocks_aborted, deadlocks_aborted);
    counter!(
        inc_group_commit_batch,
        group_commit_batches,
        group_commit_batches
    );
    counter!(
        inc_checksum_verification,
        checksum_verifications,
        checksum_verifications
    );
    counter!(
        inc_corrupt_page_detected,
        corrupt_pages_detected,
        corrupt_pages_detected
    );
    counter!(
        inc_object_quarantined,
        objects_quarantined,
        objects_quarantined
    );
    counter!(inc_salvaged_object, salvaged_objects, salvaged_objects);
    counter!(inc_object_decoded, objects_decoded, objects_decoded);
    counter!(inc_atom_decoded, atoms_decoded, atoms_decoded);
    counter!(
        inc_cursor_early_exit,
        cursor_early_exits,
        cursor_early_exits
    );
    counter!(inc_snapshot_read, snapshot_reads, snapshot_reads);
    counter!(
        inc_colstore_block_built,
        colstore_blocks_built,
        colstore_blocks_built
    );
    counter!(
        inc_colstore_block_pruned,
        colstore_blocks_pruned,
        colstore_blocks_pruned
    );
    counter!(
        inc_colstore_block_decoded,
        colstore_blocks_decoded,
        colstore_blocks_decoded
    );
    counter!(
        inc_mvcc_version_published,
        mvcc_versions_published,
        mvcc_versions_published
    );
    counter!(inc_net_frame_in, net_frames_in, net_frames_in);
    counter!(inc_net_frame_out, net_frames_out, net_frames_out);
    counter!(inc_net_query, net_queries, net_queries);
    counter!(inc_net_rejected, net_rejected, net_rejected);
    counter!(inc_net_load_shed, net_load_shed, net_load_shed);
    counter!(inc_net_retry, net_retries, net_retries);
    counter!(
        inc_net_deadline_exceeded,
        net_deadline_exceeded,
        net_deadline_exceeded
    );
    counter!(inc_net_ping, net_pings, net_pings);

    span_timer!(time_page_read, page_read, "storage.page_read");
    span_timer!(time_page_write, page_write, "storage.page_write");
    span_timer!(time_wal_append, wal_append, "wal.append");
    span_timer!(time_wal_fsync, wal_fsync, "wal.fsync");
    span_timer!(time_lock_wait, lock_wait, "txn.lock_wait");
    span_timer!(time_commit, commit, "txn.commit");
    span_timer!(time_checkpoint, checkpoint, "db.checkpoint");
    span_timer!(time_recovery, recovery, "db.recovery");
    span_timer!(time_query, query, "db.query");
    span_timer!(time_mvcc_publish, mvcc_publish, "mvcc.publish");
    span_timer!(time_colstore_compact, colstore_compact, "colstore.compact");

    /// Bulk-add to `colstore_values_scanned` (one vectorized filter
    /// pass consults a whole column of codes at once).
    pub fn add_colstore_values_scanned(&self, n: u64) {
        self.inner
            .c
            .colstore_values_scanned
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of the `colstore_values_scanned` counter.
    pub fn colstore_values_scanned(&self) -> u64 {
        self.inner.c.colstore_values_scanned.load(Ordering::Relaxed)
    }

    /// Bulk-add to `colstore_rows_compacted` (one freeze moves a batch
    /// of heap rows into blocks).
    pub fn add_colstore_rows_compacted(&self, n: u64) {
        self.inner
            .c
            .colstore_rows_compacted
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of the `colstore_rows_compacted` counter.
    pub fn colstore_rows_compacted(&self) -> u64 {
        self.inner.c.colstore_rows_compacted.load(Ordering::Relaxed)
    }

    /// Bulk-add to `mvcc_gc_reclaimed` (one GC pass reclaims a batch of
    /// superseded versions).
    pub fn add_mvcc_gc_reclaimed(&self, n: u64) {
        self.inner
            .c
            .mvcc_gc_reclaimed
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of the `mvcc_gc_reclaimed` counter.
    pub fn mvcc_gc_reclaimed(&self) -> u64 {
        self.inner.c.mvcc_gc_reclaimed.load(Ordering::Relaxed)
    }

    /// Bulk-add to `net_rows_streamed` (the server counts one `Rows`
    /// frame's worth at a time).
    pub fn add_net_rows_streamed(&self, n: u64) {
        self.inner
            .c
            .net_rows_streamed
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of the `net_rows_streamed` counter.
    pub fn net_rows_streamed(&self) -> u64 {
        self.inner.c.net_rows_streamed.load(Ordering::Relaxed)
    }

    /// How long a read-only snapshot stayed pinned, nanoseconds
    /// (recorded when the pin is released).
    pub fn record_snapshot_age(&self, ns: u64) {
        self.inner.obs.snapshot_age.record(ns);
    }

    /// Epoch versions currently retained by the snapshot store (latest
    /// per table plus whatever pinned readers still need).
    pub fn versions_retained(&self) -> &Gauge {
        &self.inner.obs.versions_retained
    }

    /// The shared metrics registry backing the span timers.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.obs.metrics
    }

    /// The per-database flight recorder of completed request traces.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.obs.recorder
    }

    /// Depth of the lock manager's wait queue (blocked requests).
    pub fn lock_queue(&self) -> &Gauge {
        &self.inner.obs.lock_queue
    }

    /// Record how long a cursor stayed open, nanoseconds.
    pub fn record_cursor_lifetime(&self, ns: u64) {
        self.inner.obs.cursor_lifetime.record(ns);
    }

    /// Bulk-add to `atoms_decoded` (one data subtuple decodes many
    /// atoms at once).
    pub fn add_atoms_decoded(&self, n: u64) {
        self.inner.c.atoms_decoded.fetch_add(n, Ordering::Relaxed);
    }

    /// Bulk-add to `objects_decoded` (one cold batch materializes many
    /// rows at once).
    pub fn add_objects_decoded(&self, n: u64) {
        self.inner.c.objects_decoded.fetch_add(n, Ordering::Relaxed);
    }

    /// Total page accesses (hits + misses).
    pub fn page_accesses(&self) -> u64 {
        self.buf_hits() + self.buf_misses()
    }

    /// Reset all counters to zero (shared across clones). Latency
    /// histograms are left intact; use [`Metrics::reset_histograms`]
    /// via [`Stats::metrics`] to clear those too.
    pub fn reset(&self) {
        let i = &self.inner.c;
        for c in [
            &i.buf_hits,
            &i.buf_misses,
            &i.page_writes,
            &i.subtuple_reads,
            &i.subtuple_writes,
            &i.pointer_rewrites,
            &i.object_visits,
            &i.wal_appends,
            &i.wal_replays,
            &i.torn_pages_detected,
            &i.lock_waits,
            &i.deadlocks_aborted,
            &i.group_commit_batches,
            &i.checksum_verifications,
            &i.corrupt_pages_detected,
            &i.objects_quarantined,
            &i.salvaged_objects,
            &i.objects_decoded,
            &i.atoms_decoded,
            &i.cursor_early_exits,
            &i.colstore_blocks_built,
            &i.colstore_blocks_pruned,
            &i.colstore_blocks_decoded,
            &i.colstore_values_scanned,
            &i.colstore_rows_compacted,
            &i.snapshot_reads,
            &i.mvcc_versions_published,
            &i.mvcc_gc_reclaimed,
            &i.net_frames_in,
            &i.net_frames_out,
            &i.net_queries,
            &i.net_rows_streamed,
            &i.net_rejected,
            &i.net_load_shed,
            &i.net_retries,
            &i.net_deadline_exceeded,
            &i.net_pings,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot of all counters, for delta computations in benches.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            buf_hits: self.buf_hits(),
            buf_misses: self.buf_misses(),
            page_writes: self.page_writes(),
            subtuple_reads: self.subtuple_reads(),
            subtuple_writes: self.subtuple_writes(),
            pointer_rewrites: self.pointer_rewrites(),
            object_visits: self.object_visits(),
            wal_appends: self.wal_appends(),
            wal_replays: self.wal_replays(),
            torn_pages_detected: self.torn_pages_detected(),
            lock_waits: self.lock_waits(),
            deadlocks_aborted: self.deadlocks_aborted(),
            group_commit_batches: self.group_commit_batches(),
            checksum_verifications: self.checksum_verifications(),
            corrupt_pages_detected: self.corrupt_pages_detected(),
            objects_quarantined: self.objects_quarantined(),
            salvaged_objects: self.salvaged_objects(),
            objects_decoded: self.objects_decoded(),
            atoms_decoded: self.atoms_decoded(),
            cursor_early_exits: self.cursor_early_exits(),
            colstore_blocks_built: self.colstore_blocks_built(),
            colstore_blocks_pruned: self.colstore_blocks_pruned(),
            colstore_blocks_decoded: self.colstore_blocks_decoded(),
            colstore_values_scanned: self.colstore_values_scanned(),
            colstore_rows_compacted: self.colstore_rows_compacted(),
            snapshot_reads: self.snapshot_reads(),
            mvcc_versions_published: self.mvcc_versions_published(),
            mvcc_gc_reclaimed: self.mvcc_gc_reclaimed(),
            net_frames_in: self.net_frames_in(),
            net_frames_out: self.net_frames_out(),
            net_queries: self.net_queries(),
            net_rows_streamed: self.net_rows_streamed(),
            net_rejected: self.net_rejected(),
            net_load_shed: self.net_load_shed(),
            net_retries: self.net_retries(),
            net_deadline_exceeded: self.net_deadline_exceeded(),
            net_pings: self.net_pings(),
        }
    }

    /// Latency histogram snapshot for `name` (e.g. `"wal.fsync"`).
    pub fn histogram(&self, name: &str) -> HistSnapshot {
        self.inner.obs.metrics.histogram(name).snapshot()
    }

    /// Point-in-time exposition snapshot: every counter (namespaced by
    /// group), derived gauges (buffer hit rate, lock queue depth), and
    /// every latency histogram.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let snap = self.snapshot();
        let mut counters = Vec::new();
        for (group, items) in snap.groups() {
            for (name, v) in items {
                counters.push((format!("{group}.{}", name.replace('-', "_")), v));
            }
        }
        let accesses = snap.buf_hits + snap.buf_misses;
        let hit_rate = if accesses == 0 {
            0.0
        } else {
            snap.buf_hits as f64 / accesses as f64
        };
        // The derived hit-rate gauge, then every registry gauge — new
        // subsystems (e.g. net.connections) show up without this method
        // learning their names.
        let mut gauges = vec![("buffer.hit_rate".to_string(), hit_rate)];
        gauges.extend(
            self.inner
                .obs
                .metrics
                .gauge_values()
                .into_iter()
                .map(|(k, v)| (k, v as f64)),
        );
        MetricsSnapshot {
            counters,
            gauges,
            histograms: self.inner.obs.metrics.histograms(),
            labeled: Vec::new(),
        }
    }
}

/// Immutable copy of the counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub buf_hits: u64,
    pub buf_misses: u64,
    pub page_writes: u64,
    pub subtuple_reads: u64,
    pub subtuple_writes: u64,
    pub pointer_rewrites: u64,
    pub object_visits: u64,
    pub wal_appends: u64,
    pub wal_replays: u64,
    pub torn_pages_detected: u64,
    pub lock_waits: u64,
    pub deadlocks_aborted: u64,
    pub group_commit_batches: u64,
    pub checksum_verifications: u64,
    pub corrupt_pages_detected: u64,
    pub objects_quarantined: u64,
    pub salvaged_objects: u64,
    pub objects_decoded: u64,
    pub atoms_decoded: u64,
    pub cursor_early_exits: u64,
    pub colstore_blocks_built: u64,
    pub colstore_blocks_pruned: u64,
    pub colstore_blocks_decoded: u64,
    pub colstore_values_scanned: u64,
    pub colstore_rows_compacted: u64,
    pub snapshot_reads: u64,
    pub mvcc_versions_published: u64,
    pub mvcc_gc_reclaimed: u64,
    pub net_frames_in: u64,
    pub net_frames_out: u64,
    pub net_queries: u64,
    pub net_rows_streamed: u64,
    pub net_rejected: u64,
    pub net_load_shed: u64,
    pub net_retries: u64,
    pub net_deadline_exceeded: u64,
    pub net_pings: u64,
}

impl StatsSnapshot {
    /// Per-counter difference `later - self`.
    pub fn delta(&self, later: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            buf_hits: later.buf_hits - self.buf_hits,
            buf_misses: later.buf_misses - self.buf_misses,
            page_writes: later.page_writes - self.page_writes,
            subtuple_reads: later.subtuple_reads - self.subtuple_reads,
            subtuple_writes: later.subtuple_writes - self.subtuple_writes,
            pointer_rewrites: later.pointer_rewrites - self.pointer_rewrites,
            object_visits: later.object_visits - self.object_visits,
            wal_appends: later.wal_appends - self.wal_appends,
            wal_replays: later.wal_replays - self.wal_replays,
            torn_pages_detected: later.torn_pages_detected - self.torn_pages_detected,
            lock_waits: later.lock_waits - self.lock_waits,
            deadlocks_aborted: later.deadlocks_aborted - self.deadlocks_aborted,
            group_commit_batches: later.group_commit_batches - self.group_commit_batches,
            checksum_verifications: later.checksum_verifications - self.checksum_verifications,
            corrupt_pages_detected: later.corrupt_pages_detected - self.corrupt_pages_detected,
            objects_quarantined: later.objects_quarantined - self.objects_quarantined,
            salvaged_objects: later.salvaged_objects - self.salvaged_objects,
            objects_decoded: later.objects_decoded - self.objects_decoded,
            atoms_decoded: later.atoms_decoded - self.atoms_decoded,
            cursor_early_exits: later.cursor_early_exits - self.cursor_early_exits,
            colstore_blocks_built: later.colstore_blocks_built - self.colstore_blocks_built,
            colstore_blocks_pruned: later.colstore_blocks_pruned - self.colstore_blocks_pruned,
            colstore_blocks_decoded: later.colstore_blocks_decoded - self.colstore_blocks_decoded,
            colstore_values_scanned: later.colstore_values_scanned - self.colstore_values_scanned,
            colstore_rows_compacted: later.colstore_rows_compacted - self.colstore_rows_compacted,
            snapshot_reads: later.snapshot_reads - self.snapshot_reads,
            mvcc_versions_published: later.mvcc_versions_published - self.mvcc_versions_published,
            mvcc_gc_reclaimed: later.mvcc_gc_reclaimed - self.mvcc_gc_reclaimed,
            net_frames_in: later.net_frames_in - self.net_frames_in,
            net_frames_out: later.net_frames_out - self.net_frames_out,
            net_queries: later.net_queries - self.net_queries,
            net_rows_streamed: later.net_rows_streamed - self.net_rows_streamed,
            net_rejected: later.net_rejected - self.net_rejected,
            net_load_shed: later.net_load_shed - self.net_load_shed,
            net_retries: later.net_retries - self.net_retries,
            net_deadline_exceeded: later.net_deadline_exceeded - self.net_deadline_exceeded,
            net_pings: later.net_pings - self.net_pings,
        }
    }

    /// Counters in stable display order, grouped by subsystem.
    pub fn groups(&self) -> [(&'static str, Vec<(&'static str, u64)>); 9] {
        [
            (
                "buffer",
                vec![
                    ("hits", self.buf_hits),
                    ("misses", self.buf_misses),
                    ("page-writes", self.page_writes),
                ],
            ),
            (
                "storage",
                vec![
                    ("subtuple-reads", self.subtuple_reads),
                    ("subtuple-writes", self.subtuple_writes),
                    ("ptr-rewrites", self.pointer_rewrites),
                    ("obj-visits", self.object_visits),
                    ("objects-decoded", self.objects_decoded),
                    ("atoms-decoded", self.atoms_decoded),
                ],
            ),
            (
                "wal",
                vec![
                    ("appends", self.wal_appends),
                    ("replays", self.wal_replays),
                    ("torn-detected", self.torn_pages_detected),
                    ("group-commit-batches", self.group_commit_batches),
                ],
            ),
            (
                "txn",
                vec![
                    ("lock-waits", self.lock_waits),
                    ("deadlocks-aborted", self.deadlocks_aborted),
                    ("snapshot-reads", self.snapshot_reads),
                ],
            ),
            (
                "mvcc",
                vec![
                    ("versions-published", self.mvcc_versions_published),
                    ("gc-reclaimed", self.mvcc_gc_reclaimed),
                ],
            ),
            (
                "integrity",
                vec![
                    ("checksum-verifications", self.checksum_verifications),
                    ("corrupt-pages", self.corrupt_pages_detected),
                    ("quarantined", self.objects_quarantined),
                    ("salvaged", self.salvaged_objects),
                ],
            ),
            ("cursor", vec![("early-exits", self.cursor_early_exits)]),
            (
                "colstore",
                vec![
                    ("blocks-built", self.colstore_blocks_built),
                    ("blocks-pruned", self.colstore_blocks_pruned),
                    ("blocks-decoded", self.colstore_blocks_decoded),
                    ("values-scanned", self.colstore_values_scanned),
                    ("rows-compacted", self.colstore_rows_compacted),
                ],
            ),
            (
                "net",
                vec![
                    ("frames-in", self.net_frames_in),
                    ("frames-out", self.net_frames_out),
                    ("queries", self.net_queries),
                    ("rows-streamed", self.net_rows_streamed),
                    ("rejected", self.net_rejected),
                    ("load-shed", self.net_load_shed),
                    ("retries", self.net_retries),
                    ("deadline-exceeded", self.net_deadline_exceeded),
                    ("pings", self.net_pings),
                ],
            ),
        ]
    }

    /// Multi-line view showing every counter, zeros included.
    pub fn verbose(&self) -> VerboseStats {
        VerboseStats(*self)
    }
}

impl fmt::Display for StatsSnapshot {
    /// Compact single-line view: counters grouped by subsystem in a
    /// stable order, zero-valued counters (and empty groups)
    /// suppressed. Use [`StatsSnapshot::verbose`] for the full dump.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (group, items) in self.groups() {
            let live: Vec<String> = items
                .iter()
                .filter(|(_, v)| *v != 0)
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            if live.is_empty() {
                continue;
            }
            if any {
                write!(f, " ")?;
            }
            write!(f, "{group}[{}]", live.join(" "))?;
            any = true;
        }
        if !any {
            write!(f, "(no activity)")?;
        }
        Ok(())
    }
}

/// Verbose wrapper: one line per subsystem group, all counters shown.
pub struct VerboseStats(StatsSnapshot);

impl fmt::Display for VerboseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (group, items) in self.0.groups() {
            let all: Vec<String> = items.iter().map(|(k, v)| format!("{k}={v}")).collect();
            writeln!(f, "{group:<10} {}", all.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_across_clones() {
        let s = Stats::new();
        let s2 = s.clone();
        s.inc_buf_hit();
        s2.inc_buf_hit();
        s2.inc_buf_miss();
        assert_eq!(s.buf_hits(), 2);
        assert_eq!(s.buf_misses(), 1);
        assert_eq!(s.page_accesses(), 3);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::new();
        s.inc_subtuple_read();
        let before = s.snapshot();
        s.inc_subtuple_read();
        s.inc_subtuple_read();
        s.inc_object_visit();
        let after = s.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.subtuple_reads, 2);
        assert_eq!(d.object_visits, 1);
        assert_eq!(d.buf_hits, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::new();
        s.inc_pointer_rewrite();
        s.inc_page_write();
        s.inc_lock_wait();
        s.inc_deadlock_aborted();
        s.inc_group_commit_batch();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn counters_shared_across_threads() {
        let s = Stats::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.inc_lock_wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.lock_waits(), 4000);
    }

    #[test]
    fn display_groups_and_suppresses_zeros() {
        let s = Stats::new();
        assert_eq!(s.snapshot().to_string(), "(no activity)");
        s.inc_buf_hit();
        s.inc_buf_hit();
        s.inc_object_decoded();
        s.inc_cursor_early_exit();
        let line = s.snapshot().to_string();
        assert_eq!(
            line,
            "buffer[hits=2] storage[objects-decoded=1] cursor[early-exits=1]"
        );
        // Verbose shows everything, zeros included, one group per line.
        let v = s.snapshot().verbose().to_string();
        assert!(v.contains("misses=0"));
        assert!(v.lines().count() == 9);
    }

    #[test]
    fn span_timers_feed_histograms() {
        let s = Stats::new();
        {
            let _t = s.time_wal_fsync();
        }
        {
            let _t = s.time_page_read();
        }
        assert_eq!(s.histogram("wal.fsync").count, 1);
        assert_eq!(s.histogram("storage.page_read").count, 1);
        assert_eq!(s.histogram("storage.page_write").count, 0);
        // Clones share the registry.
        let s2 = s.clone();
        assert_eq!(s2.histogram("wal.fsync").count, 1);
    }

    #[test]
    fn metrics_snapshot_names_and_gauges() {
        let s = Stats::new();
        s.inc_buf_hit();
        s.inc_buf_hit();
        s.inc_buf_hit();
        s.inc_buf_miss();
        s.record_cursor_lifetime(1500);
        let m = s.metrics_snapshot();
        let counter = |name: &str| {
            m.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(counter("buffer.hits"), 3);
        assert_eq!(counter("buffer.misses"), 1);
        assert_eq!(counter("storage.objects_decoded"), 0);
        let hit_rate = m
            .gauges
            .iter()
            .find(|(k, _)| k == "buffer.hit_rate")
            .unwrap()
            .1;
        assert!((hit_rate - 0.75).abs() < 1e-9);
        let (_, fsync) = m
            .histograms
            .iter()
            .find(|(k, _)| k == "exec.cursor_lifetime")
            .unwrap();
        assert_eq!(fsync.count, 1);
    }
}
