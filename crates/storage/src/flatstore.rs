//! Flat (1NF) table storage.
//!
//! "A flat (1NF) table does not have Mini Directories for its objects at
//! all" (§4.1): each tuple is exactly one data subtuple in the heap,
//! addressed by TID. This is the degenerate case the extended NF² model
//! integrates — and the storage used for the paper's Tables 1–4 and 8.

use crate::colstore::{build_block, decode_block, ColdBlockMeta, DecodedBlock};
use crate::segment::Segment;
use crate::tid::Tid;
use crate::Result;
use aim2_model::encode::{decode_atoms, encode_atoms};
use aim2_model::{Atom, TableSchema, TableValue, Tuple, Value};
use std::sync::Arc;

/// Heap storage for one flat table, with an optional columnar cold
/// tier: hot tuples live one-per-record in the slotted-page heap;
/// frozen tuples live in immutable [`colstore`](crate::colstore)
/// blocks in the *same* segment, so both tiers share the buffer pool,
/// WAL and checkpoint machinery.
pub struct FlatStore {
    seg: Segment,
    tids: Vec<Tid>,
    cold: Vec<ColdBlockMeta>,
    /// One-block decode cache: scans walk cold rows in block order, so
    /// a single slot turns per-row materialization into one decode per
    /// block.
    cold_cache: Option<(usize, Arc<DecodedBlock>)>,
}

impl FlatStore {
    /// Create a flat store over its own segment.
    pub fn new(seg: Segment) -> FlatStore {
        FlatStore {
            seg,
            tids: Vec::new(),
            cold: Vec::new(),
            cold_cache: None,
        }
    }

    /// Re-attach to an existing store (database restart) with the
    /// persisted TID list.
    pub fn reopen(seg: Segment, tids: Vec<Tid>) -> FlatStore {
        FlatStore {
            seg,
            tids,
            cold: Vec::new(),
            cold_cache: None,
        }
    }

    /// Attach the persisted cold-block directory (database restart).
    pub fn set_cold(&mut self, cold: Vec<ColdBlockMeta>) {
        self.cold = cold;
        self.cold_cache = None;
    }

    /// The cold-block directory.
    pub fn cold_blocks(&self) -> &[ColdBlockMeta] {
        &self.cold
    }

    /// Total rows frozen in cold blocks.
    pub fn cold_row_count(&self) -> u64 {
        self.cold.iter().map(|b| b.rows as u64).sum()
    }

    /// The underlying segment (stats / buffer control).
    pub fn segment_mut(&mut self) -> &mut Segment {
        &mut self.seg
    }

    /// Number of live *hot* tuples (heap tier only; see
    /// [`FlatStore::cold_row_count`]).
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True if neither tier stores a tuple.
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty() && self.cold.is_empty()
    }

    /// Insert one tuple (all fields must be atoms); returns its TID.
    pub fn insert(&mut self, tuple: &Tuple) -> Result<Tid> {
        let atoms: Vec<&Atom> = tuple
            .fields
            .iter()
            .map(|v| {
                v.as_atom().ok_or_else(|| {
                    crate::StorageError::Corrupt("flat store got a table-valued field".into())
                })
            })
            .collect::<Result<_>>()?;
        let payload = encode_atoms(atoms);
        let near = self.tids.last().map(|t| t.page);
        let tid = self.seg.insert(&payload, near)?;
        self.tids.push(tid);
        Ok(tid)
    }

    /// Read the tuple at `tid`.
    pub fn read(&mut self, tid: Tid) -> Result<Tuple> {
        let bytes = self.seg.read(tid)?;
        let atoms = decode_atoms(&bytes)?;
        self.seg.stats().inc_object_decoded();
        self.seg.stats().add_atoms_decoded(atoms.len() as u64);
        Ok(Tuple::new(atoms.into_iter().map(Value::Atom).collect()))
    }

    /// Update the tuple at `tid` in place (TID stays valid).
    pub fn update(&mut self, tid: Tid, tuple: &Tuple) -> Result<()> {
        let atoms: Vec<&Atom> = tuple.fields.iter().filter_map(|v| v.as_atom()).collect();
        let payload = encode_atoms(atoms);
        self.seg.update(tid, &payload)
    }

    /// Delete the tuple at `tid`.
    pub fn delete(&mut self, tid: Tid) -> Result<()> {
        self.seg.delete(tid)?;
        self.tids.retain(|&t| t != tid);
        Ok(())
    }

    /// All live TIDs in insertion order.
    pub fn tids(&self) -> &[Tid] {
        &self.tids
    }

    /// Freeze every hot row into columnar cold blocks of up to
    /// `block_rows` rows each. Hot rows are read in insertion order,
    /// encoded into blocks (one segment record per block), then the
    /// heap records are deleted — so cold blocks always hold the
    /// *oldest* rows and a cold-then-hot scan preserves insertion
    /// order. Returns `(blocks built, rows frozen)`.
    pub fn freeze(&mut self, block_rows: usize) -> Result<(usize, u64)> {
        let block_rows = block_rows.max(1);
        let hot = self.tids.clone();
        if hot.is_empty() {
            return Ok((0, 0));
        }
        let mut built = 0usize;
        let mut frozen = 0u64;
        for chunk in hot.chunks(block_rows) {
            let mut rows = Vec::with_capacity(chunk.len());
            for &tid in chunk {
                let bytes = self.seg.read(tid)?;
                let atoms = decode_atoms(&bytes)?;
                rows.push(Tuple::new(atoms.into_iter().map(Value::Atom).collect()));
            }
            let (payload, zones) = build_block(&rows)?;
            let near = self.cold.last().map(|b| b.tid.page);
            let tid = self.seg.insert(&payload, near)?;
            for &t in chunk {
                self.seg.delete(t)?;
            }
            self.cold.push(ColdBlockMeta {
                tid,
                rows: rows.len() as u32,
                zones,
            });
            self.seg.stats().inc_colstore_block_built();
            built += 1;
            frozen += rows.len() as u64;
        }
        self.tids.clear();
        self.seg.stats().add_colstore_rows_compacted(frozen);
        Ok((built, frozen))
    }

    /// Decode cold block `ord` (through the one-block cache).
    pub fn read_cold_block(&mut self, ord: usize) -> Result<Arc<DecodedBlock>> {
        if let Some((cached, block)) = &self.cold_cache {
            if *cached == ord {
                return Ok(Arc::clone(block));
            }
        }
        let _decode_span = aim2_obs::capture_span("colstore.decode");
        let meta = self
            .cold
            .get(ord)
            .ok_or_else(|| crate::StorageError::Corrupt(format!("no cold block {ord}")))?;
        let tid = meta.tid;
        let expect_rows = meta.rows;
        let bytes = self.seg.read(tid)?;
        let (block, _zones) = decode_block(&bytes)?;
        if block.rows != expect_rows {
            return Err(crate::StorageError::Corrupt(format!(
                "cold block {ord} holds {} rows, directory says {expect_rows}",
                block.rows
            )));
        }
        self.seg.stats().inc_colstore_block_decoded();
        let block = Arc::new(block);
        self.cold_cache = Some((ord, Arc::clone(&block)));
        Ok(block)
    }

    /// Materialize one cold row as a tuple. Decode accounting matches
    /// [`FlatStore::read`] — one object and `arity` atoms per
    /// materialized row — so row-vs-columnar comparisons count the
    /// same work.
    pub fn materialize_cold_row(&mut self, ord: usize, row: u32) -> Result<Tuple> {
        let block = self.read_cold_block(ord)?;
        let tuple = block.row(row as usize)?;
        self.seg.stats().inc_object_decoded();
        self.seg
            .stats()
            .add_atoms_decoded(tuple.fields.len() as u64);
        Ok(tuple)
    }

    /// Thaw the cold tier back into the hot heap (row-wise writes are
    /// about to land). Rows return in their original insertion order,
    /// *before* any existing hot rows' TIDs — cold rows are older.
    pub fn melt(&mut self) -> Result<u64> {
        if self.cold.is_empty() {
            return Ok(0);
        }
        let mut thawed: Vec<Tuple> = Vec::new();
        for ord in 0..self.cold.len() {
            let block = self.read_cold_block(ord)?;
            for r in 0..block.rows as usize {
                thawed.push(block.row(r)?);
            }
        }
        let cold = std::mem::take(&mut self.cold);
        self.cold_cache = None;
        for meta in &cold {
            self.seg.delete(meta.tid)?;
        }
        let hot = std::mem::take(&mut self.tids);
        let count = thawed.len() as u64;
        for t in &thawed {
            self.insert(t)?;
        }
        self.tids.extend(hot);
        Ok(count)
    }

    /// Scan the whole table into a `TableValue` conforming to `schema`
    /// — cold rows first (they are older), then the hot heap, so the
    /// result is in insertion order.
    pub fn scan(&mut self, schema: &TableSchema) -> Result<TableValue> {
        let mut tuples = Vec::with_capacity(self.tids.len() + self.cold_row_count() as usize);
        for ord in 0..self.cold.len() {
            let block = self.read_cold_block(ord)?;
            for r in 0..block.rows {
                tuples.push(self.materialize_cold_row(ord, r)?);
            }
        }
        for &tid in &self.tids.clone() {
            tuples.push(self.read(tid)?);
        }
        Ok(TableValue {
            kind: schema.kind,
            tuples,
        })
    }

    /// Bulk-load a table value; returns the TIDs.
    pub fn load(&mut self, value: &TableValue) -> Result<Vec<Tid>> {
        let mut out = Vec::with_capacity(value.tuples.len());
        for t in &value.tuples {
            out.push(self.insert(t)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::stats::Stats;
    use aim2_model::fixtures;
    use aim2_model::value::build::{a, tup};

    fn store() -> FlatStore {
        let pool = BufferPool::new(Box::new(MemDisk::new(512)), 16, Stats::new());
        FlatStore::new(Segment::new(pool))
    }

    #[test]
    fn load_and_scan_paper_tables() {
        for (schema, value) in [
            (
                fixtures::departments_1nf_schema(),
                fixtures::departments_1nf_value(),
            ),
            (
                fixtures::projects_1nf_schema(),
                fixtures::projects_1nf_value(),
            ),
            (
                fixtures::members_1nf_schema(),
                fixtures::members_1nf_value(),
            ),
            (fixtures::equip_1nf_schema(), fixtures::equip_1nf_value()),
            (
                fixtures::employees_1nf_schema(),
                fixtures::employees_1nf_value(),
            ),
        ] {
            let mut fs = store();
            fs.load(&value).unwrap();
            let back = fs.scan(&schema).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn update_and_delete() {
        let mut fs = store();
        let t1 = fs.insert(&tup(vec![a(1), a("x")])).unwrap();
        let t2 = fs.insert(&tup(vec![a(2), a("y")])).unwrap();
        fs.update(t1, &tup(vec![a(1), a("a longer replacement value")]))
            .unwrap();
        assert_eq!(
            fs.read(t1).unwrap().fields[1].as_atom().unwrap().as_str(),
            Some("a longer replacement value")
        );
        fs.delete(t2).unwrap();
        assert_eq!(fs.len(), 1);
        assert!(fs.read(t2).is_err());
    }

    #[test]
    fn rejects_nested_values() {
        let mut fs = store();
        let nested = tup(vec![a(1), aim2_model::value::build::rel(vec![])]);
        assert!(fs.insert(&nested).is_err());
    }

    #[test]
    fn freeze_scan_melt_roundtrip() {
        let mut fs = store();
        let schema = fixtures::departments_1nf_schema();
        for i in 0..100i64 {
            fs.insert(&tup(vec![a(i), a(format!("row{i}"))])).unwrap();
        }
        let before = fs.scan(&schema).unwrap();
        // Block size 32 → boundary exactly at batch size on the fourth
        // chunk of 4 (100 = 3×32 + 4).
        let (blocks, rows) = fs.freeze(32).unwrap();
        assert_eq!((blocks, rows), (4, 100));
        assert_eq!(fs.len(), 0);
        assert_eq!(fs.cold_row_count(), 100);
        assert_eq!(fs.cold_blocks()[3].rows, 4);
        assert_eq!(fs.scan(&schema).unwrap(), before);
        // Zone maps cover the frozen key ranges.
        assert_eq!(fs.cold_blocks()[0].zones[0], (Atom::Int(0), Atom::Int(31)));
        // New inserts stay hot; scan returns cold-then-hot order.
        fs.insert(&tup(vec![a(100), a("row100")])).unwrap();
        let mixed = fs.scan(&schema).unwrap();
        assert_eq!(mixed.tuples.len(), 101);
        assert_eq!(mixed.tuples[100].fields[0].as_atom(), Some(&Atom::Int(100)));
        // Melt restores a pure heap with identical contents and order.
        assert_eq!(fs.melt().unwrap(), 100);
        assert!(fs.cold_blocks().is_empty());
        assert_eq!(fs.len(), 101);
        assert_eq!(fs.scan(&schema).unwrap(), mixed);
    }

    #[test]
    fn freeze_block_boundary_exact() {
        let mut fs = store();
        let schema = fixtures::departments_1nf_schema();
        for i in 0..64i64 {
            fs.insert(&tup(vec![a(i), a("x")])).unwrap();
        }
        let (blocks, rows) = fs.freeze(32).unwrap();
        assert_eq!((blocks, rows), (2, 64));
        assert_eq!(fs.cold_blocks()[1].rows, 32);
        assert_eq!(fs.scan(&schema).unwrap().tuples.len(), 64);
    }

    #[test]
    fn freeze_empty_table_is_noop() {
        let mut fs = store();
        assert_eq!(fs.freeze(crate::colstore::BLOCK_ROWS).unwrap(), (0, 0));
        assert!(fs.cold_blocks().is_empty());
        assert_eq!(fs.melt().unwrap(), 0);
    }

    #[test]
    fn materialize_counts_like_row_reads() {
        let mut fs = store();
        for i in 0..10i64 {
            fs.insert(&tup(vec![a(i), a("x"), a(true)])).unwrap();
        }
        fs.freeze(4).unwrap();
        let stats = fs.segment_mut().stats().clone();
        let before = stats.snapshot();
        let t = fs.materialize_cold_row(1, 2).unwrap();
        assert_eq!(t.fields[0].as_atom(), Some(&Atom::Int(6)));
        let after = stats.snapshot();
        assert_eq!(after.objects_decoded - before.objects_decoded, 1);
        assert_eq!(after.atoms_decoded - before.atoms_decoded, 3);
        // Same block again: served from the one-block cache.
        fs.materialize_cold_row(1, 3).unwrap();
        assert_eq!(
            stats.snapshot().colstore_blocks_decoded,
            after.colstore_blocks_decoded
        );
    }

    #[test]
    fn long_text_tuples_roundtrip() {
        let mut fs = store();
        let long = "x".repeat(5000); // spans multiple 512-byte pages
        let tid = fs.insert(&tup(vec![a(1), a(long.as_str())])).unwrap();
        let back = fs.read(tid).unwrap();
        assert_eq!(back.fields[1].as_atom().unwrap().as_str(), Some(&long[..]));
    }
}
