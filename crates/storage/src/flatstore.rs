//! Flat (1NF) table storage.
//!
//! "A flat (1NF) table does not have Mini Directories for its objects at
//! all" (§4.1): each tuple is exactly one data subtuple in the heap,
//! addressed by TID. This is the degenerate case the extended NF² model
//! integrates — and the storage used for the paper's Tables 1–4 and 8.

use crate::segment::Segment;
use crate::tid::Tid;
use crate::Result;
use aim2_model::encode::{decode_atoms, encode_atoms};
use aim2_model::{Atom, TableSchema, TableValue, Tuple, Value};

/// Heap storage for one flat table.
pub struct FlatStore {
    seg: Segment,
    tids: Vec<Tid>,
}

impl FlatStore {
    /// Create a flat store over its own segment.
    pub fn new(seg: Segment) -> FlatStore {
        FlatStore {
            seg,
            tids: Vec::new(),
        }
    }

    /// Re-attach to an existing store (database restart) with the
    /// persisted TID list.
    pub fn reopen(seg: Segment, tids: Vec<Tid>) -> FlatStore {
        FlatStore { seg, tids }
    }

    /// The underlying segment (stats / buffer control).
    pub fn segment_mut(&mut self) -> &mut Segment {
        &mut self.seg
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Insert one tuple (all fields must be atoms); returns its TID.
    pub fn insert(&mut self, tuple: &Tuple) -> Result<Tid> {
        let atoms: Vec<&Atom> = tuple
            .fields
            .iter()
            .map(|v| {
                v.as_atom().ok_or_else(|| {
                    crate::StorageError::Corrupt("flat store got a table-valued field".into())
                })
            })
            .collect::<Result<_>>()?;
        let payload = encode_atoms(atoms);
        let near = self.tids.last().map(|t| t.page);
        let tid = self.seg.insert(&payload, near)?;
        self.tids.push(tid);
        Ok(tid)
    }

    /// Read the tuple at `tid`.
    pub fn read(&mut self, tid: Tid) -> Result<Tuple> {
        let bytes = self.seg.read(tid)?;
        let atoms = decode_atoms(&bytes)?;
        self.seg.stats().inc_object_decoded();
        self.seg.stats().add_atoms_decoded(atoms.len() as u64);
        Ok(Tuple::new(atoms.into_iter().map(Value::Atom).collect()))
    }

    /// Update the tuple at `tid` in place (TID stays valid).
    pub fn update(&mut self, tid: Tid, tuple: &Tuple) -> Result<()> {
        let atoms: Vec<&Atom> = tuple.fields.iter().filter_map(|v| v.as_atom()).collect();
        let payload = encode_atoms(atoms);
        self.seg.update(tid, &payload)
    }

    /// Delete the tuple at `tid`.
    pub fn delete(&mut self, tid: Tid) -> Result<()> {
        self.seg.delete(tid)?;
        self.tids.retain(|&t| t != tid);
        Ok(())
    }

    /// All live TIDs in insertion order.
    pub fn tids(&self) -> &[Tid] {
        &self.tids
    }

    /// Scan the whole table into a `TableValue` conforming to `schema`.
    pub fn scan(&mut self, schema: &TableSchema) -> Result<TableValue> {
        let mut tuples = Vec::with_capacity(self.tids.len());
        for &tid in &self.tids.clone() {
            tuples.push(self.read(tid)?);
        }
        Ok(TableValue {
            kind: schema.kind,
            tuples,
        })
    }

    /// Bulk-load a table value; returns the TIDs.
    pub fn load(&mut self, value: &TableValue) -> Result<Vec<Tid>> {
        let mut out = Vec::with_capacity(value.tuples.len());
        for t in &value.tuples {
            out.push(self.insert(t)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::stats::Stats;
    use aim2_model::fixtures;
    use aim2_model::value::build::{a, tup};

    fn store() -> FlatStore {
        let pool = BufferPool::new(Box::new(MemDisk::new(512)), 16, Stats::new());
        FlatStore::new(Segment::new(pool))
    }

    #[test]
    fn load_and_scan_paper_tables() {
        for (schema, value) in [
            (
                fixtures::departments_1nf_schema(),
                fixtures::departments_1nf_value(),
            ),
            (
                fixtures::projects_1nf_schema(),
                fixtures::projects_1nf_value(),
            ),
            (
                fixtures::members_1nf_schema(),
                fixtures::members_1nf_value(),
            ),
            (fixtures::equip_1nf_schema(), fixtures::equip_1nf_value()),
            (
                fixtures::employees_1nf_schema(),
                fixtures::employees_1nf_value(),
            ),
        ] {
            let mut fs = store();
            fs.load(&value).unwrap();
            let back = fs.scan(&schema).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn update_and_delete() {
        let mut fs = store();
        let t1 = fs.insert(&tup(vec![a(1), a("x")])).unwrap();
        let t2 = fs.insert(&tup(vec![a(2), a("y")])).unwrap();
        fs.update(t1, &tup(vec![a(1), a("a longer replacement value")]))
            .unwrap();
        assert_eq!(
            fs.read(t1).unwrap().fields[1].as_atom().unwrap().as_str(),
            Some("a longer replacement value")
        );
        fs.delete(t2).unwrap();
        assert_eq!(fs.len(), 1);
        assert!(fs.read(t2).is_err());
    }

    #[test]
    fn rejects_nested_values() {
        let mut fs = store();
        let nested = tup(vec![a(1), aim2_model::value::build::rel(vec![])]);
        assert!(fs.insert(&nested).is_err());
    }

    #[test]
    fn long_text_tuples_roundtrip() {
        let mut fs = store();
        let long = "x".repeat(5000); // spans multiple 512-byte pages
        let tid = fs.insert(&tup(vec![a(1), a(long.as_str())])).unwrap();
        let back = fs.read(tid).unwrap();
        assert_eq!(back.fields[1].as_atom().unwrap().as_str(), Some(&long[..]));
    }
}
