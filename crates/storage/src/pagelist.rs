//! Local address spaces: the page list.
//!
//! "Each complex object gets its own local address space ... represented
//! by a page list stored in the root MD subtuple" (§4.1). A [`PageList`]
//! maps a Mini-TID's *local* page index to the physical [`PageId`].
//!
//! Two stability rules from the paper are enforced here:
//! * removing a page leaves a **gap** — "the gap in the list caused by
//!   the deletion is not closed immediately", so surviving entries never
//!   change position and existing Mini-TIDs stay valid;
//! * adding a page first reuses a gap, else appends at the end.
//!
//! Moving a complex object (check-out, reorganization) only **replaces**
//! physical page numbers at the same local positions — "no changes are
//! required for D and C pointers since Mini TIDs refer to positions in
//! the page list".

use crate::error::StorageError;
use crate::tid::PageId;

const GAP: u32 = u32::MAX;

/// The page list of one complex object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageList {
    entries: Vec<u32>, // physical page numbers; GAP marks a hole
}

impl PageList {
    /// An empty page list.
    pub fn new() -> PageList {
        PageList::default()
    }

    /// Number of entries including gaps (the local address space size).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of live (non-gap) pages.
    pub fn page_count(&self) -> usize {
        self.entries.iter().filter(|&&e| e != GAP).count()
    }

    /// Translate a local page index to the physical page.
    pub fn translate(&self, lpage: u16) -> Option<PageId> {
        match self.entries.get(lpage as usize) {
            Some(&e) if e != GAP => Some(PageId(e)),
            _ => None,
        }
    }

    /// Local index of a physical page, if present.
    pub fn position_of(&self, pid: PageId) -> Option<u16> {
        self.entries
            .iter()
            .position(|&e| e == pid.0)
            .map(|i| i as u16)
    }

    /// True if the physical page belongs to this local address space.
    pub fn contains(&self, pid: PageId) -> bool {
        self.position_of(pid).is_some()
    }

    /// Add a physical page: reuse the first gap, else append. Returns the
    /// local index.
    pub fn add(&mut self, pid: PageId) -> u16 {
        debug_assert!(!self.contains(pid), "page already in list");
        if let Some(i) = self.entries.iter().position(|&e| e == GAP) {
            self.entries[i] = pid.0;
            i as u16
        } else {
            self.entries.push(pid.0);
            (self.entries.len() - 1) as u16
        }
    }

    /// Remove the entry at `lpage`, leaving a gap (Mini-TID stability).
    pub fn remove_at(&mut self, lpage: u16) -> Option<PageId> {
        let e = self.entries.get_mut(lpage as usize)?;
        if *e == GAP {
            return None;
        }
        let pid = PageId(*e);
        *e = GAP;
        Some(pid)
    }

    /// Replace the physical page at `lpage` (object move): Mini-TIDs
    /// pointing at this local index are untouched.
    pub fn replace(&mut self, lpage: u16, new_pid: PageId) -> Result<PageId, StorageError> {
        match self.entries.get_mut(lpage as usize) {
            Some(e) if *e != GAP => {
                let old = PageId(*e);
                *e = new_pid.0;
                Ok(old)
            }
            _ => Err(StorageError::Corrupt(format!(
                "page list has no live entry at local index {lpage}"
            ))),
        }
    }

    /// Iterate live `(local index, physical page)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, PageId)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, &e)| e != GAP)
            .map(|(i, &e)| (i as u16, PageId(e)))
    }

    /// Serialize: `u16` entry count then `u32` per entry (GAP included).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }

    /// Deserialize from `buf[*pos..]`, advancing `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<PageList, StorageError> {
        let err = || StorageError::Corrupt("truncated page list".into());
        let n = u16::from_le_bytes(buf.get(*pos..*pos + 2).ok_or_else(err)?.try_into().unwrap())
            as usize;
        *pos += 2;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let e =
                u32::from_le_bytes(buf.get(*pos..*pos + 4).ok_or_else(err)?.try_into().unwrap());
            *pos += 4;
            entries.push(e);
        }
        Ok(PageList { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_translate() {
        let mut pl = PageList::new();
        let l0 = pl.add(PageId(100));
        let l1 = pl.add(PageId(200));
        assert_eq!((l0, l1), (0, 1));
        assert_eq!(pl.translate(0), Some(PageId(100)));
        assert_eq!(pl.translate(1), Some(PageId(200)));
        assert_eq!(pl.translate(2), None);
        assert_eq!(pl.page_count(), 2);
    }

    #[test]
    fn remove_leaves_gap_and_later_entries_stable() {
        let mut pl = PageList::new();
        pl.add(PageId(10));
        pl.add(PageId(20));
        pl.add(PageId(30));
        assert_eq!(pl.remove_at(1), Some(PageId(20)));
        // The paper's stability rule: entry 2 still translates the same.
        assert_eq!(pl.translate(2), Some(PageId(30)));
        assert_eq!(pl.translate(1), None);
        assert_eq!(pl.page_count(), 2);
        assert_eq!(pl.len(), 3, "gap retained");
        // Double remove is a no-op signal.
        assert_eq!(pl.remove_at(1), None);
    }

    #[test]
    fn add_reuses_gap_before_extending() {
        let mut pl = PageList::new();
        pl.add(PageId(10));
        pl.add(PageId(20));
        pl.remove_at(0);
        let l = pl.add(PageId(99));
        assert_eq!(l, 0, "gap reused");
        assert_eq!(pl.len(), 2);
        let l2 = pl.add(PageId(77));
        assert_eq!(l2, 2, "no gap left — extended at the end");
    }

    #[test]
    fn replace_for_object_move() {
        let mut pl = PageList::new();
        pl.add(PageId(10));
        pl.add(PageId(20));
        let old = pl.replace(1, PageId(555)).unwrap();
        assert_eq!(old, PageId(20));
        assert_eq!(pl.translate(1), Some(PageId(555)));
        assert!(pl.replace(9, PageId(1)).is_err());
    }

    #[test]
    fn encode_decode_roundtrip_with_gaps() {
        let mut pl = PageList::new();
        pl.add(PageId(1));
        pl.add(PageId(2));
        pl.add(PageId(3));
        pl.remove_at(1);
        let mut buf = vec![0xAA]; // leading noise to test offsets
        pl.encode(&mut buf);
        let mut pos = 1;
        let back = PageList::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, pl);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn decode_truncated_errors() {
        let mut buf = Vec::new();
        let mut pl = PageList::new();
        pl.add(PageId(7));
        pl.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(PageList::decode(&buf[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn position_and_contains() {
        let mut pl = PageList::new();
        pl.add(PageId(42));
        assert!(pl.contains(PageId(42)));
        assert_eq!(pl.position_of(PageId(42)), Some(0));
        assert!(!pl.contains(PageId(43)));
    }
}
