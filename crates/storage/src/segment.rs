//! Segments: the record (subtuple) manager.
//!
//! A segment is an extent of slotted pages behind the buffer pool. Its
//! records are the paper's *subtuples* — "the basic storage unit, like a
//! tuple or a record in traditional database systems" (§4.1). The segment
//! offers two API levels:
//!
//! * a **heap API** ([`Segment::insert`] / [`Segment::read`] /
//!   [`Segment::update`] / [`Segment::delete`] / [`Segment::for_each`])
//!   addressing records by [`Tid`], with transparent *forwarding*: a
//!   record that outgrows its page moves, leaving a forward pointer at
//!   its home slot so the TID stays valid — flat 1NF tables and the Lorie
//!   baseline use this level;
//! * a **low-level record API** (`rec_*`) addressing `(PageId, SlotNo)`
//!   directly, used by the complex-object manager, which does its own
//!   (Mini-TID-relative) forwarding so that object pages stay
//!   position-independent and can be moved wholesale (§4.1).
//!
//! Every record carries a 1-byte flag: `INLINE` data, `FWD` (payload is
//! the forward address), or `BODY` (the forward target, skipped by
//! scans so no record is seen twice).

use crate::buffer::BufferPool;
use crate::error::StorageError;
use crate::page::{Page, PageRef};
use crate::stats::Stats;
use crate::tid::{MiniTid, PageId, SlotNo, Tid};
use crate::Result;

/// Record flag: plain record (whole payload inline).
pub const REC_INLINE: u8 = 0x00;
/// Record flag: forward pointer; payload is the TID of the record's
/// overflow chain. Keeps TIDs stable when a record outgrows its page.
pub const REC_FWD: u8 = 0x01;
/// Record flag: overflow record — `[next: Tid or sentinel][data]`;
/// skipped by scans (reached only via its home record). Serves both as
/// forward target and as long-record continuation.
pub const REC_OVFL: u8 = 0x02;
/// Record flag: chunked home record — `[next: Tid][first chunk]`; a
/// record longer than one page starts here and continues in `REC_OVFL`
/// records. Yielded by scans at its home TID.
pub const REC_HEAD: u8 = 0x03;
/// Record flag: *local* forward pointer — payload is a Mini-TID resolved
/// against the owning object's page list (§4.1); the object manager
/// resolves these, never the segment.
pub const REC_FWD_LOCAL: u8 = 0x04;
/// Record flag: local overflow record — `[next: MiniTid or sentinel][data]`.
pub const REC_OVFL_LOCAL: u8 = 0x05;
/// Record flag: local chunked home record — `[next: MiniTid][first chunk]`.
pub const REC_HEAD_LOCAL: u8 = 0x06;

/// Sentinel TID terminating an overflow chain.
pub const TID_SENTINEL: Tid = Tid {
    page: PageId(u32::MAX),
    slot: SlotNo(u16::MAX),
};

/// Sentinel Mini-TID terminating a local overflow chain.
pub const MINITID_SENTINEL: MiniTid = MiniTid {
    lpage: u16::MAX,
    slot: SlotNo(u16::MAX),
};

/// A segment of pages holding records.
pub struct Segment {
    pool: BufferPool,
    /// Cached free-space estimate per page (updated on every op touching
    /// the page) — a simple free-space inventory.
    free: Vec<u16>,
    /// Rotating start position for free-space searches, so repeated
    /// inserts don't rescan known-full pages from the beginning.
    alloc_cursor: usize,
    stats: Stats,
}

impl Segment {
    /// Create a segment over a buffer pool.
    pub fn new(pool: BufferPool) -> Segment {
        let stats = pool.stats().clone();
        let n = pool.num_pages() as usize;
        let mut seg = Segment {
            pool,
            free: vec![0; n],
            alloc_cursor: 0,
            stats,
        };
        // For a reopened disk, lazily refresh estimates on first touch;
        // start pessimistic (0 free) except that unknown pages are probed
        // in `find_space` below.
        for i in 0..n {
            seg.free[i] = u16::MAX; // unknown — probe before use
        }
        seg
    }

    /// Page size.
    pub fn page_size(&self) -> usize {
        self.pool.page_size()
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.pool.num_pages()
    }

    /// Shared statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Access the underlying buffer pool (benches flush/clear it).
    pub fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Allocate a fresh page and return its id.
    pub fn allocate_page(&mut self) -> Result<PageId> {
        let pid = self.pool.allocate_page()?;
        self.pool.with_page_mut(pid, |buf| {
            Page::init(buf);
        })?;
        let free = self.probe_free(pid)?;
        if pid.0 as usize >= self.free.len() {
            self.free.resize(pid.0 as usize + 1, u16::MAX);
        }
        self.free[pid.0 as usize] = free;
        Ok(pid)
    }

    fn probe_free(&mut self, pid: PageId) -> Result<u16> {
        // The cast is safe: free space never exceeds the page size, which
        // is in u16 range for our page sizes.
        self.pool
            .with_page(pid, |buf| PageRef::new(buf).free_for_insert() as u16)
    }

    fn set_free_from_page(free: &mut Vec<u16>, pid: PageId, page: &Page<'_>) {
        let idx = pid.0 as usize;
        if idx >= free.len() {
            free.resize(idx + 1, u16::MAX);
        }
        free[idx] = page.free_for_insert() as u16;
    }

    // -----------------------------------------------------------------
    // Low-level record API (used by the object manager)
    // -----------------------------------------------------------------

    /// Try to insert `(flag, payload)` as a record into page `pid`.
    /// Returns the slot on success, `None` if the page lacks space.
    pub fn rec_insert_in(
        &mut self,
        pid: PageId,
        flag: u8,
        payload: &[u8],
    ) -> Result<Option<SlotNo>> {
        let mut rec = Vec::with_capacity(payload.len() + 1);
        rec.push(flag);
        rec.extend_from_slice(payload);
        let free = &mut self.free;
        let slot = self.pool.with_page_mut(pid, |buf| {
            let mut page = Page::new(buf);
            let s = page.insert(&rec);
            Self::set_free_from_page(free, pid, &page);
            s
        })?;
        if slot.is_some() {
            self.stats.inc_subtuple_write();
        }
        Ok(slot)
    }

    /// Read the raw `(flag, payload)` record at `(pid, slot)`.
    pub fn rec_read(&mut self, pid: PageId, slot: SlotNo) -> Result<(u8, Vec<u8>)> {
        self.stats.inc_subtuple_read();
        let rec = self
            .pool
            .with_page(pid, |buf| PageRef::new(buf).read(slot).map(|r| r.to_vec()))?;
        match rec {
            Some(r) if !r.is_empty() => Ok((r[0], r[1..].to_vec())),
            Some(_) => Err(StorageError::Corrupt("empty record (missing flag)".into())),
            None => Err(StorageError::BadTid(Tid::new(pid, slot))),
        }
    }

    /// Update the record at `(pid, slot)` in place; false if it no longer
    /// fits this page (record unchanged).
    pub fn rec_update(
        &mut self,
        pid: PageId,
        slot: SlotNo,
        flag: u8,
        payload: &[u8],
    ) -> Result<bool> {
        let mut rec = Vec::with_capacity(payload.len() + 1);
        rec.push(flag);
        rec.extend_from_slice(payload);
        let free = &mut self.free;
        let ok = self.pool.with_page_mut(pid, |buf| {
            let mut page = Page::new(buf);
            let ok = page.update(slot, &rec);
            Self::set_free_from_page(free, pid, &page);
            ok
        })?;
        if ok {
            self.stats.inc_subtuple_write();
        }
        Ok(ok)
    }

    /// Delete the record at `(pid, slot)`.
    pub fn rec_delete(&mut self, pid: PageId, slot: SlotNo) -> Result<()> {
        let free = &mut self.free;
        let ok = self.pool.with_page_mut(pid, |buf| {
            let mut page = Page::new(buf);
            let ok = page.delete(slot);
            Self::set_free_from_page(free, pid, &page);
            ok
        })?;
        if ok {
            Ok(())
        } else {
            Err(StorageError::BadTid(Tid::new(pid, slot)))
        }
    }

    /// Free-space estimate for inserting into `pid`.
    pub fn page_free(&mut self, pid: PageId) -> Result<usize> {
        let idx = pid.0 as usize;
        if idx >= self.free.len() || self.free[idx] == u16::MAX {
            let f = self.probe_free(pid)?;
            if idx >= self.free.len() {
                self.free.resize(idx + 1, u16::MAX);
            }
            self.free[idx] = f;
        }
        Ok(self.free[pid.0 as usize] as usize)
    }

    /// Raw copy of a whole page (object move uses this).
    pub fn copy_page_raw(&mut self, from: PageId, to: PageId) -> Result<()> {
        let data = self.pool.with_page(from, |b| b.to_vec())?;
        self.pool.with_page_mut(to, |b| b.copy_from_slice(&data))?;
        let f = self.probe_free(to)?;
        self.free[to.0 as usize] = f;
        Ok(())
    }

    /// Find (or allocate) a page with at least `need` free bytes,
    /// excluding pages for which `exclude` returns true.
    pub fn find_space(&mut self, need: usize, exclude: impl Fn(PageId) -> bool) -> Result<PageId> {
        let n = self.free.len();
        for step in 0..n {
            let i = (self.alloc_cursor + step) % n;
            let pid = PageId(i as u32);
            if exclude(pid) {
                continue;
            }
            let f = self.page_free(pid)?;
            if f > need {
                self.alloc_cursor = i;
                return Ok(pid);
            }
        }
        let max = Page::max_record_len(self.page_size()) - 1;
        if need > max {
            return Err(StorageError::RecordTooLarge { len: need, max });
        }
        let pid = self.allocate_page()?;
        self.alloc_cursor = pid.0 as usize;
        Ok(pid)
    }
    // -----------------------------------------------------------------
    // Heap API (TID-addressed; forwarding + overflow chains)
    // -----------------------------------------------------------------

    /// Largest payload storable as a single record.
    pub fn max_single(&self) -> usize {
        Page::max_record_len(self.page_size()) - 1
    }

    /// Largest data chunk per overflow record (`[next Tid][data]`).
    fn max_chunk(&self) -> usize {
        self.max_single() - Tid::ENCODED_LEN
    }

    /// Store `data` as a chain of `REC_OVFL` records (any length);
    /// returns the head of the chain.
    fn store_ovfl_chain(&mut self, data: &[u8], exclude_page: Option<PageId>) -> Result<Tid> {
        let chunk = self.max_chunk();
        let mut next = TID_SENTINEL;
        // Store back-to-front so each chunk knows its successor.
        let mut chunks: Vec<&[u8]> = data.chunks(chunk).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        for piece in chunks.iter().rev() {
            let mut payload = Vec::with_capacity(Tid::ENCODED_LEN + piece.len());
            next.encode(&mut payload);
            payload.extend_from_slice(piece);
            let mut pid = self.find_space(payload.len(), |p| Some(p) == exclude_page)?;
            let slot = match self.rec_insert_in(pid, REC_OVFL, &payload)? {
                Some(s) => s,
                None => {
                    // Free-space estimate raced with slot overhead: take a
                    // fresh page, where the chunk fits by construction.
                    pid = self.allocate_page()?;
                    self.rec_insert_in(pid, REC_OVFL, &payload)?.ok_or(
                        StorageError::RecordTooLarge {
                            len: payload.len(),
                            max: self.max_single(),
                        },
                    )?
                }
            };
            next = Tid::new(pid, slot);
        }
        Ok(next)
    }

    /// Read an overflow chain starting at `head` into `out`.
    fn read_ovfl_chain(&mut self, head: Tid, out: &mut Vec<u8>) -> Result<()> {
        let mut cur = head;
        loop {
            let (flag, payload) = self.rec_read(cur.page, cur.slot)?;
            if flag != REC_OVFL {
                return Err(StorageError::Corrupt(format!(
                    "overflow chain hit flag {flag}"
                )));
            }
            let mut pos = 0;
            let next = Tid::decode(&payload, &mut pos)
                .ok_or_else(|| StorageError::Corrupt("truncated overflow header".into()))?;
            let body = payload.get(pos..).ok_or_else(|| {
                StorageError::CorruptData("overflow record shorter than its header".into())
            })?;
            out.extend_from_slice(body);
            if next == TID_SENTINEL {
                return Ok(());
            }
            cur = next;
        }
    }

    /// Delete an overflow chain starting at `head`.
    fn free_ovfl_chain(&mut self, head: Tid) -> Result<()> {
        let mut cur = head;
        loop {
            let (flag, payload) = self.rec_read(cur.page, cur.slot)?;
            if flag != REC_OVFL {
                return Err(StorageError::Corrupt(format!(
                    "overflow chain hit flag {flag}"
                )));
            }
            self.rec_delete(cur.page, cur.slot)?;
            let mut pos = 0;
            let next = Tid::decode(&payload, &mut pos)
                .ok_or_else(|| StorageError::Corrupt("truncated overflow header".into()))?;
            if next == TID_SENTINEL {
                return Ok(());
            }
            cur = next;
        }
    }

    /// Insert a record of any length, preferring page `near` when given
    /// and fitting. Returns its permanent TID.
    pub fn insert(&mut self, data: &[u8], near: Option<PageId>) -> Result<Tid> {
        if data.len() <= self.max_single() {
            if let Some(pid) = near {
                if let Some(slot) = self.rec_insert_in(pid, REC_INLINE, data)? {
                    return Ok(Tid::new(pid, slot));
                }
            }
            let pid = self.find_space(data.len(), |_| false)?;
            if let Some(slot) = self.rec_insert_in(pid, REC_INLINE, data)? {
                return Ok(Tid::new(pid, slot));
            }
            let pid = self.allocate_page()?;
            let slot =
                self.rec_insert_in(pid, REC_INLINE, data)?
                    .ok_or(StorageError::RecordTooLarge {
                        len: data.len(),
                        max: self.max_single(),
                    })?;
            return Ok(Tid::new(pid, slot));
        }
        // Long record: head chunk + overflow chain.
        let chunk = self.max_chunk();
        let tail = self.store_ovfl_chain(&data[chunk..], None)?;
        let mut payload = Vec::with_capacity(Tid::ENCODED_LEN + chunk);
        tail.encode(&mut payload);
        payload.extend_from_slice(&data[..chunk]);
        let pid = match near {
            Some(p) if self.page_free(p)? > payload.len() => p,
            _ => self.find_space(payload.len(), |_| false)?,
        };
        if let Some(slot) = self.rec_insert_in(pid, REC_HEAD, &payload)? {
            return Ok(Tid::new(pid, slot));
        }
        let pid = self.allocate_page()?;
        let slot =
            self.rec_insert_in(pid, REC_HEAD, &payload)?
                .ok_or(StorageError::RecordTooLarge {
                    len: payload.len(),
                    max: self.max_single(),
                })?;
        Ok(Tid::new(pid, slot))
    }

    /// Read the record at `tid`, whatever its physical layout.
    pub fn read(&mut self, tid: Tid) -> Result<Vec<u8>> {
        let (flag, payload) = self.rec_read(tid.page, tid.slot)?;
        match flag {
            REC_INLINE => Ok(payload),
            REC_FWD => {
                let mut pos = 0;
                let target = Tid::decode(&payload, &mut pos)
                    .ok_or_else(|| StorageError::Corrupt("bad forward pointer".into()))?;
                let mut out = Vec::new();
                self.read_ovfl_chain(target, &mut out)?;
                Ok(out)
            }
            REC_HEAD => {
                let mut pos = 0;
                let next = Tid::decode(&payload, &mut pos)
                    .ok_or_else(|| StorageError::Corrupt("bad head header".into()))?;
                let mut out = payload
                    .get(pos..)
                    .ok_or_else(|| {
                        StorageError::CorruptData("head record shorter than its header".into())
                    })?
                    .to_vec();
                if next != TID_SENTINEL {
                    self.read_ovfl_chain(next, &mut out)?;
                }
                Ok(out)
            }
            REC_OVFL => Err(StorageError::BadTid(tid)),
            other => Err(StorageError::Corrupt(format!("unexpected flag {other}"))),
        }
    }

    /// Update the record at `tid` with `data` of any length; the TID
    /// stays valid.
    pub fn update(&mut self, tid: Tid, data: &[u8]) -> Result<()> {
        // Free any old out-of-home storage first.
        let (flag, payload) = self.rec_read(tid.page, tid.slot)?;
        match flag {
            REC_INLINE => {}
            REC_FWD | REC_HEAD => {
                let mut pos = 0;
                let next = Tid::decode(&payload, &mut pos)
                    .ok_or_else(|| StorageError::Corrupt("bad chain header".into()))?;
                if next != TID_SENTINEL {
                    self.free_ovfl_chain(next)?;
                }
            }
            REC_OVFL => return Err(StorageError::BadTid(tid)),
            other => return Err(StorageError::Corrupt(format!("unexpected flag {other}"))),
        }
        // Try to store the new value inline at home.
        if data.len() <= self.max_single()
            && self.rec_update(tid.page, tid.slot, REC_INLINE, data)?
        {
            return Ok(());
        }
        // Move the value to an overflow chain; home becomes a forward
        // pointer (7 bytes — fits wherever the old record was, except in
        // the pathological full-page-and-tiny-record corner, which
        // surfaces as a Corrupt error).
        let target = self.store_ovfl_chain(data, Some(tid.page))?;
        let mut fwd = Vec::with_capacity(Tid::ENCODED_LEN);
        target.encode(&mut fwd);
        if !self.rec_update(tid.page, tid.slot, REC_FWD, &fwd)? {
            return Err(StorageError::Corrupt(
                "page too full to place a forward pointer".into(),
            ));
        }
        Ok(())
    }

    /// Delete the record at `tid` (including any overflow chain).
    pub fn delete(&mut self, tid: Tid) -> Result<()> {
        let (flag, payload) = self.rec_read(tid.page, tid.slot)?;
        match flag {
            REC_INLINE => {}
            REC_FWD | REC_HEAD => {
                let mut pos = 0;
                let next = Tid::decode(&payload, &mut pos)
                    .ok_or_else(|| StorageError::Corrupt("bad chain header".into()))?;
                if next != TID_SENTINEL {
                    self.free_ovfl_chain(next)?;
                }
            }
            REC_OVFL => return Err(StorageError::BadTid(tid)),
            other => return Err(StorageError::Corrupt(format!("unexpected flag {other}"))),
        }
        self.rec_delete(tid.page, tid.slot)
    }

    /// Visit every live record as `(home TID, bytes)`. Records are
    /// yielded at their *home* TID; overflow records are skipped, so each
    /// record is seen exactly once.
    pub fn for_each(&mut self, mut f: impl FnMut(Tid, &[u8])) -> Result<()> {
        for p in 0..self.num_pages() {
            let pid = PageId(p);
            let recs: Vec<(SlotNo, u8)> = self.pool.with_page(pid, |buf| {
                PageRef::new(buf)
                    .live_records()
                    .filter(|(_, r)| !r.is_empty())
                    .map(|(s, r)| (s, r[0]))
                    .collect()
            })?;
            for (slot, flag) in recs {
                match flag {
                    REC_INLINE | REC_FWD | REC_HEAD => {
                        let body = self.read(Tid::new(pid, slot))?;
                        f(Tid::new(pid, slot), &body);
                    }
                    REC_OVFL => {} // reached via its home record
                    // Local-pointer records live in object pages, which
                    // are never heap-scanned; seeing one here is a bug.
                    other => {
                        return Err(StorageError::Corrupt(format!(
                            "heap scan hit object-local flag {other}"
                        )))
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn seg(page_size: usize, frames: usize) -> Segment {
        Segment::new(BufferPool::new(
            Box::new(MemDisk::new(page_size)),
            frames,
            Stats::new(),
        ))
    }

    #[test]
    fn insert_read_many_records_across_pages() {
        let mut s = seg(256, 8);
        let mut tids = Vec::new();
        for i in 0..100u32 {
            let data = vec![(i % 251) as u8; 40];
            tids.push((s.insert(&data, None).unwrap(), data));
        }
        assert!(s.num_pages() > 1, "must have spilled to multiple pages");
        for (tid, data) in &tids {
            assert_eq!(&s.read(*tid).unwrap(), data);
        }
    }

    #[test]
    fn near_hint_clusters() {
        let mut s = seg(512, 8);
        let t0 = s.insert(b"anchor", None).unwrap();
        let t1 = s.insert(b"follows", Some(t0.page)).unwrap();
        assert_eq!(t0.page, t1.page);
    }

    #[test]
    fn update_in_place() {
        let mut s = seg(256, 4);
        let tid = s.insert(b"hello world", None).unwrap();
        s.update(tid, b"hi").unwrap();
        assert_eq!(s.read(tid).unwrap(), b"hi");
    }

    #[test]
    fn update_grow_forwards_and_tid_stays_valid() {
        let mut s = seg(128, 8);
        // Fill the first page so growth cannot stay local.
        let tid = s.insert(&[1u8; 30], None).unwrap();
        while s
            .rec_insert_in(tid.page, REC_INLINE, &[2u8; 24])
            .unwrap()
            .is_some()
        {}
        let big = vec![9u8; 80];
        s.update(tid, &big).unwrap();
        assert_eq!(s.read(tid).unwrap(), big, "TID still reaches the record");
        // Update again while forwarded (shrink → back inline if it fits,
        // or stays forwarded; either way the TID answers).
        s.update(tid, b"tiny").unwrap();
        assert_eq!(s.read(tid).unwrap(), b"tiny");
        // Grow again while forwarded — no chains may form.
        let big2 = vec![7u8; 90];
        s.update(tid, &big2).unwrap();
        assert_eq!(s.read(tid).unwrap(), big2);
    }

    #[test]
    fn long_records_span_pages() {
        let mut s = seg(128, 8);
        // Far larger than one 128-byte page.
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let tid = s.insert(&data, None).unwrap();
        assert_eq!(s.read(tid).unwrap(), data);
        assert!(s.num_pages() >= 8, "chunks spread over pages");
        // Update long → longer.
        let data2: Vec<u8> = (0..2000u32).map(|i| (i % 13) as u8).collect();
        s.update(tid, &data2).unwrap();
        assert_eq!(s.read(tid).unwrap(), data2);
        // Update long → short (chain freed, record back inline).
        s.update(tid, b"short").unwrap();
        assert_eq!(s.read(tid).unwrap(), b"short");
        // All overflow records were freed: scan sees exactly one record.
        let mut n = 0;
        s.for_each(|_, r| {
            assert_eq!(r, b"short");
            n += 1;
        })
        .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn long_record_delete_frees_whole_chain() {
        let mut s = seg(128, 8);
        let data = vec![5u8; 1500];
        let tid = s.insert(&data, None).unwrap();
        s.delete(tid).unwrap();
        assert!(matches!(s.read(tid), Err(StorageError::BadTid(_))));
        let mut n = 0;
        s.for_each(|_, _| n += 1).unwrap();
        assert_eq!(n, 0, "no residue");
    }

    #[test]
    fn delete_removes_record_and_forward_body() {
        let mut s = seg(128, 8);
        let tid = s.insert(&[1u8; 30], None).unwrap();
        while s
            .rec_insert_in(tid.page, REC_INLINE, &[2u8; 24])
            .unwrap()
            .is_some()
        {}
        s.update(tid, &[9u8; 80]).unwrap(); // forwarded
        s.delete(tid).unwrap();
        assert!(matches!(s.read(tid), Err(StorageError::BadTid(_))));
        // The overflow record must be gone too: a scan sees only fillers.
        let mut seen = 0;
        s.for_each(|_, r| {
            assert_eq!(r, &[2u8; 24][..]);
            seen += 1;
        })
        .unwrap();
        assert!(seen > 0);
    }

    #[test]
    fn scan_sees_each_record_once_at_home_tid() {
        let mut s = seg(128, 8);
        let tid = s.insert(&[1u8; 30], None).unwrap();
        while s
            .rec_insert_in(tid.page, REC_INLINE, &[2u8; 24])
            .unwrap()
            .is_some()
        {}
        let big = vec![9u8; 80];
        s.update(tid, &big).unwrap(); // forwarded to another page
        let mut hits = Vec::new();
        s.for_each(|t, r| {
            if r == &big[..] {
                hits.push(t);
            }
        })
        .unwrap();
        assert_eq!(hits, vec![tid], "exactly once, at the home TID");
    }

    #[test]
    fn scan_sees_long_records_once_with_full_body() {
        let mut s = seg(128, 8);
        let long = vec![3u8; 700];
        let tid = s.insert(&long, None).unwrap();
        s.insert(b"small", None).unwrap();
        let mut seen = Vec::new();
        s.for_each(|t, r| seen.push((t, r.len()))).unwrap();
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&(tid, 700)));
    }

    #[test]
    fn reading_an_overflow_tid_directly_is_rejected() {
        let mut s = seg(128, 8);
        let tid = s.insert(&vec![1u8; 700], None).unwrap();
        // Find some overflow record and try to read it as a home TID.
        let mut ovfl: Option<Tid> = None;
        for p in 0..s.num_pages() {
            let pid = PageId(p);
            let found = s
                .pool_mut()
                .with_page(pid, |buf| {
                    PageRef::new(buf)
                        .live_records()
                        .find(|(_, r)| r.first() == Some(&REC_OVFL))
                        .map(|(slot, _)| Tid::new(pid, slot))
                })
                .unwrap();
            if let Some(t) = found {
                ovfl = Some(t);
                break;
            }
        }
        let ovfl = ovfl.expect("long record must have overflow parts");
        assert_ne!(ovfl, tid);
        assert!(matches!(s.read(ovfl), Err(StorageError::BadTid(_))));
    }

    #[test]
    fn read_deleted_is_bad_tid() {
        let mut s = seg(256, 4);
        let tid = s.insert(b"x", None).unwrap();
        s.delete(tid).unwrap();
        assert!(matches!(s.read(tid), Err(StorageError::BadTid(_))));
        assert!(matches!(s.delete(tid), Err(StorageError::BadTid(_))));
    }

    #[test]
    fn stats_count_subtuple_traffic() {
        let mut s = seg(256, 4);
        let before = s.stats().snapshot();
        let tid = s.insert(b"abc", None).unwrap();
        s.read(tid).unwrap();
        let after = s.stats().snapshot();
        let d = before.delta(&after);
        assert_eq!(d.subtuple_writes, 1);
        assert!(d.subtuple_reads >= 1);
    }

    #[test]
    fn works_with_tiny_buffer_pool() {
        // One frame: every page switch is an eviction; correctness must
        // not depend on pool size.
        let mut s = seg(128, 1);
        let mut tids = Vec::new();
        for i in 0..50u8 {
            tids.push((s.insert(&[i; 20], None).unwrap(), i));
        }
        for (tid, i) in tids {
            assert_eq!(s.read(tid).unwrap(), vec![i; 20]);
        }
    }

    #[test]
    fn empty_record_roundtrip() {
        let mut s = seg(256, 4);
        let tid = s.insert(b"", None).unwrap();
        assert_eq!(s.read(tid).unwrap(), Vec::<u8>::new());
        s.update(tid, b"now bigger").unwrap();
        assert_eq!(s.read(tid).unwrap(), b"now bigger");
    }
}
