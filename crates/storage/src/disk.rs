//! Disk managers: the page-granular persistence layer.
//!
//! Two implementations of [`Disk`]:
//! * [`FileDisk`] — a single database file, page `i` at byte offset
//!   `i * page_size`; what a deployed AIM-II instance uses;
//! * [`MemDisk`] — an in-memory vector of pages for tests and benches
//!   (I/O counts are still tracked by the buffer pool above, which is
//!   what the paper's page-access arguments are about).

use crate::error::StorageError;
use crate::tid::PageId;
use crate::Result;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page-granular storage. `Send` so that buffer pools (and the tables
/// built on them) can move between and be shared across session threads.
pub trait Disk: Send {
    /// Size of every page in bytes.
    fn page_size(&self) -> usize;
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
    /// Allocate a fresh page (zero-filled); returns its id.
    fn allocate(&mut self) -> Result<PageId>;
    /// Read page `pid` into `buf` (`buf.len() == page_size`).
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()>;
    /// Write `buf` to page `pid`.
    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()>;
    /// Flush any buffered writes to stable storage. A no-op for disks
    /// with no volatile layer underneath (e.g. [`MemDisk`]).
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// In-memory disk.
pub struct MemDisk {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

impl MemDisk {
    pub fn new(page_size: usize) -> MemDisk {
        MemDisk {
            page_size,
            pages: Vec::new(),
        }
    }
}

impl Disk for MemDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    fn allocate(&mut self) -> Result<PageId> {
        let id = PageId(self.pages.len() as u32);
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(id)
    }

    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        let p = self
            .pages
            .get(pid.0 as usize)
            .ok_or(StorageError::PageOutOfRange(pid))?;
        buf.copy_from_slice(p);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        let p = self
            .pages
            .get_mut(pid.0 as usize)
            .ok_or(StorageError::PageOutOfRange(pid))?;
        p.copy_from_slice(buf);
        Ok(())
    }
}

/// File-backed disk: one database file, pages appended on allocation.
pub struct FileDisk {
    page_size: usize,
    file: File,
    num_pages: u32,
}

impl FileDisk {
    /// Open (or create) a database file. An existing file's length must be
    /// a multiple of `page_size`.
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> Result<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} not a multiple of page size {page_size}"
            )));
        }
        Ok(FileDisk {
            page_size,
            file,
            num_pages: (len / page_size as u64) as u32,
        })
    }

    /// Flush OS buffers to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

impl Disk for FileDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn allocate(&mut self) -> Result<PageId> {
        let id = PageId(self.num_pages);
        let zeros = vec![0u8; self.page_size];
        self.file
            .seek(SeekFrom::Start(id.0 as u64 * self.page_size as u64))?;
        self.file.write_all(&zeros)?;
        self.num_pages += 1;
        Ok(id)
    }

    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        if pid.0 >= self.num_pages {
            return Err(StorageError::PageOutOfRange(pid));
        }
        self.file
            .seek(SeekFrom::Start(pid.0 as u64 * self.page_size as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        if pid.0 >= self.num_pages {
            return Err(StorageError::PageOutOfRange(pid));
        }
        self.file
            .seek(SeekFrom::Start(pid.0 as u64 * self.page_size as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        FileDisk::sync(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &mut dyn Disk) {
        let ps = disk.page_size();
        let p0 = disk.allocate().unwrap();
        let p1 = disk.allocate().unwrap();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));
        assert_eq!(disk.num_pages(), 2);

        let mut w = vec![0u8; ps];
        w[0] = 0xAB;
        w[ps - 1] = 0xCD;
        disk.write_page(p1, &w).unwrap();

        let mut r = vec![0u8; ps];
        disk.read_page(p1, &mut r).unwrap();
        assert_eq!(r, w);
        disk.read_page(p0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0), "fresh page is zeroed");

        assert!(disk.read_page(PageId(99), &mut r).is_err());
        assert!(disk.write_page(PageId(99), &w).is_err());
    }

    #[test]
    fn memdisk_basics() {
        exercise(&mut MemDisk::new(512));
    }

    #[test]
    fn filedisk_basics_and_reopen() {
        let dir = std::env::temp_dir().join(format!("aim2_disk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("basics.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut d = FileDisk::open(&path, 512).unwrap();
            exercise(&mut d);
            d.sync().unwrap();
        }
        // Re-open: pages persist.
        let mut d = FileDisk::open(&path, 512).unwrap();
        assert_eq!(d.num_pages(), 2);
        let mut r = vec![0u8; 512];
        d.read_page(PageId(1), &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        assert_eq!(r[511], 0xCD);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filedisk_rejects_misaligned_file() {
        let dir = std::env::temp_dir().join(format!("aim2_disk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("misaligned.db");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(FileDisk::open(&path, 512).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
