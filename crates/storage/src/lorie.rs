//! The Lorie /LP83/ baseline: complex objects **on top of** flat storage.
//!
//! "In Lorie's proposal a complex object is implemented as a series of
//! tuples logically linked together. The tuples are stored as part of
//! normal, flat tables with additional attributes not seen by the user
//! ... Child, sibling, father, and root pointers are used for that
//! purpose" (§4.1). The advantage is that an existing DBMS (System R)
//! needs few changes; the paper's criticism is that complex objects then
//! are a "special animal": structure and data are interleaved, partial
//! retrieval must chase pointers through data records, and relocation
//! must rewrite embedded TIDs.
//!
//! This module reproduces that design faithfully over our own flat heap
//! so benches can compare it with the Mini-Directory approach:
//!
//! * every (sub)tuple is one heap record with four hidden TID pointers
//!   (`father`, `root`, `first child`, `next sibling`) ahead of its
//!   visible atoms;
//! * building the chains costs pointer *rewrites* (children are inserted
//!   after their parents, so parent/sibling pointers are patched
//!   afterwards) — counted in [`crate::stats::Stats::pointer_rewrites`];
//! * [`LorieStore::move_object`] must rewrite every pointer of the
//!   object, in contrast to the MD page-list move.

use crate::segment::Segment;
use crate::stats::Stats;
use crate::tid::{PageId, SlotNo, Tid};
use crate::Result;
use aim2_model::encode::{decode_atoms, encode_atoms};
use aim2_model::{Atom, TableSchema, TableValue, Tuple, Value};

/// "No pointer" marker.
const NIL: Tid = Tid {
    page: PageId(u32::MAX),
    slot: SlotNo(u16::MAX),
};

/// Hidden header: attr slot (1) + father + root + child + sibling.
const HDR_LEN: usize = 1 + 4 * Tid::ENCODED_LEN;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Hidden {
    /// Which table-valued attribute of the father this record belongs to
    /// (0xFF for the object's root record).
    attr_slot: u8,
    father: Tid,
    root: Tid,
    child: Tid,
    sibling: Tid,
}

impl Hidden {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.attr_slot);
        self.father.encode(out);
        self.root.encode(out);
        self.child.encode(out);
        self.sibling.encode(out);
    }

    fn decode(buf: &[u8]) -> Option<(Hidden, &[u8])> {
        if buf.len() < HDR_LEN {
            return None;
        }
        let attr_slot = buf[0];
        let mut pos = 1;
        let father = Tid::decode(buf, &mut pos)?;
        let root = Tid::decode(buf, &mut pos)?;
        let child = Tid::decode(buf, &mut pos)?;
        let sibling = Tid::decode(buf, &mut pos)?;
        Some((
            Hidden {
                attr_slot,
                father,
                root,
                child,
                sibling,
            },
            &buf[pos..],
        ))
    }
}

/// Complex objects chained over flat records, /LP83/-style.
pub struct LorieStore {
    seg: Segment,
    roots: Vec<Tid>,
    stats: Stats,
}

impl LorieStore {
    pub fn new(seg: Segment) -> LorieStore {
        let stats = seg.stats().clone();
        LorieStore {
            seg,
            roots: Vec::new(),
            stats,
        }
    }

    /// The underlying segment.
    pub fn segment_mut(&mut self) -> &mut Segment {
        &mut self.seg
    }

    /// Root TIDs of all stored objects.
    pub fn roots(&self) -> &[Tid] {
        &self.roots
    }

    fn write_record(
        &mut self,
        hidden: &Hidden,
        atoms: &[&Atom],
        near: Option<PageId>,
    ) -> Result<Tid> {
        let mut payload = Vec::with_capacity(HDR_LEN + 32);
        hidden.encode(&mut payload);
        payload.extend_from_slice(&encode_atoms(atoms.iter().copied()));
        self.seg.insert(&payload, near)
    }

    fn read_record(&mut self, tid: Tid) -> Result<(Hidden, Vec<Atom>)> {
        let bytes = self.seg.read(tid)?;
        let (hidden, rest) = Hidden::decode(&bytes)
            .ok_or_else(|| crate::StorageError::Corrupt("short Lorie record".into()))?;
        Ok((hidden, decode_atoms(rest)?))
    }

    fn patch_pointer(&mut self, tid: Tid, f: impl FnOnce(&mut Hidden)) -> Result<()> {
        let bytes = self.seg.read(tid)?;
        let (mut hidden, rest) = Hidden::decode(&bytes)
            .ok_or_else(|| crate::StorageError::Corrupt("short Lorie record".into()))?;
        f(&mut hidden);
        let mut payload = Vec::with_capacity(bytes.len());
        hidden.encode(&mut payload);
        payload.extend_from_slice(rest);
        self.seg.update(tid, &payload)?;
        self.stats.inc_pointer_rewrite();
        Ok(())
    }

    /// Store one tuple of `schema` as a pointer-chained complex object.
    pub fn insert_object(&mut self, schema: &TableSchema, tuple: &Tuple) -> Result<Tid> {
        let root = self.insert_rec(schema, tuple, 0xFF, NIL, NIL)?;
        self.roots.push(root);
        Ok(root)
    }

    fn insert_rec(
        &mut self,
        schema: &TableSchema,
        tuple: &Tuple,
        attr_slot: u8,
        father: Tid,
        root: Tid,
    ) -> Result<Tid> {
        let atoms = tuple.atomic_fields(schema);
        let hidden = Hidden {
            attr_slot,
            father,
            root,
            child: NIL,
            sibling: NIL,
        };
        let near = if father == NIL {
            None
        } else {
            Some(father.page)
        };
        let me = self.write_record(&hidden, &atoms, near)?;
        let my_root = if root == NIL { me } else { root };
        if root == NIL {
            // Fix the root pointer of the object's own record.
            self.patch_pointer(me, |h| h.root = me)?;
        }
        // Insert children (all subtable elements), chaining siblings.
        let mut prev: Option<Tid> = None;
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
            let sub_value = tuple.fields[attr_idx]
                .as_table()
                .ok_or_else(|| crate::StorageError::Corrupt("expected table value".into()))?;
            for elem in &sub_value.tuples {
                let child = self.insert_rec(sub_schema, elem, slot as u8, me, my_root)?;
                match prev {
                    None => self.patch_pointer(me, |h| h.child = child)?,
                    Some(p) => self.patch_pointer(p, |h| h.sibling = child)?,
                }
                prev = Some(child);
            }
        }
        Ok(me)
    }

    /// Materialize the whole object at `root`.
    pub fn read_object(&mut self, schema: &TableSchema, root: Tid) -> Result<Tuple> {
        self.stats.inc_object_visit();
        self.read_rec(schema, root)
    }

    fn read_rec(&mut self, schema: &TableSchema, tid: Tid) -> Result<Tuple> {
        let (hidden, atoms) = self.read_record(tid)?;
        // Gather children per attribute slot by walking the sibling chain
        // (structure and data interleaved: every hop reads a data record).
        let nslots = schema.table_indices().len();
        let mut per_slot: Vec<Vec<Tid>> = vec![Vec::new(); nslots];
        let mut cur = hidden.child;
        while cur != NIL {
            let (h, _) = self.read_record(cur)?;
            if (h.attr_slot as usize) < nslots {
                per_slot[h.attr_slot as usize].push(cur);
            }
            cur = h.sibling;
        }
        let mut subtables = Vec::with_capacity(nslots);
        for (slot, attr_idx) in schema.table_indices().into_iter().enumerate() {
            let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
            let mut tuples = Vec::with_capacity(per_slot[slot].len());
            for t in &per_slot[slot] {
                tuples.push(self.read_rec(sub_schema, *t)?);
            }
            subtables.push(TableValue {
                kind: sub_schema.kind,
                tuples,
            });
        }
        assemble(schema, atoms, subtables)
    }

    /// Read a single first-level subtable — must chase the *whole* child
    /// chain (reading every child record, whatever subtable it belongs
    /// to), which is the partial-retrieval weakness the paper points out.
    pub fn read_subtable(
        &mut self,
        schema: &TableSchema,
        root: Tid,
        attr_name: &str,
    ) -> Result<TableValue> {
        let attr_idx = schema
            .attr_index(attr_name)
            .ok_or_else(|| crate::StorageError::BadPath(attr_name.to_string()))?;
        let slot = schema
            .table_indices()
            .iter()
            .position(|&i| i == attr_idx)
            .ok_or_else(|| crate::StorageError::BadPath(attr_name.to_string()))?;
        let sub_schema = schema.attrs[attr_idx].kind.as_table().expect("table");
        let (hidden, _) = self.read_record(root)?;
        let mut tuples = Vec::new();
        let mut cur = hidden.child;
        while cur != NIL {
            let (h, _) = self.read_record(cur)?;
            if h.attr_slot as usize == slot {
                tuples.push(self.read_rec(sub_schema, cur)?);
            }
            cur = h.sibling;
        }
        Ok(TableValue {
            kind: sub_schema.kind,
            tuples,
        })
    }

    /// Collect every record TID of the object at `root` (pre-order).
    fn collect_tids(&mut self, tid: Tid, out: &mut Vec<Tid>) -> Result<()> {
        out.push(tid);
        let (hidden, _) = self.read_record(tid)?;
        let mut cur = hidden.child;
        while cur != NIL {
            self.collect_tids(cur, out)?;
            let (h, _) = self.read_record(cur)?;
            cur = h.sibling;
        }
        Ok(())
    }

    /// Number of records the object comprises.
    pub fn object_size(&mut self, root: Tid) -> Result<usize> {
        let mut tids = Vec::new();
        self.collect_tids(root, &mut tids)?;
        Ok(tids.len())
    }

    /// Move the object to a different page set. Every record is copied
    /// and **every pointer into it must be rewritten** — O(#records)
    /// pointer rewrites, against zero for the MD/page-list scheme.
    /// Returns the new root TID (even the object's handle changes).
    pub fn move_object(&mut self, schema: &TableSchema, root: Tid) -> Result<Tid> {
        let tuple = self.read_object(schema, root)?;
        let mut tids = Vec::new();
        self.collect_tids(root, &mut tids)?;
        for tid in tids {
            self.seg.delete(tid)?;
        }
        self.roots.retain(|&r| r != root);
        self.insert_object(schema, &tuple)
    }

    /// Delete the object at `root` record by record.
    pub fn delete_object(&mut self, root: Tid) -> Result<()> {
        let mut tids = Vec::new();
        self.collect_tids(root, &mut tids)?;
        for tid in tids {
            self.seg.delete(tid)?;
        }
        self.roots.retain(|&r| r != root);
        Ok(())
    }
}

fn assemble(
    schema: &TableSchema,
    atoms: Vec<Atom>,
    mut subtables: Vec<TableValue>,
) -> Result<Tuple> {
    let mut fields = Vec::with_capacity(schema.attrs.len());
    let mut atom_it = atoms.into_iter();
    let mut sub_it = subtables.drain(..);
    for attr in &schema.attrs {
        match &attr.kind {
            aim2_model::AttrKind::Atomic(_) => {
                fields.push(Value::Atom(atom_it.next().ok_or_else(|| {
                    crate::StorageError::Corrupt("Lorie record short on atoms".into())
                })?))
            }
            aim2_model::AttrKind::Table(_) => {
                fields.push(Value::Table(sub_it.next().ok_or_else(|| {
                    crate::StorageError::Corrupt("missing subtable".into())
                })?))
            }
        }
    }
    Ok(Tuple::new(fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::minidir::LayoutKind;
    use crate::object::ObjectStore;
    use aim2_model::fixtures;

    fn store() -> LorieStore {
        let pool = BufferPool::new(Box::new(MemDisk::new(512)), 64, Stats::new());
        LorieStore::new(Segment::new(pool))
    }

    #[test]
    fn roundtrip_department_314() {
        let schema = fixtures::departments_schema();
        let t = fixtures::department_314();
        let mut ls = store();
        let root = ls.insert_object(&schema, &t).unwrap();
        assert_eq!(ls.read_object(&schema, root).unwrap(), t);
        // 1 dept + 2 projects + 7 members + 3 equip = 13 records.
        assert_eq!(ls.object_size(root).unwrap(), 13);
    }

    #[test]
    fn building_chains_costs_pointer_rewrites() {
        let schema = fixtures::departments_schema();
        let t = fixtures::department_314();
        let mut ls = store();
        let before = ls.stats.snapshot();
        ls.insert_object(&schema, &t).unwrap();
        let after = ls.stats.snapshot();
        // Root-pointer patch + one child/sibling patch per record below
        // the root (12) + 1 root self-patch = ≥ 13.
        assert!(before.delta(&after).pointer_rewrites >= 12);
    }

    #[test]
    fn move_rewrites_pointers_unlike_md_store() {
        let schema = fixtures::departments_schema();
        let t = fixtures::department_314();

        let mut ls = store();
        let root = ls.insert_object(&schema, &t).unwrap();
        let before = ls.stats.snapshot();
        let new_root = ls.move_object(&schema, root).unwrap();
        let lorie_rewrites = before.delta(&ls.stats.snapshot()).pointer_rewrites;
        assert!(lorie_rewrites >= 12, "Lorie move rewrites O(n) pointers");
        assert_eq!(ls.read_object(&schema, new_root).unwrap(), t);

        // The MD store moves the same object with zero pointer rewrites.
        let pool = BufferPool::new(Box::new(MemDisk::new(512)), 64, Stats::new());
        let mut os = ObjectStore::new(Segment::new(pool), LayoutKind::Ss3);
        let h = os.insert_object(&schema, &t).unwrap();
        let stats = os.stats();
        let b = stats.snapshot();
        os.move_object(h).unwrap();
        assert_eq!(b.delta(&stats.snapshot()).pointer_rewrites, 0);
    }

    #[test]
    fn read_one_subtable_chases_whole_child_chain() {
        let schema = fixtures::departments_schema();
        let t = fixtures::department_314();
        let mut ls = store();
        let root = ls.insert_object(&schema, &t).unwrap();
        let before = ls.stats.snapshot();
        let equip = ls.read_subtable(&schema, root, "EQUIP").unwrap();
        let reads = before.delta(&ls.stats.snapshot()).subtuple_reads;
        assert_eq!(equip.len(), 3);
        // Must read root + every first-level child record (2 projects + 3
        // equip) at least — i.e. it cannot skip the PROJECTS records.
        assert!(reads >= 6, "only {reads} reads");
    }

    #[test]
    fn delete_removes_all_records() {
        let schema = fixtures::departments_schema();
        let t = fixtures::department_314();
        let mut ls = store();
        let root = ls.insert_object(&schema, &t).unwrap();
        ls.delete_object(root).unwrap();
        assert!(ls.read_object(&schema, root).is_err());
        let mut live = 0;
        ls.seg.for_each(|_, _| live += 1).unwrap();
        assert_eq!(live, 0);
        assert!(ls.roots().is_empty());
    }
}
