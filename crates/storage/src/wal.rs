//! Physical write-ahead log: before-image (undo) logging for crash-safe
//! checkpoints.
//!
//! The engine's consistency unit is the **checkpoint epoch**: between two
//! [`Database::checkpoint`]s every page write-back (eviction or flush)
//! first appends the page's *before-image* — its on-disk content as of
//! the last checkpoint — to a single WAL file shared by all of the
//! database's segments. If the process dies mid-epoch, recovery replays
//! the before-images and the database is back at its last checkpoint
//! exactly; if it dies after the checkpoint's commit point (the atomic
//! catalog rename), the WAL belongs to an already-committed epoch and is
//! discarded. The commit protocol lives in `aim2::persist`; this module
//! is the log itself.
//!
//! File layout:
//!
//! ```text
//! header:  magic "AIM2WAL1" | epoch u32 | page_size u32
//! frame*:  seg_name_len u16 | seg_name | pid u32 | data_len u32 | data
//!          | crc32 u32                     (crc covers seg_name..data)
//! ```
//!
//! Every frame is CRC-checksummed. On recovery, a bad frame at the very
//! tail of the log is a *torn write* from the crash itself — expected,
//! tolerated, and counted in [`Stats`] as `torn_pages_detected` (the
//! page it would have protected was not yet overwritten, by the
//! write-ahead rule). A bad frame **followed by more log** cannot be a
//! crash artifact and surfaces as the typed
//! [`StorageError::ChecksumMismatch`].
//!
//! [`Database::checkpoint`]: ../../aim2/struct.Database.html#method.checkpoint

use crate::error::StorageError;
use crate::faultdisk::FaultInjector;
use crate::stats::Stats;
use crate::tid::PageId;
use crate::Result;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

const WAL_MAGIC: &[u8; 8] = b"AIM2WAL1";
const HEADER_LEN: usize = 16;

/// The conventional WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.aim2";

/// The shared handle every buffer pool (and the transaction layer)
/// holds on the database's single log.
pub type SharedWal = Arc<Mutex<Wal>>;

/// An open write-ahead log (append side).
pub struct Wal {
    file: File,
    path: PathBuf,
    epoch: u32,
    page_size: usize,
    stats: Stats,
    fault: Option<FaultInjector>,
    /// Appends since the last [`Wal::sync`] — lets callers group-flush.
    unsynced: bool,
    /// Monotonic count of appends over the log's lifetime (not reset by
    /// [`Wal::reset`]); the group committer's "how far must be durable"
    /// coordinate.
    appended_seq: u64,
    /// The append sequence number through which the log is known to be
    /// on stable storage.
    synced_seq: u64,
}

impl Wal {
    /// Create (or truncate) the log at `path` for `epoch`.
    pub fn create(
        path: impl AsRef<Path>,
        epoch: u32,
        page_size: usize,
        stats: Stats,
        fault: Option<FaultInjector>,
    ) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut wal = Wal {
            file,
            path,
            epoch,
            page_size,
            stats,
            fault,
            unsynced: false,
            appended_seq: 0,
            synced_seq: 0,
        };
        wal.write_header()?;
        Ok(wal)
    }

    fn write_header(&mut self) -> Result<()> {
        let mut h = Vec::with_capacity(HEADER_LEN);
        h.extend_from_slice(WAL_MAGIC);
        h.extend_from_slice(&self.epoch.to_le_bytes());
        h.extend_from_slice(&(self.page_size as u32).to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.raw_write(&h)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The epoch this log protects.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Append one before-image frame: page `pid` of segment file `seg`
    /// held `data` at the last checkpoint. Buffered — call [`Wal::sync`]
    /// before the page write it protects reaches disk.
    pub fn append_before_image(&mut self, seg: &str, pid: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), self.page_size);
        let _t = self.stats.time_wal_append();
        let mut frame = Vec::with_capacity(2 + seg.len() + 8 + data.len() + 4);
        frame.extend_from_slice(&(seg.len() as u16).to_le_bytes());
        frame.extend_from_slice(seg.as_bytes());
        frame.extend_from_slice(&pid.0.to_le_bytes());
        frame.extend_from_slice(&(data.len() as u32).to_le_bytes());
        frame.extend_from_slice(data);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        self.file.seek(SeekFrom::End(0))?;
        self.raw_write(&frame)?;
        self.unsynced = true;
        self.appended_seq += 1;
        self.stats.inc_wal_append();
        Ok(())
    }

    /// Lifetime append count (the latest append's sequence number).
    pub fn appended_seq(&self) -> u64 {
        self.appended_seq
    }

    /// Sequence number through which appends are durable.
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// Flush appended frames to stable storage (the write-ahead barrier).
    /// No-op when nothing was appended since the last sync.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced {
            let _t = self.stats.time_wal_fsync();
            self.file.sync_data()?;
            self.unsynced = false;
        }
        self.synced_seq = self.appended_seq;
        Ok(())
    }

    /// Truncate the log and start a new epoch — called right after a
    /// checkpoint commits, making the old before-images unreachable.
    pub fn reset(&mut self, epoch: u32) -> Result<()> {
        self.file.set_len(0)?;
        self.epoch = epoch;
        self.unsynced = false;
        self.synced_seq = self.appended_seq;
        self.write_header()?;
        Ok(())
    }

    /// The log's path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write through the fault injector, so the harness can kill or tear
    /// WAL writes exactly like data-page writes.
    fn raw_write(&mut self, bytes: &[u8]) -> Result<()> {
        match &self.fault {
            None => {
                self.file.write_all(bytes)?;
                Ok(())
            }
            Some(inj) => match inj.plan_write(bytes.len())? {
                Some(torn_len) => {
                    self.file.write_all(&bytes[..torn_len])?;
                    let _ = self.file.sync_data();
                    Err(StorageError::Io(std::io::Error::other(
                        "fault injection: WAL write torn, disk stopped",
                    )))
                }
                None => {
                    self.file.write_all(bytes)?;
                    Ok(())
                }
            },
        }
    }
}

/// Leader-based group commit over a [`SharedWal`].
///
/// A committing session appends its log frames (under whatever storage
/// locks it already holds), notes the log's `appended_seq`, and calls
/// [`GroupCommit::sync_through`]. The first arrival becomes the *leader*
/// and issues one physical sync covering **every** append made so far —
/// including commits that piled up behind it; the others ride the batch
/// and return without touching the disk. One fsync thus makes many
/// commits durable: `wal_appends` grows per commit, the
/// `group_commit_batches` counter only per physical sync.
pub struct GroupCommit {
    state: Mutex<GcState>,
    cv: Condvar,
    stats: Stats,
}

struct GcState {
    /// A leader is currently inside `Wal::sync`.
    syncing: bool,
}

impl GroupCommit {
    /// A fresh group committer reporting into `stats`.
    pub fn new(stats: Stats) -> GroupCommit {
        GroupCommit {
            state: Mutex::new(GcState { syncing: false }),
            cv: Condvar::new(),
            stats,
        }
    }

    /// Block until append sequence number `seq` is durable, batching the
    /// physical sync with every other commit that reached the log first.
    pub fn sync_through(&self, wal: &SharedWal, seq: u64) -> Result<()> {
        loop {
            if wal.lock().unwrap().synced_seq() >= seq {
                return Ok(()); // rode an earlier leader's batch
            }
            {
                let st = self.state.lock().unwrap();
                if st.syncing {
                    // A leader is at work; wait for its batch, then
                    // re-check whether it covered us.
                    let _guard = self.cv.wait(st).unwrap();
                    continue;
                }
            }
            let mut st = self.state.lock().unwrap();
            if st.syncing {
                continue; // lost the election race, wait again
            }
            st.syncing = true;
            drop(st);
            // Leader: one sync covers every append made up to now, not
            // just our own `seq`.
            let res = {
                let mut w = wal.lock().unwrap();
                if w.synced_seq() >= seq {
                    Ok(())
                } else {
                    let r = w.sync();
                    if r.is_ok() {
                        self.stats.inc_group_commit_batch();
                    }
                    r
                }
            };
            let mut st = self.state.lock().unwrap();
            st.syncing = false;
            self.cv.notify_all();
            drop(st);
            return res;
        }
    }
}

/// One decoded before-image frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// Segment file name the page belongs to.
    pub seg: String,
    /// The page within that segment.
    pub pid: PageId,
    /// The page's content at the last checkpoint.
    pub data: Vec<u8>,
}

/// Everything recovery needs from an on-disk WAL.
#[derive(Debug)]
pub struct WalContents {
    /// The epoch the log was protecting.
    pub epoch: u32,
    /// Page size recorded at log creation.
    pub page_size: usize,
    /// All intact frames, in append order.
    pub frames: Vec<WalFrame>,
    /// Whether a torn frame was found (and tolerated) at the tail.
    pub torn_tail: bool,
}

/// Read and validate a WAL file for recovery.
///
/// Returns `Ok(None)` if the file does not exist or its header is
/// incomplete/invalid — the latter only happens when the crash hit the
/// instant of log creation or [`Wal::reset`], both of which occur while
/// no un-checkpointed page write has reached disk, so skipping replay is
/// safe. A checksum failure *inside* the log (more frames follow) is the
/// typed [`StorageError::ChecksumMismatch`].
pub fn read_wal(path: impl AsRef<Path>, stats: &Stats) -> Result<Option<WalContents>> {
    let mut file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    if buf.len() < HEADER_LEN || &buf[..8] != WAL_MAGIC {
        // Crash during create/reset: header never made it. No frame can
        // exist, so there is nothing to replay.
        return Ok(None);
    }
    let epoch = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let page_size = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    let mut frames = Vec::new();
    let mut torn_tail = false;
    let mut pos = HEADER_LEN;
    while pos < buf.len() {
        match decode_frame(&buf[pos..]) {
            FrameParse::Ok { frame, consumed } => {
                frames.push(frame);
                pos += consumed;
            }
            FrameParse::Truncated => {
                // The frame runs past end-of-file: the crash tore the
                // tail append. Expected; the protected page write never
                // happened (write-ahead rule), so dropping it is safe.
                stats.inc_torn_page_detected();
                torn_tail = true;
                break;
            }
            FrameParse::BadCrc { consumed } => {
                stats.inc_torn_page_detected();
                if pos + consumed >= buf.len() {
                    // Complete-length tail frame with bad bytes: a torn
                    // in-place write of the final append. Same reasoning
                    // as Truncated.
                    torn_tail = true;
                    break;
                }
                // Corruption in the middle of the log — a crash only
                // ever damages the tail, so this is real corruption and
                // must not be silently skipped.
                return Err(StorageError::ChecksumMismatch(format!(
                    "WAL frame at byte {pos} failed CRC with {} bytes of log after it",
                    buf.len() - pos - consumed
                )));
            }
        }
    }
    Ok(Some(WalContents {
        epoch,
        page_size,
        frames,
        torn_tail,
    }))
}

enum FrameParse {
    Ok { frame: WalFrame, consumed: usize },
    Truncated,
    BadCrc { consumed: usize },
}

fn decode_frame(b: &[u8]) -> FrameParse {
    let Some(seg_len) = b
        .get(..2)
        .map(|s| u16::from_le_bytes(s.try_into().unwrap()) as usize)
    else {
        return FrameParse::Truncated;
    };
    let Some(seg_bytes) = b.get(2..2 + seg_len) else {
        return FrameParse::Truncated;
    };
    let p = 2 + seg_len;
    let Some(head) = b.get(p..p + 8) else {
        return FrameParse::Truncated;
    };
    let pid = u32::from_le_bytes(head[..4].try_into().unwrap());
    let data_len = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
    let body_end = p + 8 + data_len;
    let Some(data) = b.get(p + 8..body_end) else {
        return FrameParse::Truncated;
    };
    let Some(crc_bytes) = b.get(body_end..body_end + 4) else {
        return FrameParse::Truncated;
    };
    let consumed = body_end + 4;
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(&b[..body_end]) != stored {
        return FrameParse::BadCrc { consumed };
    }
    let Ok(seg) = std::str::from_utf8(seg_bytes) else {
        return FrameParse::BadCrc { consumed };
    };
    FrameParse::Ok {
        frame: WalFrame {
            seg: seg.to_string(),
            pid: PageId(pid),
            data: data.to_vec(),
        },
        consumed,
    }
}

/// CRC-32 (IEEE 802.3, reflected), bytewise table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aim2_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_sync_read_roundtrip() {
        let path = tmp("roundtrip.wal");
        let stats = Stats::new();
        let mut wal = Wal::create(&path, 3, 64, stats.clone(), None).unwrap();
        wal.append_before_image("a.seg", PageId(5), &[1u8; 64])
            .unwrap();
        wal.append_before_image("b.seg", PageId(0), &[2u8; 64])
            .unwrap();
        wal.sync().unwrap();
        assert_eq!(stats.wal_appends(), 2);
        let c = read_wal(&path, &stats).unwrap().unwrap();
        assert_eq!(c.epoch, 3);
        assert_eq!(c.page_size, 64);
        assert!(!c.torn_tail);
        assert_eq!(
            c.frames,
            vec![
                WalFrame {
                    seg: "a.seg".into(),
                    pid: PageId(5),
                    data: vec![1u8; 64]
                },
                WalFrame {
                    seg: "b.seg".into(),
                    pid: PageId(0),
                    data: vec![2u8; 64]
                },
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_truncates_and_bumps_epoch() {
        let path = tmp("reset.wal");
        let stats = Stats::new();
        let mut wal = Wal::create(&path, 1, 32, stats.clone(), None).unwrap();
        wal.append_before_image("x.seg", PageId(1), &[9u8; 32])
            .unwrap();
        wal.sync().unwrap();
        wal.reset(2).unwrap();
        let c = read_wal(&path, &stats).unwrap().unwrap();
        assert_eq!(c.epoch, 2);
        assert!(c.frames.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_and_counted() {
        let path = tmp("torn_tail.wal");
        let stats = Stats::new();
        let mut wal = Wal::create(&path, 1, 32, stats.clone(), None).unwrap();
        wal.append_before_image("x.seg", PageId(1), &[9u8; 32])
            .unwrap();
        wal.append_before_image("x.seg", PageId(2), &[8u8; 32])
            .unwrap();
        wal.sync().unwrap();
        // Tear the last frame: chop 5 bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        let c = read_wal(&path, &stats).unwrap().unwrap();
        assert!(c.torn_tail);
        assert_eq!(c.frames.len(), 1, "intact first frame survives");
        assert_eq!(stats.torn_pages_detected(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let path = tmp("midlog.wal");
        let stats = Stats::new();
        let mut wal = Wal::create(&path, 1, 32, stats.clone(), None).unwrap();
        wal.append_before_image("x.seg", PageId(1), &[9u8; 32])
            .unwrap();
        wal.append_before_image("x.seg", PageId(2), &[8u8; 32])
            .unwrap();
        wal.sync().unwrap();
        // Flip a data byte inside the FIRST frame (not the tail).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal(&path, &stats) {
            Err(StorageError::ChecksumMismatch(_)) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_batches_concurrent_syncs() {
        let path = tmp("group_commit.wal");
        let stats = Stats::new();
        let wal: SharedWal = Arc::new(Mutex::new(
            Wal::create(&path, 1, 32, stats.clone(), None).unwrap(),
        ));
        let gc = Arc::new(GroupCommit::new(stats.clone()));
        // 8 committers append one frame each, then ask for durability.
        let mut handles = Vec::new();
        for i in 0..8u32 {
            let wal = wal.clone();
            let gc = gc.clone();
            handles.push(std::thread::spawn(move || {
                let seq = {
                    let mut w = wal.lock().unwrap();
                    w.append_before_image("t.seg", PageId(i), &[i as u8; 32])
                        .unwrap();
                    w.appended_seq()
                };
                gc.sync_through(&wal, seq).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.wal_appends(), 8);
        let batches = stats.group_commit_batches();
        assert!(
            (1..=8).contains(&batches),
            "8 commits need 1..=8 physical syncs, got {batches}"
        );
        assert!(wal.lock().unwrap().synced_seq() >= 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_and_headerless_file_mean_no_replay() {
        let stats = Stats::new();
        assert!(read_wal(tmp("nonexistent.wal"), &stats).unwrap().is_none());
        let path = tmp("short.wal");
        std::fs::write(&path, b"AIM2").unwrap();
        assert!(read_wal(&path, &stats).unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
