//! Columnar cold-store blocks for flat (1NF) tables.
//!
//! The paper's "integrated view on flat tables and hierarchies" keeps
//! flat tables in the same segment machinery as complex objects; this
//! module adds the modern conclusion of that integration: cold flat
//! rows are frozen into immutable **columnar blocks** while hot rows
//! (and all NF² data) stay in slotted-page heaps.
//!
//! One block is one segment record (the record manager's overflow
//! chains make the payload size irrelevant), so blocks ride the
//! existing buffer pool, WAL-safe eviction and checkpoint paths with
//! zero new I/O machinery. Inside the record:
//!
//! * every column is **dictionary-encoded**: the distinct atoms in
//!   first-occurrence order, then one `u32` code per row;
//! * every column carries a **zone map** (min/max atom), duplicated in
//!   the catalog's [`ColdBlockMeta`] so scans can skip a block without
//!   touching its pages at all;
//! * the header is **CRC-guarded** independently of the page-level
//!   checksums — a flipped bit inside a block is detected even when the
//!   surrounding page still verifies (e.g. after an in-memory flip).

use crate::tid::Tid;
use crate::wal::crc32;
use crate::{Result, StorageError};
use aim2_model::encode::{decode_atom, encode_atom};
use aim2_model::{Atom, Tuple, Value};

/// First bytes of every encoded block.
pub const BLOCK_MAGIC: [u8; 4] = *b"A2CB";
/// Encoding version.
pub const BLOCK_VERSION: u8 = 1;
/// Rows per block a freeze aims for (the batch protocol's natural
/// batch size).
pub const BLOCK_ROWS: usize = 1024;

/// High bit of a packed `u64` row key marking a cold (block-resident)
/// row. Heap TIDs pack into 48 bits ([`Tid::to_u64`]), so the two key
/// spaces are disjoint.
pub const COLD_KEY_BIT: u64 = 1 << 63;

/// Pack a cold row address `(block ordinal, row within block)` into an
/// opaque cursor key.
pub fn cold_key(block: usize, row: u32) -> u64 {
    COLD_KEY_BIT | ((block as u64) << 32) | row as u64
}

/// Inverse of [`cold_key`]; `None` for heap keys.
pub fn split_cold_key(key: u64) -> Option<(usize, u32)> {
    if key & COLD_KEY_BIT == 0 {
        return None;
    }
    let k = key & !COLD_KEY_BIT;
    Some(((k >> 32) as usize, (k & 0xFFFF_FFFF) as u32))
}

/// Per-column `(min, max)` zone maps for one block.
pub type BlockZones = Vec<(Atom, Atom)>;

/// Catalog-resident description of one frozen block: where it lives,
/// how many rows it holds, and the per-column zone maps that let a scan
/// prune it before any decode.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdBlockMeta {
    /// Home TID of the block record in the table's segment.
    pub tid: Tid,
    /// Rows frozen into the block.
    pub rows: u32,
    /// Per-column `(min, max)` over the block's values.
    pub zones: BlockZones,
}

/// One decoded column: the dictionary in first-occurrence order and one
/// code per row.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedColumn {
    pub dict: Vec<Atom>,
    pub codes: Vec<u32>,
}

impl DecodedColumn {
    /// Dictionary code of `key`, if the block contains it at all — the
    /// equality short-circuit: a missing key rules out every row
    /// without looking at a single code.
    pub fn code_of(&self, key: &Atom) -> Option<u32> {
        self.dict.iter().position(|a| a == key).map(|i| i as u32)
    }

    /// The atom at row `r`.
    pub fn atom(&self, r: usize) -> Option<&Atom> {
        self.dict.get(*self.codes.get(r)? as usize)
    }
}

/// A fully decoded block: column-major, rows materialized lazily.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedBlock {
    pub rows: u32,
    pub columns: Vec<DecodedColumn>,
}

impl DecodedBlock {
    /// Materialize row `r` as a flat tuple (clones one atom per
    /// column).
    pub fn row(&self, r: usize) -> Result<Tuple> {
        if r >= self.rows as usize {
            return Err(StorageError::Corrupt(format!(
                "cold row {r} beyond block of {} rows",
                self.rows
            )));
        }
        let fields = self
            .columns
            .iter()
            .map(|c| {
                c.atom(r)
                    .cloned()
                    .map(Value::Atom)
                    .ok_or_else(|| StorageError::Corrupt("cold block code out of range".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Tuple::new(fields))
    }
}

/// Build one block from flat rows (all fields must be atoms and every
/// row must have the same arity). Returns the encoded record payload
/// and the per-column zone maps for the catalog.
pub fn build_block(rows: &[Tuple]) -> Result<(Vec<u8>, BlockZones)> {
    let ncols = rows.first().map(|t| t.fields.len()).unwrap_or(0);
    let mut dicts: Vec<Vec<Atom>> = vec![Vec::new(); ncols];
    let mut codes: Vec<Vec<u32>> = vec![Vec::new(); ncols];
    for t in rows {
        if t.fields.len() != ncols {
            return Err(StorageError::Corrupt(format!(
                "cold block row arity {} != {ncols}",
                t.fields.len()
            )));
        }
        for (c, v) in t.fields.iter().enumerate() {
            let atom = v.as_atom().ok_or_else(|| {
                StorageError::Corrupt("cold block got a table-valued field".into())
            })?;
            let code = match dicts[c].iter().position(|a| a == atom) {
                Some(i) => i as u32,
                None => {
                    dicts[c].push(atom.clone());
                    (dicts[c].len() - 1) as u32
                }
            };
            codes[c].push(code);
        }
    }
    let zones: BlockZones = dicts
        .iter()
        .map(|dict| {
            let mut min = dict[0].clone();
            let mut max = dict[0].clone();
            for a in &dict[1..] {
                if a.partial_cmp_same(&min) == Some(std::cmp::Ordering::Less) {
                    min = a.clone();
                }
                if a.partial_cmp_same(&max) == Some(std::cmp::Ordering::Greater) {
                    max = a.clone();
                }
            }
            (min, max)
        })
        .collect();

    let mut payload = Vec::new();
    for c in 0..ncols {
        encode_atom(&zones[c].0, &mut payload);
        encode_atom(&zones[c].1, &mut payload);
        payload.extend_from_slice(&(dicts[c].len() as u32).to_le_bytes());
        for a in &dicts[c] {
            encode_atom(a, &mut payload);
        }
        for code in &codes[c] {
            payload.extend_from_slice(&code.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 19);
    out.extend_from_slice(&BLOCK_MAGIC);
    out.push(BLOCK_VERSION);
    out.extend_from_slice(&(ncols as u16).to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok((out, zones))
}

/// Decode one block record, verifying the header CRC. Also returns the
/// zone maps stored in the payload (so integrity checks can compare
/// them against the catalog copy).
pub fn decode_block(bytes: &[u8]) -> Result<(DecodedBlock, BlockZones)> {
    let header = bytes
        .get(..19)
        .ok_or_else(|| StorageError::Corrupt("cold block shorter than its header".into()))?;
    if header[..4] != BLOCK_MAGIC {
        return Err(StorageError::Corrupt("cold block magic mismatch".into()));
    }
    if header[4] != BLOCK_VERSION {
        return Err(StorageError::Corrupt(format!(
            "cold block version {} unsupported",
            header[4]
        )));
    }
    let ncols = u16::from_le_bytes(header[5..7].try_into().unwrap()) as usize;
    let nrows = u32::from_le_bytes(header[7..11].try_into().unwrap());
    let payload_len = u32::from_le_bytes(header[11..15].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(header[15..19].try_into().unwrap());
    let payload = bytes
        .get(19..19 + payload_len)
        .filter(|_| bytes.len() == 19 + payload_len)
        .ok_or_else(|| StorageError::Corrupt("cold block payload length mismatch".into()))?;
    let found = crc32(payload);
    if found != stored_crc {
        return Err(StorageError::ChecksumMismatch(format!(
            "cold block payload: stored {stored_crc:#010x}, computed {found:#010x}"
        )));
    }
    let mut pos = 0usize;
    let mut columns = Vec::with_capacity(ncols);
    let mut zones = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let min = decode_atom(payload, &mut pos)?;
        let max = decode_atom(payload, &mut pos)?;
        let dict_len = read_u32(payload, &mut pos)? as usize;
        // Hostile-count clamp: a dictionary can never exceed the row
        // count, and the count must fit what remains of the payload.
        if dict_len > nrows as usize || dict_len > payload.len() {
            return Err(StorageError::Corrupt(format!(
                "cold block dictionary of {dict_len} entries for {nrows} rows"
            )));
        }
        let mut dict = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            dict.push(decode_atom(payload, &mut pos)?);
        }
        let mut codes = Vec::with_capacity(nrows as usize);
        for _ in 0..nrows {
            let code = read_u32(payload, &mut pos)?;
            if code as usize >= dict_len {
                return Err(StorageError::Corrupt(format!(
                    "cold block code {code} beyond dictionary of {dict_len}"
                )));
            }
            codes.push(code);
        }
        zones.push((min, max));
        columns.push(DecodedColumn { dict, codes });
    }
    if pos != payload.len() {
        return Err(StorageError::Corrupt(format!(
            "cold block payload has {} trailing bytes",
            payload.len() - pos
        )));
    }
    Ok((
        DecodedBlock {
            rows: nrows,
            columns,
        },
        zones,
    ))
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let b = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| StorageError::Corrupt("cold block truncated".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(b.try_into().unwrap()))
}

/// Can a block whose column spans `zone` contain a row equal to `key`?
/// A type mismatch means the column holds atoms of another type, none
/// of which can equal `key` — prunable.
pub fn zone_may_contain(zone: &(Atom, Atom), key: &Atom) -> bool {
    use std::cmp::Ordering::{Greater, Less};
    match (key.partial_cmp_same(&zone.0), key.partial_cmp_same(&zone.1)) {
        (Some(lo), Some(hi)) => lo != Less && hi != Greater,
        _ => false,
    }
}

/// Can a block whose column spans `zone` intersect the range
/// `(lo, hi)`? Each bound carries an inclusivity flag; `None` means
/// unbounded on that side. A type mismatch on a present bound prunes
/// (comparisons against the column's type never hold).
pub fn zone_may_intersect(
    zone: &(Atom, Atom),
    lo: Option<&(Atom, bool)>,
    hi: Option<&(Atom, bool)>,
) -> bool {
    use std::cmp::Ordering::{Equal, Greater, Less};
    if let Some((lo_atom, inclusive)) = lo {
        // Rows must be >= lo (or > lo): the block's max decides.
        match zone.1.partial_cmp_same(lo_atom) {
            Some(Less) => return false,
            Some(Equal) if !inclusive => return false,
            Some(_) => {}
            None => return false,
        }
    }
    if let Some((hi_atom, inclusive)) = hi {
        match zone.0.partial_cmp_same(hi_atom) {
            Some(Greater) => return false,
            Some(Equal) if !inclusive => return false,
            Some(_) => {}
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::value::build::{a, tup};

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| tup(vec![a(i), a(format!("v{}", i % 3)), a(i % 2 == 0)]))
            .collect()
    }

    #[test]
    fn block_roundtrip() {
        let rs = rows(100);
        let (bytes, zones) = build_block(&rs).unwrap();
        let (block, stored_zones) = decode_block(&bytes).unwrap();
        assert_eq!(block.rows, 100);
        assert_eq!(zones, stored_zones);
        assert_eq!(zones[0], (Atom::Int(0), Atom::Int(99)));
        for (i, t) in rs.iter().enumerate() {
            assert_eq!(&block.row(i).unwrap(), t);
        }
        // Dictionary compressed the repeated string column.
        assert_eq!(block.columns[1].dict.len(), 3);
        assert_eq!(block.columns[2].dict.len(), 2);
    }

    #[test]
    fn single_distinct_value_dictionary() {
        let rs: Vec<Tuple> = (0..50).map(|_| tup(vec![a(7), a("same")])).collect();
        let (bytes, zones) = build_block(&rs).unwrap();
        let (block, _) = decode_block(&bytes).unwrap();
        assert_eq!(block.columns[0].dict, vec![Atom::Int(7)]);
        assert_eq!(block.columns[1].dict.len(), 1);
        assert_eq!(zones[0], (Atom::Int(7), Atom::Int(7)));
        assert_eq!(block.row(49).unwrap(), rs[49]);
    }

    #[test]
    fn empty_block_is_legal() {
        let (bytes, zones) = build_block(&[]).unwrap();
        let (block, _) = decode_block(&bytes).unwrap();
        assert_eq!(block.rows, 0);
        assert!(block.columns.is_empty());
        assert!(zones.is_empty());
    }

    #[test]
    fn flipped_bit_anywhere_is_detected() {
        let (bytes, _) = build_block(&rows(40)).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut dam = bytes.clone();
                dam[byte] ^= 1 << bit;
                assert!(
                    decode_block(&dam).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn zone_checks() {
        let zone = (Atom::Int(10), Atom::Int(20));
        assert!(zone_may_contain(&zone, &Atom::Int(10)));
        assert!(zone_may_contain(&zone, &Atom::Int(15)));
        assert!(!zone_may_contain(&zone, &Atom::Int(9)));
        assert!(!zone_may_contain(&zone, &Atom::Int(21)));
        // Type mismatch: the column is all-Int, a Str key matches no row.
        assert!(!zone_may_contain(&zone, &Atom::Str("x".into())));

        let lo = |v: i64, inc: bool| Some((Atom::Int(v), inc));
        assert!(zone_may_intersect(&zone, lo(5, true).as_ref(), None));
        assert!(!zone_may_intersect(&zone, lo(21, true).as_ref(), None));
        assert!(zone_may_intersect(&zone, lo(20, true).as_ref(), None));
        assert!(!zone_may_intersect(&zone, lo(20, false).as_ref(), None));
        assert!(!zone_may_intersect(&zone, None, lo(10, false).as_ref()));
        assert!(zone_may_intersect(&zone, None, lo(10, true).as_ref()));
        assert!(zone_may_intersect(
            &zone,
            lo(12, true).as_ref(),
            lo(13, true).as_ref()
        ));
    }

    #[test]
    fn cold_keys_disjoint_from_tids() {
        let k = cold_key(3, 17);
        assert_eq!(split_cold_key(k), Some((3, 17)));
        let heap = Tid::new(crate::tid::PageId(u32::MAX), crate::tid::SlotNo(u16::MAX)).to_u64();
        assert_eq!(split_cold_key(heap), None);
        assert!(k & COLD_KEY_BIT != 0);
    }

    #[test]
    fn eq_shortcircuit_via_dictionary() {
        let rs = rows(30);
        let (bytes, _) = build_block(&rs).unwrap();
        let (block, _) = decode_block(&bytes).unwrap();
        assert_eq!(block.columns[1].code_of(&Atom::Str("v1".into())), Some(1));
        assert_eq!(block.columns[1].code_of(&Atom::Str("nope".into())), None);
    }
}
