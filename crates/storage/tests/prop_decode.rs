//! Corruption armor at the decoder layer: every storage decoder, fed
//! arbitrary bytes, returns a value or a typed error — it never panics,
//! never overruns, never loops. This is the property the integrity
//! walker and the quarantine path lean on: a corrupt page may produce
//! *garbage findings*, but it may not take the process down.
//!
//! Regressions that proptest shrinks to minimal counterexamples are
//! pinned under `proptest-regressions/`.

use aim2_model::encode::{decode_atom, decode_atoms, decode_tuple, decode_value};
use aim2_model::{Atom, Tuple, Value};
use aim2_storage::colstore::{build_block, decode_block};
use aim2_storage::minidir::{MdNode, RootMd};
use aim2_storage::page::{Page, PageRef};
use aim2_storage::pagelist::PageList;
use aim2_storage::tid::{MiniTid, Tid};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn md_node_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut pos = 0;
        let _ = MdNode::decode(&bytes, &mut pos);
        prop_assert!(pos <= bytes.len());
    }

    #[test]
    fn root_md_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = RootMd::decode(&bytes);
    }

    #[test]
    fn page_list_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut pos = 0;
        let _ = PageList::decode(&bytes, &mut pos);
        prop_assert!(pos <= bytes.len());
    }

    #[test]
    fn tid_decodes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut pos = 0;
        let _ = Tid::decode(&bytes, &mut pos);
        let mut pos = 0;
        let _ = MiniTid::decode(&bytes, &mut pos);
    }

    #[test]
    fn atom_decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut pos = 0;
        let _ = decode_atom(&bytes, &mut pos);
        let _ = decode_atoms(&bytes);
        let mut pos = 0;
        let _ = decode_value(&bytes, &mut pos);
        let mut pos = 0;
        let _ = decode_tuple(&bytes, &mut pos);
    }

    // A garbage page image survives the whole read-side API: validation
    // yields Ok or a typed error, and every accessor the walker uses
    // stays in bounds.
    #[test]
    fn page_ref_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let r = PageRef::new(&bytes);
        let _ = r.validate();
        let _ = r.slot_count();
        let _ = r.dead_bytes();
        let _ = r.free_for_insert();
        let _count = r.live_records().count();
        for s in 0..r.slot_count().min(64) {
            let _ = r.is_live(aim2_storage::SlotNo(s));
            let _ = r.read(aim2_storage::SlotNo(s));
        }
    }

    // Columnar block codec: arbitrary flat rows survive a full
    // build/decode round-trip, row for row.
    #[test]
    fn cold_block_roundtrip(rows in prop::collection::vec(
        prop::collection::vec(
            prop_oneof![
                any::<i64>().prop_map(Atom::Int),
                any::<bool>().prop_map(Atom::Bool),
                "[a-z]{0,8}".prop_map(Atom::Str),
            ],
            3..4,
        ),
        0..40,
    )) {
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|r| Tuple::new(r.iter().cloned().map(Value::Atom).collect()))
            .collect();
        let (bytes, zones) = build_block(&tuples).unwrap();
        let (block, stored_zones) = decode_block(&bytes).unwrap();
        prop_assert_eq!(zones, stored_zones);
        prop_assert_eq!(block.rows as usize, tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            prop_assert_eq!(&block.row(i).unwrap(), t);
        }
    }

    // ... and fed arbitrary bytes, the block decoder returns a typed
    // error — no panic, no overrun, no unbounded allocation.
    #[test]
    fn cold_block_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_block(&bytes);
    }

    // Mutating ops on a garbage page never panic either — they may
    // refuse (return false / None), but the buffer stays a page.
    #[test]
    fn page_ops_survive_garbage(
        bytes in prop::collection::vec(any::<u8>(), 64..512),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        slot in 0u16..16,
    ) {
        let mut buf = bytes;
        let mut page = Page::new(&mut buf);
        let _ = page.insert(&payload);
        let _ = page.update(aim2_storage::SlotNo(slot), &payload);
        let _ = page.delete(aim2_storage::SlotNo(slot));
        page.compact();
        let _ = PageRef::new(&buf).live_records().count();
    }
}
