//! Property-based tests for the storage engine's core invariants:
//! random nested objects roundtrip under all three storage structures,
//! the §4.1 MD-count ordering SS1 ≥ SS3 ≥ SS2 holds universally, page
//! records survive arbitrary op sequences, and object moves never break
//! Mini-TIDs.

use aim2_model::value::build::{a, tup};
use aim2_model::{AtomType, TableKind, TableSchema, TableValue, Tuple};
use aim2_storage::buffer::BufferPool;
use aim2_storage::disk::MemDisk;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::ObjectStore;
use aim2_storage::page::Page;
use aim2_storage::segment::Segment;
use aim2_storage::stats::Stats;
use aim2_storage::tid::SlotNo;
use proptest::prelude::*;

fn fresh_store(layout: LayoutKind, page_size: usize) -> ObjectStore {
    let pool = BufferPool::new(Box::new(MemDisk::new(page_size)), 64, Stats::new());
    ObjectStore::new(Segment::new(pool), layout)
}

/// Random 3-level schema shaped like DEPARTMENTS: atoms at each level,
/// one or two subtables at the top, one nested subtable.
fn dept_like_schema() -> TableSchema {
    TableSchema::relation("R")
        .with_atom("A", AtomType::Int)
        .with_atom("B", AtomType::Str)
        .with_table(
            TableSchema::relation("S")
                .with_atom("C", AtomType::Int)
                .with_table(
                    TableSchema::list("T")
                        .with_atom("D", AtomType::Int)
                        .with_atom("E", AtomType::Str),
                ),
        )
        .with_table(TableSchema::relation("U").with_atom("F", AtomType::Int))
}

/// Strategy producing a random tuple for `dept_like_schema`, with
/// controllable fan-outs.
fn arb_tuple() -> impl Strategy<Value = Tuple> {
    let inner_t = prop::collection::vec((any::<i32>(), "[a-z]{0,12}"), 0..6);
    let s_elems = prop::collection::vec((any::<i32>(), inner_t), 0..5);
    let u_elems = prop::collection::vec(any::<i32>(), 0..7);
    (any::<i32>(), "[a-z]{0,16}", s_elems, u_elems).prop_map(|(x, y, ss, us)| {
        let s_tuples: Vec<Tuple> = ss
            .into_iter()
            .map(|(c, ts)| {
                let t_tuples: Vec<Tuple> = ts
                    .into_iter()
                    .map(|(d, e)| tup(vec![a(d as i64), a(e)]))
                    .collect();
                tup(vec![
                    a(c as i64),
                    aim2_model::Value::Table(TableValue::with_tuples(TableKind::List, t_tuples)),
                ])
            })
            .collect();
        let u_tuples: Vec<Tuple> = us.into_iter().map(|f| tup(vec![a(f as i64)])).collect();
        tup(vec![
            a(x as i64),
            a(y),
            aim2_model::Value::Table(TableValue::with_tuples(TableKind::Relation, s_tuples)),
            aim2_model::Value::Table(TableValue::with_tuples(TableKind::Relation, u_tuples)),
        ])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn object_roundtrips_under_all_layouts(t in arb_tuple()) {
        let schema = dept_like_schema();
        for layout in LayoutKind::ALL {
            let mut os = fresh_store(layout, 512);
            let h = os.insert_object(&schema, &t).unwrap();
            prop_assert_eq!(&os.read_object(&schema, h).unwrap(), &t);
        }
    }

    #[test]
    fn md_count_ordering_ss1_ge_ss3_ge_ss2(t in arb_tuple()) {
        let schema = dept_like_schema();
        let mut counts = Vec::new();
        for layout in LayoutKind::ALL {
            let mut os = fresh_store(layout, 512);
            let h = os.insert_object(&schema, &t).unwrap();
            counts.push(os.md_profile(h).unwrap().md_subtuples);
        }
        // §4.1: "an order SS1 > SS3 > SS2 can be established" (weakly,
        // since degenerate objects can tie).
        prop_assert!(counts[0] >= counts[2], "SS1 {} < SS3 {}", counts[0], counts[2]);
        prop_assert!(counts[2] >= counts[1], "SS3 {} < SS2 {}", counts[2], counts[1]);
    }

    #[test]
    fn data_subtuple_count_layout_invariant(t in arb_tuple()) {
        let schema = dept_like_schema();
        let mut counts = Vec::new();
        for layout in LayoutKind::ALL {
            let mut os = fresh_store(layout, 512);
            let h = os.insert_object(&schema, &t).unwrap();
            counts.push(os.md_profile(h).unwrap().data_subtuples);
        }
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[1], counts[2]);
    }

    #[test]
    fn move_preserves_object_and_rewrites_nothing(t in arb_tuple()) {
        let schema = dept_like_schema();
        let mut os = fresh_store(LayoutKind::Ss3, 256);
        let h = os.insert_object(&schema, &t).unwrap();
        let stats = os.stats();
        let before = stats.snapshot();
        os.move_object(h).unwrap();
        prop_assert_eq!(before.delta(&stats.snapshot()).pointer_rewrites, 0);
        prop_assert_eq!(&os.read_object(&schema, h).unwrap(), &t);
    }

    #[test]
    fn walk_data_covers_every_data_subtuple(t in arb_tuple()) {
        let schema = dept_like_schema();
        for layout in LayoutKind::ALL {
            let mut os = fresh_store(layout, 512);
            let h = os.insert_object(&schema, &t).unwrap();
            let expected = os.md_profile(h).unwrap().data_subtuples;
            let walk = os.walk_data(&schema, h).unwrap();
            prop_assert_eq!(walk.len(), expected);
        }
    }

    #[test]
    fn page_survives_random_op_sequence(ops in prop::collection::vec((0u8..3, any::<u16>(), 0usize..120), 1..80)) {
        // A model-based test: mirror page ops against a HashMap and check
        // full agreement after every step.
        let mut buf = vec![0u8; 1024];
        let mut page = Page::init(&mut buf);
        let mut model: std::collections::HashMap<u16, Vec<u8>> = Default::default();
        for (op, pick, len) in ops {
            match op {
                0 => {
                    let data = vec![(pick % 251) as u8; len];
                    if let Some(slot) = page.insert(&data) {
                        model.insert(slot.0, data);
                    }
                }
                1 => {
                    if !model.is_empty() {
                        let keys: Vec<u16> = model.keys().copied().collect();
                        let k = keys[pick as usize % keys.len()];
                        page.delete(SlotNo(k));
                        model.remove(&k);
                    }
                }
                _ => {
                    if !model.is_empty() {
                        let keys: Vec<u16> = model.keys().copied().collect();
                        let k = keys[pick as usize % keys.len()];
                        let data = vec![(pick % 13) as u8; len];
                        if page.update(SlotNo(k), &data) {
                            model.insert(k, data);
                        }
                    }
                }
            }
            // Agreement check.
            for (k, v) in &model {
                prop_assert_eq!(page.read(SlotNo(*k)), Some(v.as_slice()));
            }
            let live = page.live_records().count();
            prop_assert_eq!(live, model.len());
        }
    }
}

#[test]
fn segment_heap_random_workload_model_check() {
    // Deterministic pseudo-random heap workload against a model map —
    // covers forwarding and overflow chains with a tiny page size.
    use std::collections::HashMap;
    let pool = BufferPool::new(Box::new(MemDisk::new(128)), 8, Stats::new());
    let mut seg = Segment::new(pool);
    let mut model: HashMap<aim2_storage::tid::Tid, Vec<u8>> = HashMap::new();
    let mut state = 0x12345678u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..400 {
        let r = rng();
        match r % 3 {
            0 => {
                let len = (rng() % 300) as usize;
                let data = vec![(r % 251) as u8; len];
                let tid = seg.insert(&data, None).unwrap();
                model.insert(tid, data);
            }
            1 if !model.is_empty() => {
                let keys: Vec<_> = model.keys().copied().collect();
                let k = keys[(rng() as usize) % keys.len()];
                let len = (rng() % 400) as usize;
                let data = vec![(r % 17) as u8; len];
                seg.update(k, &data).unwrap();
                model.insert(k, data);
            }
            2 if !model.is_empty() => {
                let keys: Vec<_> = model.keys().copied().collect();
                let k = keys[(rng() as usize) % keys.len()];
                seg.delete(k).unwrap();
                model.remove(&k);
            }
            _ => {}
        }
    }
    for (tid, data) in &model {
        assert_eq!(&seg.read(*tid).unwrap(), data);
    }
    // Scan agreement: every live record seen exactly once.
    let mut seen = 0;
    seg.for_each(|tid, body| {
        assert_eq!(model.get(&tid).map(|v| v.as_slice()), Some(body));
        seen += 1;
    })
    .unwrap();
    assert_eq!(seen, model.len());
}
