//! Crash-under-traffic: SIGKILL a real `aim2-server` process while 8
//! concurrent clients run a mixed transfer workload against it, restart
//! it on the same data directory and port, and prove:
//!
//! * **recovery** — the restarted server opens the WAL-recovered
//!   database and serves (recovery rolls back to the last checkpoint,
//!   which is this engine's durability floor);
//! * **invariants** — the account balances still sum to the initial
//!   total (transfers preserve sums, and recovery lands on a
//!   transaction-consistent state), and no `(WID, SEQ)` ledger entry is
//!   ever duplicated — the client library never silently replays DML,
//!   and the writers' in-doubt resolution (query your own ledger row)
//!   never double-applies;
//! * **liveness** — every client reconnects and finishes its workload
//!   against the restarted server; no client hangs (all reads are
//!   bounded, all retries budgeted, the whole test is deadline-boxed).
//!
//! Everything is driven through the public wire surface: the spawned
//! server binary, the client library, and the `Checkpoint` verb.

use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aim2_model::{Atom, Value};
use aim2_net::{Client, ClientConfig, NetError, QueryOutcome, RetryPolicy};

const WRITERS: usize = 8;
const ACCOUNTS: i64 = 16;
const INITIAL_BAL: i64 = 1_000;
/// Transfers per writer per phase (pre-crash target; post-restart each
/// writer runs the same count again).
const TRANSFERS: usize = 12;
/// Whole-test deadline — nothing below may hang past this.
const TEST_DEADLINE: Duration = Duration::from_secs(120);

/// A spawned `aim2-server` child with its stdin held open (the server
/// exits when stdin closes) and its stderr drained.
struct ServerProc {
    child: Child,
    /// Keep the write end alive; dropping it asks the server to quit.
    stdin: Option<std::process::ChildStdin>,
    addr: std::net::SocketAddr,
}

impl ServerProc {
    fn spawn(data_dir: &std::path::Path, listen: &str) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_aim2-server"))
            .arg("--listen")
            .arg(listen)
            .arg("--data")
            .arg(data_dir)
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn aim2-server");
        let stdin = child.stdin.take();
        let stderr = child.stderr.take().expect("child stderr");
        let mut reader = BufReader::new(stderr);
        let addr = {
            let deadline = Instant::now() + Duration::from_secs(20);
            let mut addr = None;
            let mut line = String::new();
            while Instant::now() < deadline {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        if let Some(rest) = line.trim().strip_prefix("aim2-server listening on ") {
                            addr = Some(rest.parse().expect("parse listen addr"));
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            addr.expect("server never reported its listen address")
        };
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while let Ok(n) = reader.read_line(&mut sink) {
                if n == 0 {
                    break;
                }
                sink.clear();
            }
        });
        ServerProc { child, stdin, addr }
    }

    /// SIGKILL — no shutdown handshake, no WAL flush courtesy.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL server");
        let _ = self.child.wait();
    }

    fn graceful_stop(mut self) {
        if let Some(mut stdin) = self.stdin.take() {
            let _ = stdin.write_all(b"quit\n");
        }
        let _ = self.child.wait();
    }
}

fn connect(addr: std::net::SocketAddr, name: &str, seed: u64) -> Result<Client, NetError> {
    Client::connect_with(
        addr,
        ClientConfig {
            client_name: name.to_string(),
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_secs(5)),
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(100),
                budget: Duration::from_secs(10),
                seed,
            },
            ..ClientConfig::default()
        },
    )
}

/// Bounded reconnect helper: keep dialing until the server answers or
/// the deadline passes (it does go down for real mid-test).
fn connect_until(addr: std::net::SocketAddr, name: &str, seed: u64, deadline: Instant) -> Client {
    loop {
        match connect(addr, name, seed) {
            Ok(c) => return c,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("{name}: server never came back: {e}"),
        }
    }
}

fn int_at(t: &aim2_model::Tuple, i: usize) -> i64 {
    match t.fields.get(i) {
        Some(Value::Atom(Atom::Int(v))) => *v,
        other => panic!("expected Int at {i}, got {other:?}"),
    }
}

/// Single-row integer query helper (the language has no aggregates;
/// sums happen client-side).
fn one_int(client: &mut Client, sql: &str) -> Result<Option<i64>, NetError> {
    match client.query(sql)? {
        QueryOutcome::Table(_, v) => Ok(v.tuples.first().map(|t| int_at(t, 0))),
        other => panic!("expected a table for {sql}, got {other:?}"),
    }
}

/// One transfer attempt as an explicit transaction:
/// move `amount` from account `a` to `b`, recording `(wid, seq)` in the
/// ledger inside the same transaction. Returns Ok(true) on commit.
fn try_transfer(
    client: &mut Client,
    wid: usize,
    seq: usize,
    a: i64,
    b: i64,
    amount: i64,
) -> Result<bool, NetError> {
    client.begin(false)?;
    let run = (|| -> Result<(), NetError> {
        let bal_a = one_int(
            client,
            &format!("SELECT x.BAL FROM x IN ACCOUNTS WHERE x.ANO = {a}"),
        )?
        .expect("account a exists");
        let bal_b = one_int(
            client,
            &format!("SELECT x.BAL FROM x IN ACCOUNTS WHERE x.ANO = {b}"),
        )?
        .expect("account b exists");
        client.query(&format!(
            "UPDATE x IN ACCOUNTS SET x.BAL = {} WHERE x.ANO = {a}",
            bal_a - amount
        ))?;
        client.query(&format!(
            "UPDATE x IN ACCOUNTS SET x.BAL = {} WHERE x.ANO = {b}",
            bal_b + amount
        ))?;
        client.query(&format!("INSERT INTO LEDGER VALUES ({wid}, {seq})"))?;
        Ok(())
    })();
    match run {
        Ok(()) => {
            client.commit()?;
            Ok(true)
        }
        Err(e) => {
            // Roll back cleanly when the session survived; connection
            // losses already dropped the txn server-side.
            if !e.is_connection_loss() {
                let _ = client.rollback();
            }
            Err(e)
        }
    }
}

/// Whether this writer's `(wid, seq)` ledger row is present — the
/// in-doubt commit resolution after a connection loss.
fn ledger_has(client: &mut Client, wid: usize, seq: usize) -> Result<bool, NetError> {
    Ok(one_int(
        client,
        &format!("SELECT x.SEQ FROM x IN LEDGER WHERE x.WID = {wid} AND x.SEQ = {seq}"),
    )?
    .is_some())
}

/// Run one writer's workload: `count` transfers starting at `seq0`,
/// surviving crashes, reconnects, deadlocks, and lost acks. Never
/// hangs: every wait is bounded by `deadline`.
fn writer_workload(
    addr: std::net::SocketAddr,
    wid: usize,
    seq0: usize,
    count: usize,
    deadline: Instant,
) {
    let seed = 0xD1CE_u64 + wid as u64;
    let mut client = connect_until(addr, &format!("writer-{wid}"), seed, deadline);
    for seq in seq0..seq0 + count {
        // Deterministic but varied account pairing per (wid, seq).
        let a = ((wid * 7 + seq * 3) as i64) % ACCOUNTS;
        let b = ((wid * 11 + seq * 5 + 1) as i64) % ACCOUNTS;
        let (a, b) = if a == b {
            (a, (b + 1) % ACCOUNTS)
        } else {
            (a, b)
        };
        loop {
            assert!(
                Instant::now() < deadline,
                "writer {wid} seq {seq}: test deadline exceeded (hung workload?)"
            );
            match try_transfer(&mut client, wid, seq, a, b, 1 + (seq as i64 % 5)) {
                Ok(true) => break,
                Ok(false) => unreachable!(),
                Err(e) if e.is_connection_loss() => {
                    // The server may be down (crash window) — reconnect
                    // with patience, then resolve the in-doubt commit:
                    // only move on if OUR ledger row exists.
                    client = connect_until(addr, &format!("writer-{wid}"), seed, deadline);
                    match ledger_has(&mut client, wid, seq) {
                        Ok(true) => break,     // committed before the loss
                        Ok(false) => continue, // retry the whole txn
                        Err(_) => continue,    // server flapping; retry
                    }
                }
                Err(e) if e.is_retryable() => {
                    // Deadlock victim / shed: transaction already rolled
                    // back server-side; small pause, retry.
                    std::thread::sleep(Duration::from_millis(5));
                    let _ = e;
                    continue;
                }
                Err(e) => panic!("writer {wid} seq {seq}: non-retryable {e}"),
            }
        }
    }
    let _ = client.goodbye();
}

/// Full sweep of the invariants via one verifier connection.
fn verify_invariants(addr: std::net::SocketAddr, deadline: Instant, expect_ledger_max: usize) {
    let mut client = connect_until(addr, "verifier", 0xFACADE, deadline);
    // Sum invariant, computed client-side.
    let sum: i64 = match client.query("SELECT * FROM ACCOUNTS").unwrap() {
        QueryOutcome::Table(_, v) => {
            assert_eq!(v.tuples.len() as i64, ACCOUNTS, "no account may vanish");
            v.tuples.iter().map(|t| int_at(t, 1)).sum()
        }
        other => panic!("expected accounts table, got {other:?}"),
    };
    assert_eq!(
        sum,
        ACCOUNTS * INITIAL_BAL,
        "transfers must preserve the total balance through crash recovery"
    );
    // Ledger: every (WID, SEQ) at most once — DML never double-applied.
    match client.query("SELECT * FROM LEDGER").unwrap() {
        QueryOutcome::Table(_, v) => {
            let mut seen = std::collections::HashSet::new();
            for t in &v.tuples {
                let key = (int_at(t, 0), int_at(t, 1));
                assert!(
                    seen.insert(key),
                    "ledger entry {key:?} applied more than once"
                );
            }
            assert!(
                seen.len() <= expect_ledger_max,
                "more ledger entries ({}) than transfers ever attempted ({expect_ledger_max})",
                seen.len()
            );
        }
        other => panic!("expected ledger table, got {other:?}"),
    }
    client.goodbye().unwrap();
}

#[test]
fn crash_under_traffic_recovers_and_clients_converge() {
    let deadline = Instant::now() + TEST_DEADLINE;
    let dir = std::env::temp_dir().join(format!("aim2_crash_traffic_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // ---- Phase 0: seed the database through a first server process.
    let server = ServerProc::spawn(&dir, "127.0.0.1:0");
    let addr = server.addr;
    {
        let mut admin = connect_until(addr, "seeder", 1, deadline);
        admin
            .query("CREATE TABLE ACCOUNTS ( ANO INTEGER, BAL INTEGER )")
            .unwrap();
        admin
            .query("CREATE TABLE LEDGER ( WID INTEGER, SEQ INTEGER )")
            .unwrap();
        for ano in 0..ACCOUNTS {
            admin
                .query(&format!(
                    "INSERT INTO ACCOUNTS VALUES ({ano}, {INITIAL_BAL})"
                ))
                .unwrap();
        }
        // Checkpoint: the seeded state is the durability floor recovery
        // must never fall below.
        admin.checkpoint().unwrap();
        admin.goodbye().unwrap();
    }

    // ---- Phase 1: 8 writers transfer concurrently; the server is
    // SIGKILLed mid-traffic and restarted on the same dir and port.
    let crashed = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..WRITERS)
        .map(|wid| std::thread::spawn(move || writer_workload(addr, wid, 0, TRANSFERS, deadline)))
        .collect();

    // Let traffic build, then pull the plug — mid-commit for somebody.
    std::thread::sleep(Duration::from_millis(400));
    server.kill();
    crashed.store(true, Ordering::SeqCst);
    // Brief outage, then restart on the same port over the same data.
    std::thread::sleep(Duration::from_millis(300));
    let server = ServerProc::spawn(&dir, &addr.to_string());
    assert_eq!(server.addr, addr, "restart must reuse the advertised port");

    // Liveness: every writer finishes against the restarted server.
    for (wid, h) in workers.into_iter().enumerate() {
        h.join()
            .unwrap_or_else(|_| panic!("writer {wid} died (hang or panic)"));
    }
    assert!(crashed.load(Ordering::SeqCst));

    // ---- Phase 2: invariants after crash + recovery + convergence.
    verify_invariants(addr, deadline, WRITERS * TRANSFERS);

    // ---- Phase 3: the recovered server is fully usable — another
    // round of traffic, a checkpoint, a graceful stop, and a clean
    // reopen that still satisfies every invariant.
    let workers: Vec<_> = (0..WRITERS)
        .map(|wid| {
            std::thread::spawn(move || {
                writer_workload(addr, wid, TRANSFERS, TRANSFERS / 2, deadline)
            })
        })
        .collect();
    for (wid, h) in workers.into_iter().enumerate() {
        h.join()
            .unwrap_or_else(|_| panic!("post-restart writer {wid} died"));
    }
    {
        let mut admin = connect_until(addr, "checkpointer", 2, deadline);
        admin.checkpoint().unwrap();
        admin.goodbye().unwrap();
    }
    server.graceful_stop();

    let server = ServerProc::spawn(&dir, "127.0.0.1:0");
    verify_invariants(
        server.addr,
        deadline,
        WRITERS * TRANSFERS + WRITERS * (TRANSFERS / 2),
    );
    server.graceful_stop();
    let _ = std::fs::remove_dir_all(&dir);
}
