//! The wire error taxonomy is total and canonical: every defined
//! [`ErrorCode`], crossed with both retryable verdicts and with/without
//! a backoff hint, survives the full frame path (encode → frame →
//! unframe → decode → re-encode) byte-identically, and the client's
//! [`NetError::is_retryable`] agrees with what the server put on the
//! wire — the retryability verdict is carried, not re-derived, so the
//! two ends can never disagree.

use std::io::Cursor;

use aim2_net::{read_frame, write_frame, ErrorCode, NetError, Response, DEFAULT_MAX_FRAME};
use proptest::prelude::*;

/// Exhaustive (not sampled): all 15 codes × retryable × hint × message
/// shapes round-trip canonically through a real frame.
#[test]
fn every_code_roundtrips_canonically_through_frames() {
    for code in ErrorCode::ALL {
        for retryable in [false, true] {
            for retry_after_ms in [0u32, 50, u32::MAX] {
                for message in ["", "m", "statement deadline exceeded"] {
                    let resp = Response::Error {
                        code: code as u32,
                        retryable,
                        retry_after_ms,
                        message: message.to_string(),
                    };
                    let bytes = resp.encode();

                    let mut framed = Vec::new();
                    write_frame(&mut framed, &bytes).unwrap();
                    let mut r = Cursor::new(&framed);
                    let unframed = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap();
                    assert_eq!(unframed, bytes, "framing must be transparent");

                    let back = Response::decode(&unframed).unwrap();
                    assert_eq!(
                        back.encode(),
                        bytes,
                        "canonical: {code} re-encodes identically"
                    );

                    // Both socket ends agree on retryability: the
                    // client view echoes the wire bit.
                    let Response::Error {
                        code: c,
                        retryable: r,
                        retry_after_ms: h,
                        message: m,
                    } = back
                    else {
                        panic!("decoded to a different variant");
                    };
                    assert_eq!(c, code as u32);
                    let client_view = NetError::from_wire(c, r, h, m);
                    assert_eq!(
                        client_view.is_retryable(),
                        retryable,
                        "client and server must agree on retryability for {code}"
                    );
                }
            }
        }
    }
}

/// `ErrorCode::from_u32` is the exact inverse of the discriminants,
/// and rejects everything else.
#[test]
fn code_numbering_is_stable_and_total() {
    for code in ErrorCode::ALL {
        assert_eq!(ErrorCode::from_u32(code as u32), Some(code));
    }
    assert_eq!(ErrorCode::from_u32(0), None);
    assert_eq!(ErrorCode::from_u32(ErrorCode::ALL.len() as u32 + 1), None);
    assert_eq!(ErrorCode::from_u32(u32::MAX), None);
    // The ALL table covers the whole numbering with no gaps.
    for (i, code) in ErrorCode::ALL.iter().enumerate() {
        assert_eq!(*code as u32, i as u32 + 1, "codes are dense from 1");
    }
}

/// An unknown code off the wire degrades to `Internal` client-side
/// (never a panic, never a dropped retryable bit).
#[test]
fn unknown_codes_degrade_to_internal() {
    let e = NetError::from_wire(9999, true, 123, "future error".to_string());
    let NetError::Server {
        code,
        retryable,
        retry_after_ms,
        ..
    } = &e
    else {
        panic!("expected Server variant");
    };
    assert_eq!(*code, ErrorCode::Internal);
    assert!(*retryable, "the wire bit survives an unknown code");
    assert_eq!(*retry_after_ms, 123);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Sampled wider than the exhaustive sweep: arbitrary codes (valid
    // or not), hints, and unicode messages keep the encoding canonical
    // and the retryable bit faithful end to end.
    #[test]
    fn arbitrary_error_frames_are_canonical_and_faithful(
        code in any::<u32>(),
        retryable in any::<bool>(),
        retry_after_ms in any::<u32>(),
        message in ".*",
    ) {
        let resp = Response::Error { code, retryable, retry_after_ms, message };
        let bytes = resp.encode();
        let back = Response::decode(&bytes).unwrap();
        prop_assert_eq!(back.encode(), bytes);
        let Response::Error { code: c, retryable: r, retry_after_ms: h, message: m } = back else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        prop_assert_eq!(NetError::from_wire(c, r, h, m).is_retryable(), retryable);
    }
}
