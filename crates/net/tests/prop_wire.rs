//! Corruption armor at the wire layer, mirroring the storage crate's
//! `prop_decode` suite: every network decoder, fed arbitrary bytes,
//! returns a message or a typed error — it never panics, never
//! overruns, never allocates beyond what the payload could describe. A
//! hostile peer can desync a connection (which the server then drops),
//! but can never take the process down.

use std::io::Cursor;

use aim2_model::encode::decode_schema;
use aim2_net::{read_frame, write_frame, Request, Response};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
    }

    #[test]
    fn response_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn schema_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut pos = 0;
        let _ = decode_schema(&bytes, &mut pos);
        prop_assert!(pos <= bytes.len());
    }

    // The frame reader over arbitrary bytes: any prefix of a stream
    // either yields a frame (when a valid header + CRC line up, which
    // random bytes essentially never do), a typed error, or clean EOF.
    // The size limit must hold even when the length prefix is hostile.
    #[test]
    fn frame_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut r = Cursor::new(&bytes);
        let _ = read_frame(&mut r, 64);
    }

    // Round-trip: any payload that fits the limit survives framing, and
    // a one-byte corruption anywhere in the stream is always detected
    // (length mismatch, CRC mismatch, or truncation — never a wrong
    // payload silently accepted as this payload).
    #[test]
    fn frame_roundtrip_and_corruption_detected(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        flip in 0usize..136,
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = Cursor::new(&buf);
        let back = read_frame(&mut r, 128).unwrap().unwrap();
        prop_assert_eq!(&back, &payload);

        let flip = flip % buf.len();
        let mut evil = buf.clone();
        evil[flip] ^= 1 << bit;
        let mut r = Cursor::new(&evil);
        if let Ok(Some(got)) = read_frame(&mut r, 128) {
            prop_assert_ne!(got, payload);
        }
    }

    // Request/Response encodings are canonical: encode → decode → encode
    // is the identity on bytes (exercised through the SQL-bearing
    // variants, whose string fields carry arbitrary content).
    #[test]
    fn query_roundtrip_canonical(
        fetch in any::<u32>(),
        timeout_ms in any::<u32>(),
        attempt in any::<u32>(),
        traced in any::<bool>(),
        trace_id in any::<u64>(),
        sampled in any::<bool>(),
        sql in ".*",
    ) {
        // Traced and untraced forms each have exactly one encoding
        // (legacy tag ↔ trace: None, v3 tag ↔ trace: Some).
        let trace = traced.then_some(aim2_net::TraceContext { trace_id, sampled });
        let req = Request::Query { fetch, timeout_ms, attempt, trace, sql };
        let bytes = req.encode();
        let back = Request::decode(&bytes).unwrap();
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn error_roundtrip_canonical(
        code in any::<u32>(),
        retryable in any::<bool>(),
        retry_after_ms in any::<u32>(),
        message in ".*",
    ) {
        let resp = Response::Error { code, retryable, retry_after_ms, message };
        let bytes = resp.encode();
        let back = Response::decode(&bytes).unwrap();
        prop_assert_eq!(back.encode(), bytes);
    }
}
