//! End-to-end equivalence: every paper/misc query answered over TCP
//! must be byte-identical to the in-process answer — including nested
//! NF² results crossing the wire, multi-frame streamed results under a
//! tiny fetch size, ASOF version reads, and ≥ 8 concurrent clients.
//! Plus the protocol's failure modes: cancellation mid-stream,
//! admission rejection, oversized/garbage frames, version mismatch, and
//! graceful shutdown — all typed errors and clean closes, never hangs
//! or panics.

use std::io::{Read, Write};
use std::net::TcpStream;

use aim2::Database;
use aim2_model::fixtures;
use aim2_net::{
    write_frame, Client, ErrorCode, MetricsFormat, NetError, QueryOutcome, Request, Response,
    Server, ServerConfig, PROTOCOL_VERSION,
};
use aim2_txn::SharedDatabase;

/// The §3/§5 example corpus plus misc corner cases (mirrors the root
/// equivalence suite) — everything here must survive the wire.
const QUERIES: &[&str] = &[
    "SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS",
    "SELECT * FROM DEPARTMENTS",
    "SELECT x.DNO, x.MGRNO,
        PROJECTS = (SELECT y.PNO, y.PNAME,
            MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
            FROM y IN x.PROJECTS),
        x.BUDGET,
        EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
     FROM x IN DEPARTMENTS",
    "SELECT x.DNO, x.MGRNO,
        PROJECTS = (SELECT y.PNO, y.PNAME,
            MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN MEMBERS-1NF
                       WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
            FROM y IN PROJECTS-1NF WHERE y.DNO = x.DNO),
        x.BUDGET,
        EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF WHERE v.DNO = x.DNO)
     FROM x IN DEPARTMENTS-1NF",
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
     FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
     FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF
     WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO",
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
     WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.DNO, x.MGRNO,
        EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                     FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                     WHERE z.EMPNO = u.EMPNO)
     FROM x IN DEPARTMENTS",
    "SELECT x.DNO, m.LNAME, m.SEX,
        EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                     FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                     WHERE z.EMPNO = u.EMPNO)
     FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF
     WHERE x.MGRNO = m.EMPNO",
    "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
     WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.PROJECTS : y.PNO = 17 AND
           EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS
     WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'",
    "SELECT x.DNO, PS = (SELECT * FROM y IN x.PROJECTS) FROM x IN DEPARTMENTS
     WHERE x.DNO = 314",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE (EXISTS e IN x.EQUIP : e.TYPE = '4361')
        OR (EXISTS y IN x.PROJECTS : y.PNO = 17)",
    "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 999",
    "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO < x.MGRNO",
    "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
     WHERE EXISTS z IN y.MEMBERS : z.EMPNO > x.MGRNO",
    "SELECT x.DNO, HAS = (SELECT o.BUDGET FROM o IN DEPARTMENTS
                          WHERE o.DNO = x.DNO AND
                                EXISTS e IN o.EQUIP : e.TYPE = 'PC/AT')
     FROM x IN DEPARTMENTS",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS o IN DEPARTMENTS : o.MGRNO = x.DNO OR o.DNO = x.DNO",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE ALL o IN DEPARTMENTS-1NF : o.BUDGET > 0",
    // ASOF version reads over the wire, nested and bare.
    "SELECT now.K, OLD = (SELECT old.V FROM old IN SNAP ASOF '1984-06-01'
                          WHERE old.K = now.K)
     FROM now IN SNAP",
    "SELECT * FROM SNAP ASOF '1984-06-01'",
    "SELECT * FROM SNAP",
];

/// The paper fixture plus a versioned SNAP table for the ASOF queries.
fn paper_db() -> Database {
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE DEPARTMENTS-1NF ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER );
         CREATE TABLE PROJECTS-1NF ( PNO INTEGER, PNAME STRING, DNO INTEGER );
         CREATE TABLE MEMBERS-1NF ( EMPNO INTEGER, PNO INTEGER, DNO INTEGER, FUNCTION STRING );
         CREATE TABLE EQUIP-1NF ( DNO INTEGER, QU INTEGER, TYPE STRING );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
         CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } );
         CREATE TABLE SNAP ( K INTEGER, V INTEGER ) WITH VERSIONS",
    )
    .unwrap();
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("DEPARTMENTS-1NF", fixtures::departments_1nf_value()),
        ("PROJECTS-1NF", fixtures::projects_1nf_value()),
        ("MEMBERS-1NF", fixtures::members_1nf_value()),
        ("EQUIP-1NF", fixtures::equip_1nf_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
        ("REPORTS", fixtures::reports_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t).unwrap();
        }
    }
    db.set_today(aim2_model::Date::parse_iso("1984-01-01").unwrap());
    db.execute("INSERT INTO SNAP VALUES (1, 10)").unwrap();
    db.execute("INSERT INTO SNAP VALUES (2, 200)").unwrap();
    db.set_today(aim2_model::Date::parse_iso("1985-01-01").unwrap());
    db.execute("UPDATE s IN SNAP SET s.V = 20 WHERE s.K = 1")
        .unwrap();
    db
}

fn start_server(cfg: ServerConfig) -> aim2_net::ServerHandle {
    Server::start(SharedDatabase::new(paper_db()), cfg).unwrap()
}

fn connect(handle: &aim2_net::ServerHandle) -> Client {
    Client::connect(handle.local_addr(), "tcp_equivalence").unwrap()
}

/// Every corpus query over TCP — with fetch = 2 so any result beyond
/// two rows crosses in multiple frames with a suspension in between —
/// must equal the in-process evaluation on an identically-built DB.
#[test]
fn tcp_matches_in_process_for_all_queries() {
    let mut handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    let mut local = paper_db();
    for sql in QUERIES {
        let (schema, value) = local.query(sql).unwrap_or_else(|e| panic!("{sql}\n→ {e}"));
        match client.query_fetch(sql, 2) {
            Ok(QueryOutcome::Table(net_schema, net_value)) => {
                assert_eq!(net_schema, schema, "schema mismatch over TCP for: {sql}");
                assert_eq!(net_value, value, "result mismatch over TCP for: {sql}");
            }
            other => panic!("expected a table for {sql}, got {other:?}"),
        }
    }
    client.goodbye().unwrap();
    handle.shutdown();
}

/// The corpus again, but the served database had every flat table
/// frozen into columnar cold blocks first: the batch-at-a-time cold
/// path feeds the streamed wire protocol, and every answer must still
/// equal the in-process evaluation on a never-compacted twin.
#[test]
fn tcp_matches_in_process_on_compacted_tables() {
    let mut served = paper_db();
    for t in [
        "DEPARTMENTS-1NF",
        "PROJECTS-1NF",
        "MEMBERS-1NF",
        "EQUIP-1NF",
        "EMPLOYEES-1NF",
    ] {
        let (blocks, _) = served.compact_table(t).unwrap();
        assert!(blocks >= 1, "{t} must actually freeze");
    }
    let mut handle = Server::start(SharedDatabase::new(served), ServerConfig::default()).unwrap();
    let mut client = connect(&handle);
    let mut local = paper_db();
    for sql in QUERIES {
        let (schema, value) = local.query(sql).unwrap_or_else(|e| panic!("{sql}\n→ {e}"));
        match client.query_fetch(sql, 2) {
            Ok(QueryOutcome::Table(net_schema, net_value)) => {
                assert_eq!(net_schema, schema, "schema mismatch over TCP for: {sql}");
                assert_eq!(
                    net_value, value,
                    "columnar result mismatch over TCP for: {sql}"
                );
            }
            other => panic!("expected a table for {sql}, got {other:?}"),
        }
    }
    client.goodbye().unwrap();
    handle.shutdown();
}

/// A multi-row result under fetch = 1 visibly suspends: the raw frame
/// sequence is RowHeader, then (Rows done:false, FetchMore)*, then a
/// final Rows done:true.
#[test]
fn streamed_results_suspend_between_frames() {
    let mut handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    client
        .send(&Request::Query {
            fetch: 1,
            timeout_ms: 0,
            attempt: 0,
            trace: None,
            sql: "SELECT * FROM DEPARTMENTS".to_string(),
        })
        .unwrap();
    let Response::RowHeader { .. } = client.recv().unwrap() else {
        panic!("expected RowHeader first");
    };
    let mut rows = 0;
    let mut frames = 0;
    loop {
        match client.recv().unwrap() {
            Response::Rows { done, rows: batch } => {
                frames += 1;
                assert!(batch.len() <= 1, "fetch budget exceeded");
                rows += batch.len();
                if done {
                    break;
                }
                client.send(&Request::FetchMore { trace: None }).unwrap();
            }
            other => panic!("expected Rows, got {other:?}"),
        }
    }
    assert_eq!(rows, 3, "the paper's DEPARTMENTS has three departments");
    assert!(frames >= 3, "one-row frames must arrive one at a time");
    client.goodbye().unwrap();
    handle.shutdown();
}

/// ≥ 8 concurrent clients each replay the whole corpus; every answer
/// must match the in-process one computed up front.
#[test]
fn concurrent_clients_agree() {
    let handle = start_server(ServerConfig::default());
    let mut local = paper_db();
    let expected: Vec<_> = QUERIES
        .iter()
        .map(|sql| local.query(sql).unwrap())
        .collect();
    std::thread::scope(|s| {
        for worker in 0..8 {
            let handle = &handle;
            let expected = &expected;
            s.spawn(move || {
                let mut client = connect(handle);
                // Stagger the walk so different clients stream
                // different queries at the same moment.
                for i in 0..QUERIES.len() {
                    let at = (i + worker * 3) % QUERIES.len();
                    let got = client.query_fetch(QUERIES[at], 4).unwrap();
                    let (schema, value) = &expected[at];
                    assert_eq!(
                        got,
                        QueryOutcome::Table(schema.clone(), value.clone()),
                        "client {worker} diverged on: {}",
                        QUERIES[at]
                    );
                }
                client.goodbye().unwrap();
            });
        }
    });
}

/// Explicit read-only transactions over TCP pin an MVCC snapshot and
/// take zero locks; writes inside them are refused with the typed code.
#[test]
fn read_only_transactions_over_tcp() {
    let mut handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    client.begin(true).unwrap();
    let QueryOutcome::Table(_, v) = client.query("SELECT * FROM DEPARTMENTS").unwrap() else {
        panic!("expected table");
    };
    assert_eq!(v.tuples.len(), 3);
    let err = client
        .query("INSERT INTO DEPARTMENTS-1NF VALUES (1, 2, 3)")
        .unwrap_err();
    match err {
        NetError::Server { code, .. } => assert_eq!(code, ErrorCode::ReadOnly),
        other => panic!("expected a ReadOnly server error, got {other}"),
    }
    // The transaction survives the refused write; reads still answer.
    client.query("SELECT x.DNO FROM x IN DEPARTMENTS").unwrap();
    client.commit().unwrap();
    client.goodbye().unwrap();
    handle.shutdown();
}

/// DML autocommits over the wire and is visible to later queries; a
/// parse error comes back typed without disturbing the session.
#[test]
fn autocommit_dml_and_parse_errors() {
    let mut handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    match client
        .query("INSERT INTO DEPARTMENTS-1NF VALUES (900, 901, 1000)")
        .unwrap()
    {
        QueryOutcome::Count(1) => {}
        other => panic!("expected Count(1), got {other:?}"),
    }
    let err = client.query("SELEKT garbage FROM").unwrap_err();
    match err {
        NetError::Server { code, .. } => assert_eq!(code, ErrorCode::Parse),
        other => panic!("expected a Parse server error, got {other}"),
    }
    let QueryOutcome::Table(_, v) = client
        .query("SELECT x.DNO FROM x IN DEPARTMENTS-1NF WHERE x.DNO = 900")
        .unwrap()
    else {
        panic!("expected table");
    };
    assert_eq!(v.tuples.len(), 1, "autocommitted insert must be visible");
    client.goodbye().unwrap();
    handle.shutdown();
}

/// `CancelQuery` at a suspension point abandons the stream with a typed
/// `Cancelled` error, and the connection keeps working afterwards.
#[test]
fn cancel_mid_stream_keeps_connection_alive() {
    let mut handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    client
        .send(&Request::Query {
            fetch: 1,
            timeout_ms: 0,
            attempt: 0,
            trace: None,
            sql: "SELECT * FROM DEPARTMENTS".to_string(),
        })
        .unwrap();
    let Response::RowHeader { .. } = client.recv().unwrap() else {
        panic!("expected RowHeader");
    };
    let Response::Rows { done: false, .. } = client.recv().unwrap() else {
        panic!("expected a suspended Rows frame");
    };
    client.send(&Request::CancelQuery).unwrap();
    match client.recv().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Cancelled as u32),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Same connection, next query: full answer.
    let QueryOutcome::Table(_, v) = client.query("SELECT * FROM DEPARTMENTS").unwrap() else {
        panic!("expected table");
    };
    assert_eq!(v.tuples.len(), 3);
    client.goodbye().unwrap();
    handle.shutdown();
}

/// Admission control: over `max_conns`, a new client is rejected with a
/// retryable typed error; after a slot frees, it gets in.
#[test]
fn admission_control_rejects_excess_connections() {
    let mut handle = start_server(ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    });
    let c1 = connect(&handle);
    let c2 = connect(&handle);
    let err = match Client::connect(handle.local_addr(), "third") {
        Ok(_) => panic!("third connection must be rejected"),
        Err(e) => e,
    };
    match err {
        NetError::Server {
            code, retryable, ..
        } => {
            assert_eq!(code, ErrorCode::Admission);
            assert!(retryable, "admission rejection must be retryable");
        }
        other => panic!("expected an Admission error, got {other}"),
    }
    c1.goodbye().unwrap();
    // The slot is released once the server reaps the connection; poll
    // briefly rather than racing the reaper.
    let mut admitted = None;
    for _ in 0..100 {
        match Client::connect(handle.local_addr(), "retry") {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(e) if e.is_retryable() => std::thread::sleep(std::time::Duration::from_millis(10)),
            Err(e) => panic!("unexpected error while retrying: {e}"),
        }
    }
    admitted
        .expect("freed slot never admitted a new client")
        .goodbye()
        .unwrap();
    c2.goodbye().unwrap();
    handle.shutdown();
}

/// An oversized length prefix is refused before any allocation with a
/// typed Protocol error, then the connection closes cleanly.
#[test]
fn oversized_frame_rejected_and_closed() {
    let mut handle = start_server(ServerConfig {
        max_frame: 1024,
        ..ServerConfig::default()
    });
    let mut raw = TcpStream::connect(handle.local_addr()).unwrap();
    // Claim a ~3.9 GiB payload; send nothing further.
    let mut header = Vec::new();
    header.extend_from_slice(&0xEEEE_EEEEu32.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    raw.write_all(&header).unwrap();
    let payload = aim2_net::read_frame(&mut raw, aim2_net::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("server must answer before closing");
    match Response::decode(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol as u32),
        other => panic!("expected Protocol error, got {other:?}"),
    }
    // Clean close follows the error frame.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no trailing bytes after the error frame");
    handle.shutdown();
}

/// A frame with a corrupted CRC is refused with a typed Protocol error.
#[test]
fn corrupt_frame_rejected() {
    let mut handle = start_server(ServerConfig::default());
    let mut raw = TcpStream::connect(handle.local_addr()).unwrap();
    let mut framed = Vec::new();
    write_frame(
        &mut framed,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: "evil".to_string(),
        }
        .encode(),
    )
    .unwrap();
    let last = framed.len() - 1;
    framed[last] ^= 0x01;
    raw.write_all(&framed).unwrap();
    let payload = aim2_net::read_frame(&mut raw, aim2_net::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("server must answer before closing");
    match Response::decode(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol as u32),
        other => panic!("expected Protocol error, got {other:?}"),
    }
    handle.shutdown();
}

/// A client speaking a future protocol version is turned away in the
/// handshake with a typed error.
#[test]
fn version_mismatch_refused() {
    let mut handle = start_server(ServerConfig::default());
    let mut raw = TcpStream::connect(handle.local_addr()).unwrap();
    write_frame(
        &mut raw,
        &Request::Hello {
            version: PROTOCOL_VERSION + 1,
            client: "from the future".to_string(),
        }
        .encode(),
    )
    .unwrap();
    let payload = aim2_net::read_frame(&mut raw, aim2_net::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("server must answer before closing");
    match Response::decode(&payload).unwrap() {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Protocol as u32);
            assert!(message.contains("version"), "unhelpful message: {message}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
    handle.shutdown();
}

/// Admin verbs answer over the wire: metrics in both expositions,
/// grouped stats including the net group, and the integrity report.
#[test]
fn admin_verbs_answer() {
    let mut handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    client.query("SELECT * FROM DEPARTMENTS").unwrap();
    let json = client.metrics(MetricsFormat::Json).unwrap();
    assert!(json.contains("net.query"), "histogram missing: {json}");
    assert!(json.contains("net.connections"), "gauge missing: {json}");
    let prom = client.metrics(MetricsFormat::Prometheus).unwrap();
    assert!(prom.contains("net_query"), "prom exposition: {prom}");
    let stats = client.stats().unwrap();
    assert!(
        stats.contains("net"),
        "stats missing the net group: {stats}"
    );
    let report = client.integrity_check().unwrap();
    assert!(
        report.contains("integrity"),
        "unexpected integrity report: {report}"
    );
    client.goodbye().unwrap();
    handle.shutdown();
}

/// Graceful shutdown with an idle client: the client's next read gets a
/// typed Shutdown error (or a clean close), never a hang.
#[test]
fn graceful_shutdown_notifies_idle_connections() {
    let mut handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    // shutdown() joins the connection thread, which wakes at its next
    // idle tick, sends the Shutdown notice, and exits — the frame is
    // buffered on our socket by the time shutdown() returns.
    handle.shutdown();
    match client.recv() {
        Ok(Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::Shutdown as u32);
        }
        Err(NetError::Closed) => {}
        other => panic!("expected Shutdown or clean close, got {other:?}"),
    }
}
