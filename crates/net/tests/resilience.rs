//! Server/client resilience: per-statement deadlines, keepalive,
//! idle-connection reaping, watermark load shedding with backoff
//! hints, retry budgets, and graceful degradation to read-only serving
//! after a corruption-class storage fault. Every scenario asserts
//! *typed* failures and surviving connections — never hangs, never
//! process exits — and that the `net.*` resilience counters are
//! visible through the wire `Stats`/`Metrics` verbs.

use std::time::Duration;

use aim2::{Database, DbConfig};
use aim2_net::{
    Client, ClientConfig, ErrorCode, NetError, QueryOutcome, Request, Response, RetryPolicy,
    Server, ServerConfig, ServerHandle,
};
use aim2_txn::SharedDatabase;

fn small_db() -> Database {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE NUMS ( K INTEGER, V INTEGER )")
        .unwrap();
    for i in 0..8 {
        db.execute(&format!("INSERT INTO NUMS VALUES ({i}, {})", i * 10))
            .unwrap();
    }
    db
}

fn start(cfg: ServerConfig) -> ServerHandle {
    Server::start(SharedDatabase::new(small_db()), cfg).unwrap()
}

/// A client that never retries and never waits long — failures must be
/// typed and immediate for the assertions below.
fn no_retry(handle: &ServerHandle) -> Client {
    Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            client_name: "resilience".to_string(),
            read_timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::none(),
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

/// Pull the named counter out of the wire `Stats` exposition
/// (`group key=value ...` lines, one group per line).
fn stat(client: &mut Client, key: &str) -> u64 {
    let text = client.stats().unwrap();
    for token in text.split_whitespace() {
        if let Some(v) = token.strip_prefix(&format!("{key}=")) {
            return v.parse().unwrap();
        }
    }
    panic!("counter {key} not in stats exposition:\n{text}");
}

/// A client-supplied deadline expires while the portal is suspended:
/// the stream ends with a typed, retryable `DeadlineExceeded` error
/// frame — and the *connection* survives to serve the next statement.
#[test]
fn deadline_expires_mid_stream_typed_and_connection_survives() {
    let handle = start(ServerConfig::default());
    let mut client = no_retry(&handle);

    client
        .send(&Request::Query {
            fetch: 1,
            timeout_ms: 120,
            attempt: 0,
            trace: None,
            sql: "SELECT * FROM NUMS".to_string(),
        })
        .unwrap();
    let Response::RowHeader { .. } = client.recv().unwrap() else {
        panic!("expected RowHeader first");
    };
    // Sit on the suspended portal until the deadline is long gone —
    // the clock covers suspension time, not just compute.
    std::thread::sleep(Duration::from_millis(250));
    loop {
        match client.recv().unwrap() {
            Response::Rows { done, .. } => {
                assert!(!done, "statement must not outlive its deadline");
                client.send(&Request::FetchMore { trace: None }).unwrap();
            }
            Response::Error {
                code,
                retryable,
                retry_after_ms: _,
                message,
            } => {
                assert_eq!(code, ErrorCode::DeadlineExceeded as u32, "{message}");
                assert!(retryable, "deadline expiry must be retryable");
                break;
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }

    // The connection is still a working session.
    client.ping().unwrap();
    match client
        .query("SELECT x.K FROM x IN NUMS WHERE x.K = 3")
        .unwrap()
    {
        QueryOutcome::Table(_, v) => assert_eq!(v.tuples.len(), 1),
        other => panic!("expected a table, got {other:?}"),
    }
    assert!(stat(&mut client, "deadline-exceeded") >= 1);
    client.goodbye().unwrap();
}

/// With no client-supplied timeout, the server's configured default
/// statement deadline applies.
#[test]
fn server_default_statement_timeout_applies() {
    let handle = start(ServerConfig {
        statement_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });
    let mut client = no_retry(&handle);
    client
        .send(&Request::Query {
            fetch: 1,
            timeout_ms: 0,
            attempt: 0,
            trace: None,
            sql: "SELECT * FROM NUMS".to_string(),
        })
        .unwrap();
    let Response::RowHeader { .. } = client.recv().unwrap() else {
        panic!("expected RowHeader");
    };
    std::thread::sleep(Duration::from_millis(220));
    loop {
        match client.recv().unwrap() {
            Response::Rows { done, .. } => {
                assert!(!done);
                client.send(&Request::FetchMore { trace: None }).unwrap();
            }
            Response::Error {
                code, retryable, ..
            } => {
                assert_eq!(code, ErrorCode::DeadlineExceeded as u32);
                assert!(retryable);
                break;
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    client.goodbye().unwrap();
}

/// `Ping` answers `Pong`, counts on the metrics registry, and resets
/// the idle clock: a connection that pings inside the idle window
/// stays alive past several windows.
#[test]
fn ping_keepalive_defeats_idle_reaping() {
    let handle = start(ServerConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let mut client = no_retry(&handle);
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(150));
        client.ping().unwrap();
    }
    assert!(stat(&mut client, "pings") >= 5);
    client.goodbye().unwrap();
}

/// A connection that goes quiet past the idle timeout is reaped: the
/// server sends a typed, retryable `IdleTimeout` error and closes.
#[test]
fn idle_connection_is_reaped_with_typed_error() {
    let handle = start(ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    let mut client = no_retry(&handle);
    client.ping().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    match client.recv() {
        Ok(Response::Error {
            code, retryable, ..
        }) => {
            assert_eq!(code, ErrorCode::IdleTimeout as u32);
            assert!(retryable, "idle reap should invite a reconnect");
        }
        other => panic!("expected IdleTimeout error frame, got {other:?}"),
    }
    // And then the socket closes.
    assert!(matches!(client.recv(), Err(e) if e.is_connection_loss()));
}

/// Past the inflight watermark every statement is shed with a
/// retryable `Admission` error carrying a `retry_after_ms` hint, and
/// the shed counter is visible over the wire.
#[test]
fn load_shedding_returns_retry_after_hint() {
    let handle = start(ServerConfig {
        max_inflight: 0, // every statement is over the watermark
        ..ServerConfig::default()
    });
    let mut client = no_retry(&handle);
    let err = client.query("SELECT * FROM NUMS").unwrap_err();
    match &err {
        NetError::Server {
            code,
            retryable,
            retry_after_ms,
            ..
        } => {
            assert_eq!(*code, ErrorCode::Admission);
            assert!(*retryable);
            assert!(*retry_after_ms > 0, "shed must carry a backoff hint");
        }
        other => panic!("expected Admission shed, got {other:?}"),
    }
    assert!(err.is_retryable());
    // Admin verbs are not statements and still answer.
    assert!(stat(&mut client, "load-shed") >= 1);
    client.goodbye().unwrap();
}

/// A retrying client gives up after its budgeted attempts against a
/// permanently shedding server, having sent its attempt counter on the
/// wire (the server-side `net.retries` counter sees it).
#[test]
fn retry_budget_exhausts_against_persistent_shedding() {
    let handle = start(ServerConfig {
        max_inflight: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            client_name: "budgeted".to_string(),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(20),
                budget: Duration::from_secs(5),
                seed: 7,
            },
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let err = client.query("SELECT * FROM NUMS").unwrap_err();
    assert!(
        matches!(
            &err,
            NetError::Server {
                code: ErrorCode::Admission,
                ..
            }
        ),
        "got {err:?}"
    );
    assert_eq!(client.retries(), 2, "3 attempts = 2 retries");
    assert!(stat(&mut client, "retries") >= 2, "server saw the attempts");
    client.goodbye().unwrap();
}

/// DML is never auto-retried, even on a retryable error: the shed
/// surfaces immediately with zero retries.
#[test]
fn dml_is_never_auto_retried() {
    let handle = start(ServerConfig {
        max_inflight: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            client_name: "dml".to_string(),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let err = client
        .query("INSERT INTO NUMS VALUES (99, 990)")
        .unwrap_err();
    assert!(err.is_retryable(), "the *error* is retryable...");
    assert_eq!(client.retries(), 0, "...but DML must not be replayed");

    // Same for a read inside an explicit transaction: the txn gate
    // makes it unsafe regardless of the statement's shape.
    // (Begin is shed too under max_inflight = 0? No — Begin is a verb,
    // not a statement; it is admitted. The query inside sheds.)
    client.begin(true).unwrap();
    let err = client.query("SELECT * FROM NUMS").unwrap_err();
    assert!(err.is_retryable());
    assert_eq!(client.retries(), 0, "in-txn reads must not be replayed");
    let _ = client.rollback();
    client.goodbye().unwrap();
}

/// Corruption-class storage fault → the server degrades to read-only
/// serving: the integrity verb reports the damage and flips the
/// degraded flag; reads keep answering; writes (and read-write BEGIN)
/// are refused with a typed, non-retryable `Degraded` error.
#[test]
fn degrades_to_read_only_after_storage_corruption() {
    use std::io::{Read as _, Seek as _, SeekFrom, Write as _};

    let dir = std::env::temp_dir().join(format!("aim2_degrade_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    const PAGE: usize = 1024;
    let cfg = DbConfig {
        page_size: PAGE,
        buffer_frames: 4,
        data_dir: Some(dir.clone()),
        ..DbConfig::default()
    };

    // Build a checkpointed two-table database, then corrupt only BAD's
    // segment on disk.
    {
        let mut db = Database::with_config(cfg.clone());
        db.execute("CREATE TABLE GOOD ( K INTEGER, V INTEGER )")
            .unwrap();
        db.execute("CREATE TABLE BAD ( K INTEGER, V INTEGER )")
            .unwrap();
        for i in 0..40 {
            db.execute(&format!("INSERT INTO GOOD VALUES ({i}, {})", i * 10))
                .unwrap();
            db.execute(&format!("INSERT INTO BAD VALUES ({i}, {})", i * 10))
                .unwrap();
        }
        db.checkpoint().unwrap();
    }
    let bad_seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with("_BAD.seg"))
        })
        .expect("BAD segment file");
    let len = std::fs::metadata(&bad_seg).unwrap().len();
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&bad_seg)
        .unwrap();
    // One mid-page bit flip per page: stamped pages must fail their
    // checksum; flipping every page guarantees at least one is stamped.
    let mut page = 0;
    while (page * PAGE as u64) < len {
        let off = page * PAGE as u64 + (PAGE as u64 / 2);
        let mut b = [0u8; 1];
        f.seek(SeekFrom::Start(off)).unwrap();
        f.read_exact(&mut b).unwrap();
        b[0] ^= 0x10;
        f.seek(SeekFrom::Start(off)).unwrap();
        f.write_all(&b).unwrap();
        page += 1;
    }
    drop(f);

    let db = Database::open(cfg).unwrap();
    let handle = Server::start(SharedDatabase::new(db), ServerConfig::default()).unwrap();
    let mut client = no_retry(&handle);

    // The integrity walker finds the rot and flips the server into
    // degraded read-only mode.
    let report = client.integrity_check().unwrap();
    assert!(
        handle.degraded(),
        "integrity violations must degrade the server; report:\n{report}"
    );

    // Reads still answer.
    match client.query("SELECT x.K, x.V FROM x IN GOOD WHERE x.K = 7") {
        Ok(QueryOutcome::Table(_, v)) => assert_eq!(v.tuples.len(), 1),
        other => panic!("reads must survive degradation, got {other:?}"),
    }

    // Writes are refused, typed and non-retryable.
    let err = client
        .query("INSERT INTO GOOD VALUES (99, 990)")
        .unwrap_err();
    match &err {
        NetError::Server {
            code, retryable, ..
        } => {
            assert_eq!(*code, ErrorCode::Degraded);
            assert!(!*retryable, "degraded is not retryable without an operator");
        }
        other => panic!("expected Degraded, got {other:?}"),
    }

    // Read-write BEGIN is refused; read-only BEGIN still works.
    let err = client.begin(false).unwrap_err();
    assert!(matches!(
        &err,
        NetError::Server {
            code: ErrorCode::Degraded,
            ..
        }
    ));
    client.begin(true).unwrap();
    match client.query("SELECT * FROM GOOD") {
        Ok(QueryOutcome::Table(_, v)) => assert_eq!(v.tuples.len(), 40),
        other => panic!("snapshot read under degradation failed: {other:?}"),
    }
    client.commit().unwrap();
    client.goodbye().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Client-side bounded reads: a server that accepts but never answers
/// surfaces as a typed `Timeout`, not a hung client.
#[test]
fn black_holed_read_times_out_typed() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Accept and hold the socket open without ever responding.
    let hold = std::thread::spawn(move || {
        let (_s, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(2));
    });
    let err = match Client::connect_with(
        addr,
        ClientConfig {
            client_name: "blackhole".to_string(),
            read_timeout: Some(Duration::from_millis(200)),
            retry: RetryPolicy::none(),
            ..ClientConfig::default()
        },
    ) {
        Ok(_) => panic!("handshake cannot succeed against a mute server"),
        Err(e) => e,
    };
    assert!(matches!(err, NetError::Timeout), "got {err:?}");
    hold.join().unwrap();
}
