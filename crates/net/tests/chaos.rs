//! Chaos suite: the deterministic fault-injection TCP proxy
//! ([`ChaosProxy`]) between real clients and a real server, alone and
//! composed with the storage layer's disk [`FaultInjector`]. Seeds are
//! pinned, so every fault schedule — which frames drop, which bits
//! flip, which links sever — replays identically run to run.
//!
//! Invariants proved here:
//! * retrying read-only clients **converge** through frame drops,
//!   delays, corruption, and truncation — every query eventually
//!   answers correctly, no client hangs;
//! * a **lost DML ack** never causes a silent double-apply: the client
//!   reconnects but refuses to replay, and the row count proves the
//!   write landed exactly once;
//! * network chaos **composes** with injected disk faults: typed
//!   storage errors surface per-statement, the connection survives,
//!   and the surviving rows are exactly the acknowledged ones;
//! * a full **partition** (every link severed) heals: clients
//!   reconnect through the proxy and continue.

use std::time::Duration;

use aim2::{Database, DbConfig};
use aim2_net::{
    ChaosProxy, Client, ClientConfig, FaultPlan, QueryOutcome, RetryPolicy, Server, ServerConfig,
    ServerHandle,
};
use aim2_storage::faultdisk::FaultInjector;
use aim2_txn::SharedDatabase;

/// Pinned chaos seed — bump only deliberately; CI logs the fault
/// schedule it produces.
const SEED: u64 = 0xC0_FFEE_2026;

fn nums_db() -> Database {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE NUMS ( K INTEGER, V INTEGER )")
        .unwrap();
    for i in 0..6 {
        db.execute(&format!("INSERT INTO NUMS VALUES ({i}, {})", i * 10))
            .unwrap();
    }
    db
}

fn start(cfg: ServerConfig) -> ServerHandle {
    Server::start(SharedDatabase::new(nums_db()), cfg).unwrap()
}

/// A patient client tuned for a hostile network: short bounded reads
/// (fault detection), many cheap retries.
fn chaos_client(addr: std::net::SocketAddr, name: &str, seed: u64) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            client_name: name.to_string(),
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_millis(400)),
            retry: RetryPolicy {
                max_attempts: 12,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(50),
                budget: Duration::from_secs(60),
                seed,
            },
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

/// Frame drops, delays, bit flips, and truncate-then-sever in both
/// directions: concurrent read-only clients retry through all of it
/// and every query converges to the right answer. Zero hung clients —
/// the whole test is bounded by read timeouts and retry budgets.
#[test]
fn retrying_readers_converge_through_chaotic_network() {
    let mut handle = start(ServerConfig::default());
    let plan = |scale: u32| FaultPlan {
        drop_per_mille: 25 * scale,
        delay_per_mille: 25 * scale,
        delay: Duration::from_millis(20),
        corrupt_per_mille: 20 * scale,
        truncate_per_mille: 15 * scale,
        black_hole_per_mille: 0,
        drop_nth_response: None,
    };
    let proxy = ChaosProxy::start(handle.local_addr(), SEED, plan(1), plan(1)).unwrap();
    let addr = proxy.addr();

    const CLIENTS: usize = 4;
    const QUERIES: usize = 20;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = chaos_client(addr, &format!("chaos-{w}"), SEED ^ w as u64);
                let mut ok = 0usize;
                for i in 0..QUERIES {
                    let k = i % 6;
                    match client.query(&format!("SELECT x.K, x.V FROM x IN NUMS WHERE x.K = {k}")) {
                        Ok(QueryOutcome::Table(_, v)) => {
                            assert_eq!(v.tuples.len(), 1, "worker {w} query {i}");
                            ok += 1;
                        }
                        Ok(other) => panic!("worker {w}: unexpected outcome {other:?}"),
                        Err(e) => panic!("worker {w} query {i} never converged: {e}"),
                    }
                }
                (ok, client.retries(), client.reconnects())
            })
        })
        .collect();
    let mut total_ok = 0;
    let mut total_recovery = 0;
    for h in workers {
        let (ok, retries, reconnects) = h.join().expect("no chaos worker may die");
        total_ok += ok;
        total_recovery += retries + reconnects;
    }
    assert_eq!(total_ok, CLIENTS * QUERIES, "every query must converge");
    assert!(
        proxy.faults_injected() > 0,
        "the pinned seed must actually inject faults"
    );
    // The clients demonstrably recovered through them.
    assert!(
        total_recovery > 0,
        "faults were injected but nobody retried/reconnected?"
    );
    eprintln!(
        "chaos log ({} faults): {:?}",
        proxy.faults_injected(),
        proxy.fault_log()
    );
    proxy.shutdown();
    handle.shutdown();
}

/// The classic in-doubt scenario: the server applies an INSERT but the
/// ack frame is dropped. The client sees a connection-class failure,
/// reconnects — and must NOT replay the DML. The table ends up with
/// exactly one copy of the row.
#[test]
fn lost_dml_ack_is_never_replayed() {
    let mut handle = start(ServerConfig::default());
    // Link frame numbering (s2c): 1 = HelloOk, 2 = the INSERT's ack.
    let s2c = FaultPlan {
        drop_nth_response: Some(2),
        ..FaultPlan::clean()
    };
    let proxy = ChaosProxy::start(handle.local_addr(), SEED, FaultPlan::clean(), s2c).unwrap();

    let mut client = chaos_client(proxy.addr(), "lost-ack", SEED);
    let err = client
        .query("INSERT INTO NUMS VALUES (77, 770)")
        .expect_err("the dropped ack must surface as an error");
    assert!(
        err.is_connection_loss() || err.is_retryable(),
        "typed connection-class failure expected, got {err:?}"
    );
    assert_eq!(client.retries(), 0, "DML must never be auto-replayed");
    assert!(
        proxy.fault_log().iter().any(|l| l.contains("drop")),
        "the scripted drop must have fired: {:?}",
        proxy.fault_log()
    );

    // Ground truth via a direct (un-proxied) connection: the insert
    // applied exactly once — present, not duplicated.
    let mut direct = Client::connect(handle.local_addr(), "verifier").unwrap();
    match direct
        .query("SELECT x.K, x.V FROM x IN NUMS WHERE x.K = 77")
        .unwrap()
    {
        QueryOutcome::Table(_, v) => {
            assert_eq!(
                v.tuples.len(),
                1,
                "exactly-once: lost ack ≠ lost or doubled write"
            );
        }
        other => panic!("expected a table, got {other:?}"),
    }
    direct.goodbye().unwrap();
    proxy.shutdown();
    handle.shutdown();
}

/// Network chaos composed with disk fault injection: a delay-chaotic
/// proxy in front, a disk whose 25th write fails transiently behind.
/// Every INSERT either acks and its row survives, or fails typed and
/// its row is absent — acknowledged work is exactly the surviving work,
/// and one session rides through both fault domains.
#[test]
fn network_chaos_composes_with_disk_faults() {
    let dir = std::env::temp_dir().join(format!("aim2_chaosdisk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::with_config(DbConfig {
        data_dir: Some(dir.clone()),
        fault: Some(FaultInjector::transient_at(25)),
        ..DbConfig::default()
    });
    let mut setup = Database::in_memory(); // schema text reused below
    setup.execute("CREATE TABLE T ( K INTEGER )").unwrap();
    drop(setup);

    let shared = SharedDatabase::new(db);
    let mut handle = Server::start(shared, ServerConfig::default()).unwrap();
    // Delay-only chaos: adds latency jitter without losing frames, so
    // DML acks are reliable and the exactly-the-acknowledged-rows
    // invariant is exact.
    let plan = FaultPlan {
        delay_per_mille: 150,
        delay: Duration::from_millis(10),
        ..FaultPlan::clean()
    };
    let proxy = ChaosProxy::start(handle.local_addr(), SEED, plan.clone(), plan).unwrap();

    let mut client = chaos_client(proxy.addr(), "disk-chaos", SEED);
    client.query("CREATE TABLE T ( K INTEGER )").unwrap();
    let mut acked = Vec::new();
    let mut failed = 0;
    for k in 0..20 {
        match client.query(&format!("INSERT INTO T VALUES ({k})")) {
            Ok(_) => acked.push(k),
            Err(e) => {
                // Typed engine error; the connection must survive it.
                assert!(
                    !e.is_connection_loss(),
                    "disk fault must not kill the link: {e}"
                );
                failed += 1;
            }
        }
    }
    match client.query("SELECT * FROM T").unwrap() {
        QueryOutcome::Table(_, v) => {
            assert_eq!(
                v.tuples.len(),
                acked.len(),
                "surviving rows must be exactly the acknowledged ones ({failed} failed typed)"
            );
        }
        other => panic!("expected a table, got {other:?}"),
    }
    assert!(
        proxy.faults_injected() > 0,
        "delay chaos must have fired under the pinned seed"
    );
    client.goodbye().unwrap();
    proxy.shutdown();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A full partition (every live link severed at once) heals: the
/// client's next statement reconnects through the proxy and succeeds.
#[test]
fn partition_heals_via_reconnect() {
    let mut handle = start(ServerConfig::default());
    let proxy = ChaosProxy::start(
        handle.local_addr(),
        SEED,
        FaultPlan::clean(),
        FaultPlan::clean(),
    )
    .unwrap();
    let mut client = chaos_client(proxy.addr(), "partition", SEED);
    match client.query("SELECT * FROM NUMS").unwrap() {
        QueryOutcome::Table(_, v) => assert_eq!(v.tuples.len(), 6),
        other => panic!("{other:?}"),
    }

    proxy.sever_all();

    // Safe read: connection loss → reconnect → replay → answer.
    match client.query("SELECT * FROM NUMS").unwrap() {
        QueryOutcome::Table(_, v) => assert_eq!(v.tuples.len(), 6),
        other => panic!("{other:?}"),
    }
    assert!(
        client.reconnects() >= 1,
        "the heal must be a real reconnect"
    );
    client.goodbye().unwrap();
    proxy.shutdown();
    handle.shutdown();
}
