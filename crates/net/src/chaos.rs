//! Deterministic fault-injection TCP proxy for chaos tests.
//!
//! [`ChaosProxy`] sits between a client and an `aim2-server`, forwards
//! traffic **frame by frame** (it parses the `[len][crc][payload]`
//! envelope, so faults land on whole protocol messages rather than
//! arbitrary byte boundaries), and injects faults from a seeded LCG:
//! the same seed always produces the same fault schedule, so a failing
//! chaos run replays exactly.
//!
//! Faults are configured per direction as per-mille probabilities in
//! [`FaultPlan`]:
//!
//! * **drop** — swallow the frame entirely (the peer never sees it);
//! * **delay** — hold the frame for a bounded pause before forwarding;
//! * **corrupt** — flip one payload bit but *recompute nothing*, so the
//!   receiver's CRC check must catch it;
//! * **truncate** — forward only a prefix of the frame, then sever the
//!   link (mid-frame connection loss);
//! * **black-hole** — stop forwarding in this direction forever while
//!   keeping the socket open (the peer's read must time out).
//!
//! [`ChaosProxy::sever_all`] hard-closes every live link (both
//! sockets), simulating a network partition; the listener keeps
//! accepting, so reconnecting clients get a fresh link. Scripted
//! determinism beyond probabilities comes from
//! [`FaultPlan::drop_nth_response`]: drop exactly the Nth
//! server→client frame on a link — the tool for "the commit applied
//! but the ack was lost" scenarios.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::wire::HEADER_LEN;

/// Per-direction fault probabilities, in per-mille (0–1000).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Swallow the frame.
    pub drop_per_mille: u32,
    /// Hold the frame for `delay` before forwarding.
    pub delay_per_mille: u32,
    pub delay: Duration,
    /// Flip one payload bit (CRC left stale — the receiver must reject).
    pub corrupt_per_mille: u32,
    /// Forward a prefix of the frame, then sever the link.
    pub truncate_per_mille: u32,
    /// Stop forwarding this direction forever, socket left open.
    pub black_hole_per_mille: u32,
    /// Scripted fault: drop exactly the Nth frame (1-based) in this
    /// direction on each link, independent of the probabilities.
    pub drop_nth_response: Option<u64>,
}

impl FaultPlan {
    /// Forward everything untouched.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }
}

/// Splitmix-style step; distinct streams per link/direction come from
/// hashing the link id into the seed.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    // xorshift the high bits down so per-mille sampling sees mixing.
    let x = *state;
    (x ^ (x >> 31)).wrapping_mul(0x2545F4914F6CDD1D)
}

fn roll(state: &mut u64, per_mille: u32) -> bool {
    per_mille > 0 && (lcg_next(state) % 1000) < u64::from(per_mille)
}

/// What a fault decision did to one frame, for the chaos log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Drop,
    Delay,
    Corrupt,
    Truncate,
    BlackHole,
}

struct Link {
    client: TcpStream,
    server: TcpStream,
}

struct ProxyInner {
    listener: TcpListener,
    upstream: SocketAddr,
    seed: u64,
    c2s: FaultPlan,
    s2c: FaultPlan,
    shutdown: AtomicBool,
    faults: AtomicU64,
    next_link: AtomicU64,
    links: Mutex<HashMap<u64, Link>>,
    /// Human-readable record of every fault injected, in order.
    log: Mutex<Vec<String>>,
}

/// A running fault-injection proxy. Dropping the handle shuts it down.
pub struct ChaosProxy {
    inner: Arc<ProxyInner>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral localhost port, forwarding to
    /// `upstream`. `seed` pins the fault schedule; `c2s`/`s2c` are the
    /// client→server and server→client fault plans.
    pub fn start(
        upstream: SocketAddr,
        seed: u64,
        c2s: FaultPlan,
        s2c: FaultPlan,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let inner = Arc::new(ProxyInner {
            listener,
            upstream,
            seed,
            c2s,
            s2c,
            shutdown: AtomicBool::new(false),
            faults: AtomicU64::new(0),
            next_link: AtomicU64::new(1),
            links: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("chaos-accept".to_string())
                .spawn(move || accept_loop(inner))?
        };
        Ok(ChaosProxy {
            inner,
            accept: Some(accept),
        })
    }

    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.inner.listener.local_addr().expect("proxy addr")
    }

    /// Total faults injected so far, across all links and directions.
    pub fn faults_injected(&self) -> u64 {
        self.inner.faults.load(Ordering::SeqCst)
    }

    /// Snapshot of the fault log (one line per injected fault).
    pub fn fault_log(&self) -> Vec<String> {
        self.inner.log.lock().unwrap().clone()
    }

    /// Hard-close every live link in both directions — a partition.
    /// The listener keeps accepting, so reconnects establish new links.
    pub fn sever_all(&self) {
        let links = self.inner.links.lock().unwrap();
        for link in links.values() {
            let _ = link.client.shutdown(Shutdown::Both);
            let _ = link.server.shutdown(Shutdown::Both);
        }
    }

    /// Stop accepting and close everything.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        if let Ok(addr) = self.inner.listener.local_addr() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
        self.sever_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(inner: Arc<ProxyInner>) {
    loop {
        let (client, _) = match inner.listener.accept() {
            Ok(c) => c,
            Err(_) => return,
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let server = match TcpStream::connect(inner.upstream) {
            Ok(s) => s,
            Err(_) => continue, // upstream down (crash test mid-restart)
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let id = inner.next_link.fetch_add(1, Ordering::SeqCst);
        {
            let mut links = inner.links.lock().unwrap();
            links.insert(
                id,
                Link {
                    client: client.try_clone().expect("clone client"),
                    server: server.try_clone().expect("clone server"),
                },
            );
        }
        spawn_pump(
            Arc::clone(&inner),
            id,
            client.try_clone().unwrap(),
            server.try_clone().unwrap(),
            true,
        );
        spawn_pump(Arc::clone(&inner), id, server, client, false);
    }
}

fn spawn_pump(inner: Arc<ProxyInner>, link: u64, from: TcpStream, to: TcpStream, c2s: bool) {
    let dir = if c2s { "c2s" } else { "s2c" };
    let _ = std::thread::Builder::new()
        .name(format!("chaos-{dir}-{link}"))
        .spawn(move || pump(inner, link, from, to, c2s));
}

/// Forward frames `from` → `to`, injecting faults per the direction's
/// plan. Exits on EOF, I/O error, or a truncate fault; cleans up the
/// link entry when the client→server side exits.
fn pump(inner: Arc<ProxyInner>, link: u64, mut from: TcpStream, mut to: TcpStream, c2s: bool) {
    let plan = if c2s { &inner.c2s } else { &inner.s2c };
    let dir = if c2s { "c2s" } else { "s2c" };
    // Distinct deterministic stream per link/direction.
    let mut rng = inner
        .seed
        .wrapping_add(link.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(if c2s { 0 } else { 0x517C_C1B7_2722_0A95 });
    let mut frame_no: u64 = 0;
    let mut black_holed = false;
    while let Ok(Some(frame)) = read_raw_frame(&mut from) {
        frame_no += 1;
        if black_holed {
            continue; // keep draining so the sender never blocks
        }
        let fault = decide(plan, &mut rng, frame_no);
        match fault {
            None => {
                if to.write_all(&frame).is_err() {
                    break;
                }
            }
            Some(Fault::Drop) => {
                inner.note(link, dir, frame_no, "drop");
            }
            Some(Fault::Delay) => {
                inner.note(link, dir, frame_no, "delay");
                std::thread::sleep(plan.delay);
                if to.write_all(&frame).is_err() {
                    break;
                }
            }
            Some(Fault::Corrupt) => {
                inner.note(link, dir, frame_no, "corrupt");
                let mut bad = frame.clone();
                if bad.len() > HEADER_LEN {
                    // Flip one payload bit; CRC goes stale on purpose.
                    let idx = HEADER_LEN + (lcg_next(&mut rng) as usize % (bad.len() - HEADER_LEN));
                    bad[idx] ^= 1 << (lcg_next(&mut rng) % 8);
                }
                if to.write_all(&bad).is_err() {
                    break;
                }
            }
            Some(Fault::Truncate) => {
                inner.note(link, dir, frame_no, "truncate+sever");
                let keep = (frame.len() / 2).max(1);
                let _ = to.write_all(&frame[..keep]);
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                break;
            }
            Some(Fault::BlackHole) => {
                inner.note(link, dir, frame_no, "black-hole");
                black_holed = true;
            }
        }
    }
    if c2s {
        // One side tearing down is enough to retire the link.
        let _ = to.shutdown(Shutdown::Both);
        inner.links.lock().unwrap().remove(&link);
    }
}

fn decide(plan: &FaultPlan, rng: &mut u64, frame_no: u64) -> Option<Fault> {
    if plan.drop_nth_response == Some(frame_no) {
        return Some(Fault::Drop);
    }
    if roll(rng, plan.drop_per_mille) {
        return Some(Fault::Drop);
    }
    if roll(rng, plan.delay_per_mille) {
        return Some(Fault::Delay);
    }
    if roll(rng, plan.corrupt_per_mille) {
        return Some(Fault::Corrupt);
    }
    if roll(rng, plan.truncate_per_mille) {
        return Some(Fault::Truncate);
    }
    if roll(rng, plan.black_hole_per_mille) {
        return Some(Fault::BlackHole);
    }
    None
}

impl ProxyInner {
    fn note(&self, link: u64, dir: &str, frame_no: u64, what: &str) {
        self.faults.fetch_add(1, Ordering::SeqCst);
        self.log.lock().unwrap().push(format!(
            "link={link} dir={dir} frame={frame_no} fault={what}"
        ));
    }
}

/// Read one whole wire frame (header + payload) as raw bytes, without
/// validating the CRC — the proxy forwards bytes, the endpoints judge
/// them. Returns `Ok(None)` on clean EOF at a frame boundary.
fn read_raw_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = stream.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof mid-header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    // A proxy should never buffer unbounded garbage; 64 MiB is far
    // above any legitimate frame.
    if len > 64 << 20 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large for proxy",
        ));
    }
    let mut frame = vec![0u8; HEADER_LEN + len];
    frame[..HEADER_LEN].copy_from_slice(&header);
    let mut off = HEADER_LEN;
    while off < frame.len() {
        let n = stream.read(&mut frame[off..])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof mid-frame",
            ));
        }
        off += n;
    }
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            assert_eq!(lcg_next(&mut a), lcg_next(&mut b));
        }
        let mut c = 43u64;
        assert_ne!(lcg_next(&mut a), lcg_next(&mut c));
    }

    #[test]
    fn scripted_drop_fires_on_exact_frame() {
        let plan = FaultPlan {
            drop_nth_response: Some(3),
            ..FaultPlan::clean()
        };
        let mut rng = 1u64;
        assert_eq!(decide(&plan, &mut rng, 1), None);
        assert_eq!(decide(&plan, &mut rng, 2), None);
        assert_eq!(decide(&plan, &mut rng, 3), Some(Fault::Drop));
        assert_eq!(decide(&plan, &mut rng, 4), None);
    }
}
