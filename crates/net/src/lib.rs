//! Network service layer for the AIM-II reproduction.
//!
//! The paper's prototype was driven through a single-user application
//! interface; this crate is the multi-user counterpart: a
//! thread-per-connection TCP server (`aim2-server`) speaking a
//! length-prefixed, CRC-guarded binary protocol, and a client library +
//! CLI (`aim2-client`). Results stream as typed row frames driven by
//! the evaluator's row callbacks, so large results never materialize
//! server-side. See DESIGN.md §7g for the wire format.

pub mod chaos;
pub mod client;
pub mod error;
pub mod proto;
pub mod server;
pub mod wire;

pub use chaos::{ChaosProxy, FaultPlan};
pub use client::{AttemptRecord, Client, ClientConfig, ClientTrace, QueryOutcome, RetryPolicy};
pub use error::{ErrorCode, NetError};
pub use proto::{
    MetricsFormat, Request, Response, TraceContext, TraceFormat, TraceQuery, PROTOCOL_VERSION,
    PROTOCOL_VERSION_V2,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use wire::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
