//! Typed errors for the network layer.
//!
//! Two families: [`NetError`] is what client/server code sees locally
//! (I/O failures, protocol violations, server-reported errors), and
//! [`ErrorCode`] is the numeric error class carried inside an `Error`
//! response frame so clients can react (retry, re-handshake, give up)
//! without parsing message text.

use std::fmt;
use std::io;

use crate::wire::FrameError;

/// Numeric error class carried on the wire in `Response::Error`.
///
/// The mapping from engine errors is centralized in the server
/// (`server::error_response`); codes are stable protocol surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ErrorCode {
    /// Malformed frame, bad tag, failed handshake, protocol misuse.
    Protocol = 1,
    /// SQL failed to parse.
    Parse = 2,
    /// Semantic/catalog error (unknown table, type mismatch, ...).
    Semantic = 3,
    /// Storage-layer failure (I/O, checksum, page corruption).
    Storage = 4,
    /// Transaction-state misuse (commit without begin, nested begin, ...).
    Txn = 5,
    /// Deadlock victim or lock timeout — retryable.
    Deadlock = 6,
    /// Write attempted inside a read-only (snapshot) transaction.
    ReadOnly = 7,
    /// Target object is quarantined by the integrity layer.
    Quarantined = 8,
    /// Admission control rejected the request (server full) — retryable.
    Admission = 9,
    /// Query was cancelled by a `CancelQuery` from this connection.
    Cancelled = 10,
    /// Server is shutting down.
    Shutdown = 11,
    /// Anything else; indicates a server-side bug worth reporting.
    Internal = 12,
}

impl ErrorCode {
    pub fn from_u32(v: u32) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => Protocol,
            2 => Parse,
            3 => Semantic,
            4 => Storage,
            5 => Txn,
            6 => Deadlock,
            7 => ReadOnly,
            8 => Quarantined,
            9 => Admission,
            10 => Cancelled,
            11 => Shutdown,
            12 => Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Parse => "parse",
            ErrorCode::Semantic => "semantic",
            ErrorCode::Storage => "storage",
            ErrorCode::Txn => "txn",
            ErrorCode::Deadlock => "deadlock",
            ErrorCode::ReadOnly => "read-only",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Admission => "admission",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the client library and server internals.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// Frame-level failure (oversized, bad CRC, truncated stream).
    Frame(FrameError),
    /// Well-framed payload that doesn't decode to a valid message.
    Decode(String),
    /// Peer sent a message that is invalid in the current state
    /// (e.g. `Rows` before `RowHeader`, response with a request tag).
    Protocol(String),
    /// Protocol version mismatch discovered during the handshake.
    Version { ours: u32, theirs: u32 },
    /// Server-reported error, decoded from an `Error` response frame.
    Server {
        code: ErrorCode,
        retryable: bool,
        message: String,
    },
    /// Connection closed mid-conversation.
    Closed,
}

impl NetError {
    /// True when the operation may succeed if simply retried
    /// (deadlock victim, admission control).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetError::Server {
                retryable: true,
                ..
            }
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Decode(m) => write!(f, "decode error: {m}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Version { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            NetError::Server {
                code,
                retryable,
                message,
            } => {
                write!(f, "server error [{code}")?;
                if *retryable {
                    write!(f, ", retryable")?;
                }
                write!(f, "]: {message}")
            }
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}
