//! Typed errors for the network layer.
//!
//! Two families: [`NetError`] is what client/server code sees locally
//! (I/O failures, protocol violations, server-reported errors), and
//! [`ErrorCode`] is the numeric error class carried inside an `Error`
//! response frame so clients can react (retry, re-handshake, give up)
//! without parsing message text.

use std::fmt;
use std::io;

use crate::wire::FrameError;

/// Numeric error class carried on the wire in `Response::Error`.
///
/// The mapping from engine errors is centralized in the server
/// (`server::error_response`); codes are stable protocol surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ErrorCode {
    /// Malformed frame, bad tag, failed handshake, protocol misuse.
    Protocol = 1,
    /// SQL failed to parse.
    Parse = 2,
    /// Semantic/catalog error (unknown table, type mismatch, ...).
    Semantic = 3,
    /// Storage-layer failure (I/O, checksum, page corruption).
    Storage = 4,
    /// Transaction-state misuse (commit without begin, nested begin, ...).
    Txn = 5,
    /// Deadlock victim or lock timeout — retryable.
    Deadlock = 6,
    /// Write attempted inside a read-only (snapshot) transaction.
    ReadOnly = 7,
    /// Target object is quarantined by the integrity layer.
    Quarantined = 8,
    /// Admission control shed the request (server full) — retryable,
    /// usually with a `retry_after_ms` hint.
    Admission = 9,
    /// Query was cancelled by a `CancelQuery` from this connection.
    Cancelled = 10,
    /// Server is shutting down.
    Shutdown = 11,
    /// Anything else; indicates a server-side bug worth reporting.
    Internal = 12,
    /// The statement's deadline expired mid-evaluation — retryable
    /// (possibly with a longer budget).
    DeadlineExceeded = 13,
    /// The server degraded to read-only serving after a corruption-class
    /// storage fault; reads keep answering, writes are refused until an
    /// operator intervenes.
    Degraded = 14,
    /// The connection sat idle past the server's idle timeout and was
    /// reaped — reconnect and carry on.
    IdleTimeout = 15,
}

impl ErrorCode {
    /// Every defined code, in discriminant order — the taxonomy tests
    /// iterate this to prove the wire round-trip is total.
    pub const ALL: [ErrorCode; 15] = [
        ErrorCode::Protocol,
        ErrorCode::Parse,
        ErrorCode::Semantic,
        ErrorCode::Storage,
        ErrorCode::Txn,
        ErrorCode::Deadlock,
        ErrorCode::ReadOnly,
        ErrorCode::Quarantined,
        ErrorCode::Admission,
        ErrorCode::Cancelled,
        ErrorCode::Shutdown,
        ErrorCode::Internal,
        ErrorCode::DeadlineExceeded,
        ErrorCode::Degraded,
        ErrorCode::IdleTimeout,
    ];

    pub fn from_u32(v: u32) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => Protocol,
            2 => Parse,
            3 => Semantic,
            4 => Storage,
            5 => Txn,
            6 => Deadlock,
            7 => ReadOnly,
            8 => Quarantined,
            9 => Admission,
            10 => Cancelled,
            11 => Shutdown,
            12 => Internal,
            13 => DeadlineExceeded,
            14 => Degraded,
            15 => IdleTimeout,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Parse => "parse",
            ErrorCode::Semantic => "semantic",
            ErrorCode::Storage => "storage",
            ErrorCode::Txn => "txn",
            ErrorCode::Deadlock => "deadlock",
            ErrorCode::ReadOnly => "read-only",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Admission => "admission",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Degraded => "degraded",
            ErrorCode::IdleTimeout => "idle-timeout",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the client library and server internals.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// Frame-level failure (oversized, bad CRC, truncated stream).
    Frame(FrameError),
    /// Well-framed payload that doesn't decode to a valid message.
    Decode(String),
    /// Peer sent a message that is invalid in the current state
    /// (e.g. `Rows` before `RowHeader`, response with a request tag).
    Protocol(String),
    /// Protocol version mismatch discovered during the handshake.
    Version { ours: u32, theirs: u32 },
    /// Server-reported error, decoded from an `Error` response frame.
    /// `retry_after_ms` is the server's backoff hint when it shed the
    /// request (0 = no hint).
    Server {
        code: ErrorCode,
        retryable: bool,
        retry_after_ms: u32,
        message: String,
    },
    /// Connection closed mid-conversation.
    Closed,
    /// A read exceeded the client's configured read timeout. The
    /// stream may still deliver the stale response later, so the
    /// connection is desynced and must be re-established.
    Timeout,
    /// The connection died in the middle of fetching a streamed result;
    /// `rows_seen` rows had already arrived intact. The client library
    /// re-establishes the connection when a retry policy allows, but
    /// only provably safe statements are replayed.
    ConnectionLost { rows_seen: u64 },
}

impl NetError {
    /// Build the client-side view of a wire `Error` frame. Centralized
    /// so both ends agree on the `is_retryable` verdict by
    /// construction: the bit travels on the wire and is echoed here
    /// untouched.
    pub fn from_wire(code: u32, retryable: bool, retry_after_ms: u32, message: String) -> NetError {
        NetError::Server {
            code: ErrorCode::from_u32(code).unwrap_or(ErrorCode::Internal),
            retryable,
            retry_after_ms,
            message,
        }
    }

    /// True when the operation may succeed if simply retried
    /// (deadlock victim, admission shed, deadline expiry).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetError::Server {
                retryable: true,
                ..
            }
        )
    }

    /// True when the failure consumed the connection: socket errors,
    /// clean closes, timeouts, mid-stream loss — and desync-class
    /// failures (bad frames, undecodable payloads, out-of-state
    /// messages), where the stream can no longer be trusted and a
    /// reconnect + re-handshake is the only way to resynchronize.
    pub fn is_connection_loss(&self) -> bool {
        matches!(
            self,
            NetError::Io(_)
                | NetError::Frame(_)
                | NetError::Decode(_)
                | NetError::Protocol(_)
                | NetError::Closed
                | NetError::Timeout
                | NetError::ConnectionLost { .. }
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Decode(m) => write!(f, "decode error: {m}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Version { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            NetError::Server {
                code,
                retryable,
                retry_after_ms,
                message,
            } => {
                write!(f, "server error [{code}")?;
                if *retryable {
                    write!(f, ", retryable")?;
                }
                if *retry_after_ms > 0 {
                    write!(f, ", retry after {retry_after_ms}ms")?;
                }
                write!(f, "]: {message}")
            }
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "read timed out"),
            NetError::ConnectionLost { rows_seen } => {
                write!(f, "connection lost mid-stream after {rows_seen} row(s)")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}
