//! Typed request/response messages and their byte encoding.
//!
//! One message per frame payload: a tag byte followed by a
//! tag-specific body. Requests use tags `0x01..=0x12`, responses
//! `0x81..=0x88` — disjoint ranges, so a peer that confuses the two
//! directions fails decoding immediately. Row data rides the model
//! crate's self-describing tuple encoding and schemas ride
//! [`aim2_model::encode::encode_schema`], so nested NF² results cross
//! the wire without a parallel serialization scheme.
//!
//! Decoders are total: any byte string either decodes to a message
//! that consumed the entire payload, or returns [`NetError::Decode`].
//! They never panic and never allocate more than the payload could
//! possibly describe (see the proptest suite in `tests/prop_wire.rs`).
//!
//! **Trace propagation (v3).** `Query`/`Begin`/`Commit`/`FetchMore`
//! optionally carry a [`TraceContext`]. Each traced verb has a second
//! tag byte: the legacy tag encodes `trace: None`, the traced tag
//! prefixes the body with the 9-byte context. Every message therefore
//! has exactly one encoding (the proptests' canonical-form invariant
//! survives), and a v2 peer's frames decode unchanged as `trace: None`.

use aim2_model::encode::{decode_schema, decode_tuple, encode_schema, encode_tuple};
use aim2_model::{TableKind, TableSchema, Tuple};
pub use aim2_obs::TraceContext;

use crate::error::NetError;

/// Current wire protocol version; the server also accepts
/// [`PROTOCOL_VERSION_V2`] and echoes whichever the client offered.
/// Bump on every incompatible change to this module.
/// v2: `Query` gained `timeout_ms`/`attempt`, `Error` gained
/// `retry_after_ms`, and the `Ping`/`Pong`/`Checkpoint` verbs arrived.
/// v3: `Query`/`Begin`/`Commit`/`FetchMore` may carry a trace context
/// (dual-tag encoding) and the `Trace` admin verb arrived.
pub const PROTOCOL_VERSION: u32 = 3;

/// Previous protocol version, still accepted by the server: v2 clients
/// simply never send traced tags or the `Trace` verb.
pub const PROTOCOL_VERSION_V2: u32 = 2;

const REQ_HELLO: u8 = 0x01;
const REQ_QUERY: u8 = 0x02;
const REQ_FETCH_MORE: u8 = 0x03;
const REQ_CANCEL_QUERY: u8 = 0x04;
const REQ_BEGIN: u8 = 0x05;
const REQ_COMMIT: u8 = 0x06;
const REQ_ROLLBACK: u8 = 0x07;
const REQ_METRICS: u8 = 0x08;
const REQ_STATS: u8 = 0x09;
const REQ_INTEGRITY_CHECK: u8 = 0x0a;
const REQ_GOODBYE: u8 = 0x0b;
const REQ_PING: u8 = 0x0c;
const REQ_CHECKPOINT: u8 = 0x0d;
// v3: traced twins of the verbs that accept a trace context, plus the
// Trace admin verb.
const REQ_QUERY_TRACED: u8 = 0x0e;
const REQ_BEGIN_TRACED: u8 = 0x0f;
const REQ_COMMIT_TRACED: u8 = 0x10;
const REQ_FETCH_MORE_TRACED: u8 = 0x11;
const REQ_TRACE: u8 = 0x12;

const RESP_HELLO_OK: u8 = 0x81;
const RESP_OK: u8 = 0x82;
const RESP_COUNT: u8 = 0x83;
const RESP_ROW_HEADER: u8 = 0x84;
const RESP_ROWS: u8 = 0x85;
const RESP_ERROR: u8 = 0x86;
const RESP_INFO: u8 = 0x87;
const RESP_PONG: u8 = 0x88;

/// Requested exposition format for the `Metrics` admin verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    Json,
    Prometheus,
}

/// Which trace the `Trace` admin verb asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceQuery {
    /// The most recently completed trace.
    Last,
    /// Every trace retained by the always-sample-slow policy.
    Slow,
    /// A specific trace by id.
    Id(u64),
}

/// Rendering the `Trace` verb's reply uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Deterministic indented text (the shell's default).
    Text,
    /// One JSON object per trace per line.
    Jsonl,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Mandatory first message on a connection.
    Hello {
        version: u32,
        client: String,
    },
    /// Run one statement. `fetch` is the maximum number of rows per
    /// `Rows` frame; after each non-final frame the server waits for
    /// `FetchMore` or `CancelQuery` (suspended-portal backpressure).
    /// `timeout_ms` bounds the statement's total wall time (0 = the
    /// server's default); `attempt` is 0 on a first send and counts up
    /// on client retries, letting the server account retried work.
    /// `trace` (v3) is the client-minted trace context the server
    /// threads through execution.
    Query {
        fetch: u32,
        timeout_ms: u32,
        attempt: u32,
        trace: Option<TraceContext>,
        sql: String,
    },
    /// Resume a suspended result stream (`trace` continues the
    /// originating query's context).
    FetchMore {
        trace: Option<TraceContext>,
    },
    /// Abandon a suspended result stream.
    CancelQuery,
    /// Open an explicit transaction on this connection's session.
    /// Read-only transactions map onto MVCC snapshot reads and take
    /// zero locks.
    Begin {
        read_only: bool,
        trace: Option<TraceContext>,
    },
    Commit {
        trace: Option<TraceContext>,
    },
    Rollback,
    /// Admin: metrics registry snapshot in the requested exposition.
    Metrics {
        format: MetricsFormat,
    },
    /// Admin (v3): fetch retained traces from the flight recorder.
    Trace {
        query: TraceQuery,
        format: TraceFormat,
    },
    /// Admin: grouped engine counters (the shell's `.stats verbose`).
    Stats,
    /// Admin: run the integrity walker and return its report.
    IntegrityCheck,
    /// Orderly hang-up; the server rolls back any open transaction.
    Goodbye,
    /// Keepalive: resets the server's idle-reaping clock and proves the
    /// connection is alive end to end. Answered with `Pong`.
    Ping,
    /// Admin: force a checkpoint — the WAL's durability floor. What is
    /// checkpointed survives a crash; what is not rolls back to the
    /// previous checkpoint on recovery.
    Checkpoint,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    HelloOk {
        version: u32,
        server: String,
    },
    /// Statement succeeded with a status string (DDL, DML, txn verbs).
    Ok {
        message: String,
    },
    /// Statement succeeded with an affected-row count.
    Count {
        n: u64,
    },
    /// First frame of a streamed result: the result's schema and kind.
    /// `Rows` frames follow.
    RowHeader {
        kind: TableKind,
        schema: TableSchema,
    },
    /// A batch of rows. `done == false` means the portal is suspended:
    /// the server sends nothing further until `FetchMore`/`CancelQuery`.
    Rows {
        done: bool,
        rows: Vec<Tuple>,
    },
    /// Typed failure; `code` is an [`crate::ErrorCode`] discriminant.
    /// `retry_after_ms` is a backoff hint attached to load-shedding
    /// rejections (0 = no hint).
    Error {
        code: u32,
        retryable: bool,
        retry_after_ms: u32,
        message: String,
    },
    /// Freeform admin payload (metrics/stats/integrity text).
    Info {
        text: String,
    },
    /// Keepalive answer.
    Pong,
}

// --- encoding helpers -------------------------------------------------

fn put_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_u8(buf: &[u8], pos: &mut usize, what: &str) -> Result<u8, NetError> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| NetError::Decode(format!("truncated {what}")))?;
    *pos += 1;
    Ok(b)
}

fn get_u32(buf: &[u8], pos: &mut usize, what: &str) -> Result<u32, NetError> {
    let b: [u8; 4] = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| NetError::Decode(format!("truncated {what}")))?
        .try_into()
        .unwrap();
    *pos += 4;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(buf: &[u8], pos: &mut usize, what: &str) -> Result<u64, NetError> {
    let b: [u8; 8] = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| NetError::Decode(format!("truncated {what}")))?
        .try_into()
        .unwrap();
    *pos += 8;
    Ok(u64::from_le_bytes(b))
}

fn get_str(buf: &[u8], pos: &mut usize, what: &str) -> Result<String, NetError> {
    let len = get_u32(buf, pos, what)? as usize;
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| NetError::Decode(format!("truncated {what} body")))?;
    *pos += len;
    std::str::from_utf8(bytes)
        .map(|s| s.to_string())
        .map_err(|_| NetError::Decode(format!("invalid UTF-8 in {what}")))
}

fn get_bool(buf: &[u8], pos: &mut usize, what: &str) -> Result<bool, NetError> {
    match get_u8(buf, pos, what)? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(NetError::Decode(format!("bad bool {b} in {what}"))),
    }
}

fn put_trace(t: &TraceContext, out: &mut Vec<u8>) {
    out.extend_from_slice(&t.trace_id.to_le_bytes());
    out.push(u8::from(t.sampled));
}

fn get_trace(buf: &[u8], pos: &mut usize, what: &str) -> Result<TraceContext, NetError> {
    Ok(TraceContext {
        trace_id: get_u64(buf, pos, what)?,
        sampled: get_bool(buf, pos, what)?,
    })
}

/// Reject payloads with trailing garbage — a well-formed message must
/// account for every byte it arrived with.
fn finish<T>(msg: T, buf: &[u8], pos: usize) -> Result<T, NetError> {
    if pos == buf.len() {
        Ok(msg)
    } else {
        Err(NetError::Decode(format!(
            "{} trailing bytes after message",
            buf.len() - pos
        )))
    }
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::Hello { version, client } => {
                out.push(REQ_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
                put_str(client, &mut out);
            }
            Request::Query {
                fetch,
                timeout_ms,
                attempt,
                trace,
                sql,
            } => {
                match trace {
                    None => out.push(REQ_QUERY),
                    Some(t) => {
                        out.push(REQ_QUERY_TRACED);
                        put_trace(t, &mut out);
                    }
                }
                out.extend_from_slice(&fetch.to_le_bytes());
                out.extend_from_slice(&timeout_ms.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                put_str(sql, &mut out);
            }
            Request::FetchMore { trace } => match trace {
                None => out.push(REQ_FETCH_MORE),
                Some(t) => {
                    out.push(REQ_FETCH_MORE_TRACED);
                    put_trace(t, &mut out);
                }
            },
            Request::CancelQuery => out.push(REQ_CANCEL_QUERY),
            Request::Begin { read_only, trace } => {
                match trace {
                    None => out.push(REQ_BEGIN),
                    Some(t) => {
                        out.push(REQ_BEGIN_TRACED);
                        put_trace(t, &mut out);
                    }
                }
                out.push(u8::from(*read_only));
            }
            Request::Commit { trace } => match trace {
                None => out.push(REQ_COMMIT),
                Some(t) => {
                    out.push(REQ_COMMIT_TRACED);
                    put_trace(t, &mut out);
                }
            },
            Request::Rollback => out.push(REQ_ROLLBACK),
            Request::Metrics { format } => {
                out.push(REQ_METRICS);
                out.push(match format {
                    MetricsFormat::Json => 0,
                    MetricsFormat::Prometheus => 1,
                });
            }
            Request::Trace { query, format } => {
                out.push(REQ_TRACE);
                match query {
                    TraceQuery::Last => out.push(0),
                    TraceQuery::Slow => out.push(1),
                    TraceQuery::Id(id) => {
                        out.push(2);
                        out.extend_from_slice(&id.to_le_bytes());
                    }
                }
                out.push(match format {
                    TraceFormat::Text => 0,
                    TraceFormat::Jsonl => 1,
                });
            }
            Request::Stats => out.push(REQ_STATS),
            Request::IntegrityCheck => out.push(REQ_INTEGRITY_CHECK),
            Request::Goodbye => out.push(REQ_GOODBYE),
            Request::Ping => out.push(REQ_PING),
            Request::Checkpoint => out.push(REQ_CHECKPOINT),
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Request, NetError> {
        let mut pos = 0;
        let tag = get_u8(buf, &mut pos, "request tag")?;
        let msg = match tag {
            REQ_HELLO => Request::Hello {
                version: get_u32(buf, &mut pos, "hello version")?,
                client: get_str(buf, &mut pos, "hello client")?,
            },
            REQ_QUERY | REQ_QUERY_TRACED => {
                let trace = if tag == REQ_QUERY_TRACED {
                    Some(get_trace(buf, &mut pos, "query trace")?)
                } else {
                    None
                };
                Request::Query {
                    trace,
                    fetch: get_u32(buf, &mut pos, "query fetch")?,
                    timeout_ms: get_u32(buf, &mut pos, "query timeout")?,
                    attempt: get_u32(buf, &mut pos, "query attempt")?,
                    sql: get_str(buf, &mut pos, "query sql")?,
                }
            }
            REQ_FETCH_MORE => Request::FetchMore { trace: None },
            REQ_FETCH_MORE_TRACED => Request::FetchMore {
                trace: Some(get_trace(buf, &mut pos, "fetch-more trace")?),
            },
            REQ_CANCEL_QUERY => Request::CancelQuery,
            REQ_BEGIN | REQ_BEGIN_TRACED => {
                let trace = if tag == REQ_BEGIN_TRACED {
                    Some(get_trace(buf, &mut pos, "begin trace")?)
                } else {
                    None
                };
                Request::Begin {
                    trace,
                    read_only: get_bool(buf, &mut pos, "begin read_only")?,
                }
            }
            REQ_COMMIT => Request::Commit { trace: None },
            REQ_COMMIT_TRACED => Request::Commit {
                trace: Some(get_trace(buf, &mut pos, "commit trace")?),
            },
            REQ_ROLLBACK => Request::Rollback,
            REQ_METRICS => Request::Metrics {
                format: match get_u8(buf, &mut pos, "metrics format")? {
                    0 => MetricsFormat::Json,
                    1 => MetricsFormat::Prometheus,
                    b => return Err(NetError::Decode(format!("bad metrics format {b}"))),
                },
            },
            REQ_STATS => Request::Stats,
            REQ_INTEGRITY_CHECK => Request::IntegrityCheck,
            REQ_GOODBYE => Request::Goodbye,
            REQ_PING => Request::Ping,
            REQ_CHECKPOINT => Request::Checkpoint,
            REQ_TRACE => {
                let query = match get_u8(buf, &mut pos, "trace selector")? {
                    0 => TraceQuery::Last,
                    1 => TraceQuery::Slow,
                    2 => TraceQuery::Id(get_u64(buf, &mut pos, "trace id")?),
                    b => return Err(NetError::Decode(format!("bad trace selector {b}"))),
                };
                let format = match get_u8(buf, &mut pos, "trace format")? {
                    0 => TraceFormat::Text,
                    1 => TraceFormat::Jsonl,
                    b => return Err(NetError::Decode(format!("bad trace format {b}"))),
                };
                Request::Trace { query, format }
            }
            t => return Err(NetError::Decode(format!("unknown request tag {t:#04x}"))),
        };
        finish(msg, buf, pos)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Response::HelloOk { version, server } => {
                out.push(RESP_HELLO_OK);
                out.extend_from_slice(&version.to_le_bytes());
                put_str(server, &mut out);
            }
            Response::Ok { message } => {
                out.push(RESP_OK);
                put_str(message, &mut out);
            }
            Response::Count { n } => {
                out.push(RESP_COUNT);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Response::RowHeader { kind, schema } => {
                out.push(RESP_ROW_HEADER);
                out.push(match kind {
                    TableKind::Relation => 0,
                    TableKind::List => 1,
                });
                encode_schema(schema, &mut out);
            }
            Response::Rows { done, rows } => {
                out.push(RESP_ROWS);
                out.push(u8::from(*done));
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    encode_tuple(row, &mut out);
                }
            }
            Response::Error {
                code,
                retryable,
                retry_after_ms,
                message,
            } => {
                out.push(RESP_ERROR);
                out.extend_from_slice(&code.to_le_bytes());
                out.push(u8::from(*retryable));
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
                put_str(message, &mut out);
            }
            Response::Info { text } => {
                out.push(RESP_INFO);
                put_str(text, &mut out);
            }
            Response::Pong => out.push(RESP_PONG),
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Response, NetError> {
        let mut pos = 0;
        let tag = get_u8(buf, &mut pos, "response tag")?;
        let msg = match tag {
            RESP_HELLO_OK => Response::HelloOk {
                version: get_u32(buf, &mut pos, "hello version")?,
                server: get_str(buf, &mut pos, "hello server")?,
            },
            RESP_OK => Response::Ok {
                message: get_str(buf, &mut pos, "ok message")?,
            },
            RESP_COUNT => Response::Count {
                n: get_u64(buf, &mut pos, "count")?,
            },
            RESP_ROW_HEADER => {
                let kind = match get_u8(buf, &mut pos, "row-header kind")? {
                    0 => TableKind::Relation,
                    1 => TableKind::List,
                    b => return Err(NetError::Decode(format!("bad table kind {b}"))),
                };
                let schema = decode_schema(buf, &mut pos)
                    .map_err(|e| NetError::Decode(format!("row-header schema: {e}")))?;
                Response::RowHeader { kind, schema }
            }
            RESP_ROWS => {
                let done = get_bool(buf, &mut pos, "rows done")?;
                let n = get_u32(buf, &mut pos, "row count")? as usize;
                // Each tuple costs at least its 2-byte arity header, so
                // clamp the pre-allocation by the remaining payload.
                let mut rows = Vec::with_capacity(n.min(buf.len().saturating_sub(pos) / 2));
                for _ in 0..n {
                    rows.push(
                        decode_tuple(buf, &mut pos)
                            .map_err(|e| NetError::Decode(format!("row: {e}")))?,
                    );
                }
                Response::Rows { done, rows }
            }
            RESP_ERROR => Response::Error {
                code: get_u32(buf, &mut pos, "error code")?,
                retryable: get_bool(buf, &mut pos, "error retryable")?,
                retry_after_ms: get_u32(buf, &mut pos, "error retry-after")?,
                message: get_str(buf, &mut pos, "error message")?,
            },
            RESP_INFO => Response::Info {
                text: get_str(buf, &mut pos, "info text")?,
            },
            RESP_PONG => Response::Pong,
            t => return Err(NetError::Decode(format!("unknown response tag {t:#04x}"))),
        };
        finish(msg, buf, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::{Atom, AtomType, AttrDef, Value};

    fn roundtrip_req(r: Request) {
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
            client: "aim2-client/0.1".into(),
        });
        roundtrip_req(Request::Query {
            fetch: 128,
            timeout_ms: 0,
            attempt: 0,
            trace: None,
            sql: "SELECT [DNO, BUDGET] FROM d IN DEPARTMENTS".into(),
        });
        roundtrip_req(Request::Query {
            fetch: 0,
            timeout_ms: 2_500,
            attempt: 3,
            trace: None,
            sql: "SELECT [DNO] FROM d IN DEPARTMENTS".into(),
        });
        roundtrip_req(Request::Query {
            fetch: 64,
            timeout_ms: 100,
            attempt: 1,
            trace: Some(TraceContext {
                trace_id: 0xdead_beef_cafe_f00d,
                sampled: true,
            }),
            sql: "SELECT [DNO] FROM d IN DEPARTMENTS".into(),
        });
        roundtrip_req(Request::FetchMore { trace: None });
        roundtrip_req(Request::FetchMore {
            trace: Some(TraceContext {
                trace_id: 1,
                sampled: false,
            }),
        });
        roundtrip_req(Request::CancelQuery);
        roundtrip_req(Request::Begin {
            read_only: true,
            trace: None,
        });
        roundtrip_req(Request::Begin {
            read_only: false,
            trace: Some(TraceContext {
                trace_id: u64::MAX,
                sampled: true,
            }),
        });
        roundtrip_req(Request::Commit { trace: None });
        roundtrip_req(Request::Commit {
            trace: Some(TraceContext {
                trace_id: 7,
                sampled: true,
            }),
        });
        roundtrip_req(Request::Rollback);
        roundtrip_req(Request::Metrics {
            format: MetricsFormat::Json,
        });
        roundtrip_req(Request::Metrics {
            format: MetricsFormat::Prometheus,
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::IntegrityCheck);
        roundtrip_req(Request::Goodbye);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Checkpoint);
        for query in [TraceQuery::Last, TraceQuery::Slow, TraceQuery::Id(0x5eed)] {
            for format in [TraceFormat::Text, TraceFormat::Jsonl] {
                roundtrip_req(Request::Trace { query, format });
            }
        }
    }

    #[test]
    fn v2_frames_decode_as_untraced() {
        // A v2 peer only ever sends legacy tags; those bytes must keep
        // decoding to the same logical requests (trace: None) and the
        // legacy tags must stay byte-identical on the wire.
        let q = Request::Query {
            fetch: 8,
            timeout_ms: 0,
            attempt: 0,
            trace: None,
            sql: "SELECT [DNO] FROM d IN DEPARTMENTS".into(),
        };
        assert_eq!(q.encode()[0], 0x02, "untraced Query keeps the v2 tag");
        assert_eq!(Request::FetchMore { trace: None }.encode(), vec![0x03]);
        assert_eq!(Request::Commit { trace: None }.encode(), vec![0x06]);
        assert_eq!(
            Request::Begin {
                read_only: true,
                trace: None
            }
            .encode(),
            vec![0x05, 0x01]
        );
        // Traced twins use the new tags, so each value has exactly one
        // encoding.
        let traced = Request::Commit {
            trace: Some(TraceContext {
                trace_id: 2,
                sampled: true,
            }),
        };
        assert_eq!(traced.encode()[0], 0x10);
    }

    #[test]
    fn response_roundtrips() {
        let schema = TableSchema::new(
            "RESULT",
            TableKind::Relation,
            vec![
                AttrDef::atomic("DNO", AtomType::Int),
                AttrDef::atomic("DNAME", AtomType::Str),
            ],
        )
        .unwrap();
        roundtrip_resp(Response::HelloOk {
            version: PROTOCOL_VERSION,
            server: "aim2-server/0.1".into(),
        });
        roundtrip_resp(Response::Ok {
            message: "CREATE TABLE".into(),
        });
        roundtrip_resp(Response::Count { n: u64::MAX });
        roundtrip_resp(Response::RowHeader {
            kind: TableKind::List,
            schema,
        });
        roundtrip_resp(Response::Rows {
            done: false,
            rows: vec![
                Tuple::new(vec![
                    Value::Atom(Atom::Int(314)),
                    Value::Atom(Atom::Str("CGA".into())),
                ]),
                Tuple::new(vec![
                    Value::Atom(Atom::Int(315)),
                    Value::Atom(Atom::Str("DBS".into())),
                ]),
            ],
        });
        roundtrip_resp(Response::Rows {
            done: true,
            rows: vec![],
        });
        roundtrip_resp(Response::Error {
            code: 6,
            retryable: true,
            retry_after_ms: 0,
            message: "deadlock victim".into(),
        });
        roundtrip_resp(Response::Error {
            code: 9,
            retryable: true,
            retry_after_ms: 250,
            message: "server full".into(),
        });
        roundtrip_resp(Response::Info { text: "{}".into() });
        roundtrip_resp(Response::Pong);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::Commit { trace: None }.encode();
        bytes.push(0x00);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Response::Count { n: 4 }.encode();
        bytes.push(0x00);
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn empty_and_unknown_tags_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x01]).is_err()); // request tag to response decoder
        assert!(Request::decode(&[0x81]).is_err()); // response tag to request decoder
    }
}
