//! Frame layer: length-prefixed, CRC-guarded byte frames over any
//! `Read`/`Write` pair.
//!
//! ```text
//! +----------------+----------------+=================+
//! | payload_len u32 | crc32 u32      | payload bytes   |
//! | little-endian   | of the payload | payload_len long|
//! +----------------+----------------+=================+
//! ```
//!
//! The reader enforces a hard frame-size limit *before* allocating: an
//! oversized length prefix yields [`FrameError::TooLarge`] without
//! reading (or reserving) the payload, so a hostile peer can never
//! drive an unbounded allocation. A CRC mismatch yields
//! [`FrameError::Checksum`]. Both are grounds for the server to send a
//! typed error response and close the connection — once framing is in
//! doubt, resynchronization is not attempted.

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};

use aim2_storage::wal::crc32;

/// Default hard cap on payload size (16 MiB) — generous for any real
/// request (SQL text, one row batch), small enough that a garbage
/// length prefix cannot hurt.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Size of the fixed frame header (length + CRC).
pub const HEADER_LEN: usize = 8;

/// Frame-level failures. `Io` covers socket errors and EOF.
#[derive(Debug)]
pub enum FrameError {
    Io(io::Error),
    /// Length prefix exceeds the negotiated maximum. Carries the
    /// claimed length and the limit; the payload was never read.
    TooLarge {
        len: usize,
        max: usize,
    },
    /// Payload arrived but its CRC-32 does not match the header.
    Checksum {
        expect: u32,
        got: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds limit {max}")
            }
            FrameError::Checksum { expect, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expect:#010x}, payload {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame. The payload is caller-encoded message bytes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame, enforcing `max_frame`. Returns `Ok(None)` on a clean
/// EOF at a frame boundary (peer hung up between messages); any EOF
/// mid-frame is an error.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let expect = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > max_frame {
        return Err(FrameError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got = crc32(&payload);
    if got != expect {
        return Err(FrameError::Checksum { expect, got });
    }
    Ok(Some(payload))
}

enum ReadOutcome {
    Full,
    Eof,
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean EOF)
/// from "some bytes then EOF" (truncated frame, an error).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello frames"
        );
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn oversized_rejected_without_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        // Note: no payload bytes present at all — the reader must fail
        // on the length check, not on missing bytes.
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"precious payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Checksum { .. })
        ));
    }

    #[test]
    fn truncated_header_and_payload_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        for cut in 1..buf.len() {
            let mut r = Cursor::new(&buf[..cut]);
            assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).is_err(), "cut {cut}");
        }
    }
}
