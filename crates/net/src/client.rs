//! Client library: a blocking connection to an `aim2-server` that
//! stays useful when the network misbehaves.
//!
//! [`Client::connect`] performs the `Hello` handshake (surfacing a
//! version mismatch or an admission rejection as a typed error), then
//! [`Client::query`] drives the request/response protocol, transparently
//! issuing `FetchMore` until a streamed result completes. The low-level
//! [`Client::send`]/[`Client::recv`] pair stays public for callers that
//! want to drive suspended portals themselves (e.g. to `CancelQuery`
//! mid-stream).
//!
//! ## Failure behavior
//!
//! Every read is bounded by [`ClientConfig::read_timeout`] and every
//! dial by [`ClientConfig::connect_timeout`], so a black-holed server
//! can never hang the caller. A [`RetryPolicy`] governs automatic
//! recovery: retryable server errors (deadlock victim, admission shed,
//! deadline expiry) and connection losses are retried with exponential
//! backoff and deterministic jitter, honoring the server's
//! `retry_after_ms` hint — but **only for provably safe work**:
//! handshakes and implicit read-only statements (a bare `SELECT` /
//! `EXPLAIN` outside any explicit transaction). DML and statements
//! inside an explicit transaction are never silently replayed; a
//! connection loss there still triggers a reconnect + re-handshake so
//! the session stays usable, but the error is surfaced to the caller,
//! who alone can decide whether the in-doubt work committed.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use aim2_model::{TableSchema, TableValue};

use crate::error::{ErrorCode, NetError};
use crate::proto::{
    MetricsFormat, Request, Response, TraceContext, TraceFormat, TraceQuery, PROTOCOL_VERSION,
    PROTOCOL_VERSION_V2,
};
use crate::wire::{read_frame, write_frame, DEFAULT_MAX_FRAME};

/// One try of a statement as seen by the client's retry loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// 0-based try number, matching the `attempt` field sent on the wire.
    pub attempt: u32,
    /// Server error code when the failure was a wire `Error` frame;
    /// `None` on success or on transport-level failures.
    pub code: Option<ErrorCode>,
    /// Whether the failure was judged retryable (server verdict, or a
    /// connection loss the client recovered from).
    pub retryable: bool,
    /// Backoff slept *after* this attempt before the next one; 0 on the
    /// final (successful or terminal) attempt.
    pub backoff_ms: u64,
    /// Short description of the failure; empty on success.
    pub error: String,
}

/// Client-side record of one statement: the trace id sent to the server
/// (0 when tracing was off) plus the outcome of every attempt the retry
/// loop made. Pairs with the server-side span tree fetched via
/// [`Client::trace_by_id`] to give both halves of a slow or flaky query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientTrace {
    /// Trace id carried on every attempt's `Query` frame (same id on
    /// retries: the attempts are one logical request).
    pub trace_id: u64,
    pub statement: String,
    /// Every try, in order; the last entry is the one that settled it.
    pub attempts: Vec<AttemptRecord>,
    /// Wall time across all attempts and backoff sleeps.
    pub total_ms: u64,
    pub ok: bool,
}

impl ClientTrace {
    /// Deterministic one-trace rendering for the shell's `.trace` verb.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "client trace {:#018x} {} {}ms  {}\n",
            self.trace_id,
            if self.ok { "ok" } else { "failed" },
            self.total_ms,
            self.statement
        );
        for a in &self.attempts {
            if a.error.is_empty() {
                out.push_str(&format!("  attempt {}: ok\n", a.attempt));
            } else {
                out.push_str(&format!(
                    "  attempt {}: {}{} (retryable={}, backoff={}ms)\n",
                    a.attempt,
                    a.code.map(|c| format!("[{c:?}] ")).unwrap_or_default(),
                    a.error,
                    a.retryable,
                    a.backoff_ms
                ));
            }
        }
        out
    }
}

/// What a statement produced, mirroring the engine's `ExecResult` with
/// the streamed frames reassembled into a whole table.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// A query result: schema plus every row, in stream order.
    Table(TableSchema, TableValue),
    /// DML affected-row count.
    Count(u64),
    /// DDL / transaction-verb status line.
    Ok(String),
}

/// Exponential backoff with deterministic jitter, budget-capped.
///
/// `max_attempts` bounds how many times one operation is tried in
/// total; `budget` bounds the wall time an operation may spend across
/// its attempts and backoff sleeps. Jitter derives from `seed` through
/// a fixed LCG, so a chaos test that pins the seed replays the exact
/// same backoff schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per operation, the first attempt included.
    pub max_attempts: u32,
    /// First backoff; doubles per attempt up to `max_backoff`.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Wall-clock cap for one operation across all attempts.
    pub budget: Duration,
    /// Jitter seed; same seed, same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            budget: Duration::from_secs(10),
            seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// Never retry anything — every failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `attempt` (1-based): exponential,
    /// clamped to `max_backoff`, jittered into `[half, full]` so a
    /// thundering herd decorrelates without a shared clock.
    fn backoff(&self, attempt: u32, jitter: &mut u64) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff);
        *jitter = jitter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let full = exp.as_millis() as u64;
        let half = full / 2;
        let j = if full > half {
            (*jitter >> 33) % (full - half + 1)
        } else {
            0
        };
        Duration::from_millis(half + j)
    }
}

/// Connection tuning; `Default` suits tests and interactive use.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Identifies this client in the `Hello` (useful in server logs).
    pub client_name: String,
    /// Bound on each dial; `None` blocks on the OS default.
    pub connect_timeout: Option<Duration>,
    /// Bound on each frame read. Bounded by default so a black-holed
    /// server surfaces as a typed [`NetError::Timeout`] instead of a
    /// hung client; `None` restores unbounded reads.
    pub read_timeout: Option<Duration>,
    /// Automatic retry/reconnect behavior.
    pub retry: RetryPolicy,
    /// Hard per-frame size limit.
    pub max_frame: usize,
    /// Per-statement deadline sent with every `Query` (milliseconds;
    /// 0 = the server's default).
    pub statement_timeout_ms: u32,
    /// When true, every statement mints a sampled [`TraceContext`] that
    /// the server threads through execution and records in its flight
    /// recorder; the client keeps a matching [`ClientTrace`] of its
    /// retry attempts. Off by default: untraced statements are
    /// byte-identical to protocol v2 frames.
    pub trace: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            client_name: format!("aim2-net/{}", env!("CARGO_PKG_VERSION")),
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
            max_frame: DEFAULT_MAX_FRAME,
            statement_timeout_ms: 0,
            trace: false,
        }
    }
}

/// A connected, handshaken session with the server.
pub struct Client {
    stream: TcpStream,
    cfg: ClientConfig,
    /// Resolved dial targets, kept for automatic reconnects.
    addrs: Vec<SocketAddr>,
    server: String,
    /// Protocol version the server echoed in `HelloOk`; trace-carrying
    /// frames are only sent to a v3 peer.
    peer_version: u32,
    /// Whether an explicit transaction is open on this session — the
    /// gate that disables statement auto-retry.
    in_txn: bool,
    /// Wire retries performed (statement re-sends after a failure).
    retries: u64,
    /// Successful automatic reconnect + re-handshake cycles.
    reconnects: u64,
    jitter: u64,
    /// Retry-loop record of the most recent statement (always kept;
    /// `trace_id` is 0 when tracing was off).
    last_trace: Option<ClientTrace>,
}

impl Client {
    /// Connect with default tuning (bounded dial and read timeouts,
    /// default retry policy). `client_name` identifies this client in
    /// the `Hello`; version mismatch, admission rejection, or garbage
    /// all decode into typed [`NetError`]s.
    pub fn connect(addr: impl ToSocketAddrs, client_name: &str) -> Result<Client, NetError> {
        Client::connect_with(
            addr,
            ClientConfig {
                client_name: client_name.to_string(),
                ..ClientConfig::default()
            },
        )
    }

    /// Connect with explicit tuning. The handshake is always safe to
    /// retry, so dial failures and retryable rejections (admission
    /// shed) back off and retry within the policy's budget.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Client, NetError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        let mut jitter = cfg.retry.seed;
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match dial_and_handshake(&addrs, &cfg) {
                Ok((stream, server, peer_version)) => {
                    return Ok(Client {
                        stream,
                        cfg,
                        addrs,
                        server,
                        peer_version,
                        in_txn: false,
                        retries: 0,
                        reconnects: 0,
                        jitter,
                        last_trace: None,
                    })
                }
                Err(e) => {
                    attempt += 1;
                    if attempt >= cfg.retry.max_attempts
                        || !(e.is_retryable() || e.is_connection_loss())
                    {
                        return Err(e);
                    }
                    let sleep = retry_sleep(&cfg.retry, &e, attempt, &mut jitter);
                    if started.elapsed() + sleep > cfg.retry.budget {
                        return Err(e);
                    }
                    std::thread::sleep(sleep);
                }
            }
        }
    }

    /// The server's identification banner from the handshake.
    pub fn server_banner(&self) -> &str {
        &self.server
    }

    /// Wire retries this client has performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Automatic reconnect + re-handshake cycles performed.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether an explicit transaction is open (as far as this client
    /// knows — a reconnect resets it, since the server rolled back).
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Set the per-statement deadline sent with every subsequent query
    /// (0 = no client-imposed deadline; the server may still cap it).
    pub fn set_statement_timeout_ms(&mut self, ms: u32) {
        self.cfg.statement_timeout_ms = ms;
    }

    /// Toggle per-statement tracing (see [`ClientConfig::trace`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.cfg.trace = on;
    }

    /// Whether statements currently mint trace contexts.
    pub fn tracing(&self) -> bool {
        self.cfg.trace
    }

    /// The client-side retry record of the most recent statement.
    pub fn last_client_trace(&self) -> Option<&ClientTrace> {
        self.last_trace.as_ref()
    }

    /// Fetch the server's most recently completed trace.
    pub fn trace_last(&mut self, format: TraceFormat) -> Result<String, NetError> {
        self.info(&Request::Trace {
            query: TraceQuery::Last,
            format,
        })
    }

    /// Fetch the server's retained slow traces (slowest-ring order).
    pub fn trace_slow(&mut self, format: TraceFormat) -> Result<String, NetError> {
        self.info(&Request::Trace {
            query: TraceQuery::Slow,
            format,
        })
    }

    /// Fetch one server-side trace by id — typically the id this client
    /// minted, read back from [`Client::last_client_trace`].
    pub fn trace_by_id(&mut self, id: u64, format: TraceFormat) -> Result<String, NetError> {
        self.info(&Request::Trace {
            query: TraceQuery::Id(id),
            format,
        })
    }

    /// Protocol version negotiated with the server.
    pub fn peer_version(&self) -> u32 {
        self.peer_version
    }

    /// A fresh sampled context when tracing is on and the peer speaks
    /// v3, `None` otherwise (a v2 server can't decode traced frames).
    fn mint_trace(&self) -> Option<TraceContext> {
        (self.cfg.trace && self.peer_version >= PROTOCOL_VERSION).then(TraceContext::sampled)
    }

    /// Send one request frame.
    pub fn send(&mut self, req: &Request) -> Result<(), NetError> {
        write_frame(&mut self.stream, &req.encode())?;
        Ok(())
    }

    /// Receive one response frame. A clean hangup is [`NetError::Closed`];
    /// an expired read timeout is [`NetError::Timeout`] (the stream is
    /// desynced afterwards and needs a reconnect).
    pub fn recv(&mut self) -> Result<Response, NetError> {
        match read_frame(&mut self.stream, self.cfg.max_frame) {
            Ok(Some(payload)) => Response::decode(&payload),
            Ok(None) => Err(NetError::Closed),
            Err(crate::wire::FrameError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(NetError::Timeout)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Tear down and re-establish the connection, re-running the
    /// handshake. The handshake carries no user work, so it retries
    /// under the client's [`RetryPolicy`] — on a network hostile
    /// enough to break the old connection, the first redial often
    /// fails too. Any open transaction was rolled back by the server
    /// when the old connection died, so `in_txn` resets.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match dial_and_handshake(&self.addrs, &self.cfg) {
                Ok((stream, server, peer_version)) => {
                    self.stream = stream;
                    self.server = server;
                    self.peer_version = peer_version;
                    self.in_txn = false;
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.cfg.retry.max_attempts
                        || !(e.is_retryable() || e.is_connection_loss())
                    {
                        return Err(e);
                    }
                    let sleep = retry_sleep(&self.cfg.retry, &e, attempt, &mut self.jitter);
                    if started.elapsed() + sleep > self.cfg.retry.budget {
                        return Err(e);
                    }
                    std::thread::sleep(sleep);
                }
            }
        }
    }

    /// Run one statement, assembling a streamed result transparently
    /// (server default batch size).
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, NetError> {
        self.query_fetch(sql, 0)
    }

    /// Run one statement with an explicit per-frame row budget
    /// (`fetch = 0` lets the server choose). Issues `FetchMore` after
    /// every suspended frame until the stream completes.
    ///
    /// Failures retry under the client's [`RetryPolicy`] when — and
    /// only when — the statement is provably safe to replay: an
    /// implicit read-only statement outside any explicit transaction.
    /// Connection losses always attempt a reconnect (so the session
    /// stays usable) but unsafe statements surface the loss instead of
    /// replaying.
    pub fn query_fetch(&mut self, sql: &str, fetch: u32) -> Result<QueryOutcome, NetError> {
        let trace = self.mint_trace();
        let safe = self.statement_is_safe(sql);
        let started = Instant::now();
        let mut attempt = 0u32;
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let result = loop {
            let r = self.query_once(sql, fetch, attempt, trace);
            let e = match r {
                Ok(v) => {
                    attempts.push(AttemptRecord {
                        attempt,
                        code: None,
                        retryable: false,
                        backoff_ms: 0,
                        error: String::new(),
                    });
                    break Ok(v);
                }
                Err(e) => e,
            };
            let lost = e.is_connection_loss();
            if lost {
                // Reconnect even when we won't replay: the next
                // statement deserves a working session either way.
                self.in_txn = false;
                if self.reconnect().is_err() {
                    attempts.push(attempt_record(attempt, &e, Duration::ZERO));
                    break Err(e);
                }
            }
            let this_attempt = attempt;
            attempt += 1;
            if !safe || !(lost || e.is_retryable()) || attempt >= self.cfg.retry.max_attempts {
                attempts.push(attempt_record(this_attempt, &e, Duration::ZERO));
                break Err(e);
            }
            let sleep = retry_sleep(&self.cfg.retry, &e, attempt, &mut self.jitter);
            if started.elapsed() + sleep > self.cfg.retry.budget {
                attempts.push(attempt_record(this_attempt, &e, Duration::ZERO));
                break Err(e);
            }
            attempts.push(attempt_record(this_attempt, &e, sleep));
            std::thread::sleep(sleep);
            self.retries += 1;
        };
        self.last_trace = Some(ClientTrace {
            trace_id: trace.map_or(0, |t| t.trace_id),
            statement: sql.to_string(),
            attempts,
            total_ms: started.elapsed().as_millis() as u64,
            ok: result.is_ok(),
        });
        result
    }

    /// One send/stream/reassemble pass, no retries. Mid-stream
    /// connection loss maps to [`NetError::ConnectionLost`] carrying
    /// how many rows had already arrived intact.
    fn query_once(
        &mut self,
        sql: &str,
        fetch: u32,
        attempt: u32,
        trace: Option<TraceContext>,
    ) -> Result<QueryOutcome, NetError> {
        self.send(&Request::Query {
            fetch,
            timeout_ms: self.cfg.statement_timeout_ms,
            attempt,
            trace,
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Response::Ok { message } => Ok(QueryOutcome::Ok(message)),
            Response::Count { n } => Ok(QueryOutcome::Count(n)),
            Response::Error {
                code,
                retryable,
                retry_after_ms,
                message,
            } => Err(NetError::from_wire(
                code,
                retryable,
                retry_after_ms,
                message,
            )),
            Response::RowHeader { kind, schema } => {
                let mut tuples = Vec::new();
                loop {
                    let resp = match self.recv() {
                        Ok(resp) => resp,
                        Err(e) if e.is_connection_loss() => {
                            return Err(NetError::ConnectionLost {
                                rows_seen: tuples.len() as u64,
                            })
                        }
                        Err(e) => return Err(e),
                    };
                    match resp {
                        Response::Rows { done, rows } => {
                            tuples.extend(rows);
                            if done {
                                return Ok(QueryOutcome::Table(
                                    schema,
                                    TableValue { kind, tuples },
                                ));
                            }
                            if let Err(e) = self.send(&Request::FetchMore { trace }) {
                                if e.is_connection_loss() {
                                    return Err(NetError::ConnectionLost {
                                        rows_seen: tuples.len() as u64,
                                    });
                                }
                                return Err(e);
                            }
                        }
                        Response::Error {
                            code,
                            retryable,
                            retry_after_ms,
                            message,
                        } => {
                            return Err(NetError::from_wire(
                                code,
                                retryable,
                                retry_after_ms,
                                message,
                            ))
                        }
                        other => {
                            return Err(NetError::Protocol(format!(
                                "expected Rows mid-stream, got {other:?}"
                            )))
                        }
                    }
                }
            }
            other => Err(NetError::Protocol(format!(
                "unexpected response to Query: {other:?}"
            ))),
        }
    }

    /// Replay safety: only an implicit read-only statement may be
    /// auto-retried. Anything inside an explicit transaction, anything
    /// that writes, and anything we cannot parse is unsafe — in-doubt
    /// DML must never silently double-apply.
    fn statement_is_safe(&self, sql: &str) -> bool {
        if self.in_txn {
            return false;
        }
        matches!(
            aim2_lang::parse_stmt(sql),
            Ok(aim2_lang::ast::Stmt::Query(_)) | Ok(aim2_lang::ast::Stmt::Explain(_))
        )
    }

    /// Open an explicit transaction. `read_only = true` pins an MVCC
    /// snapshot: every query in it runs lock-free.
    pub fn begin(&mut self, read_only: bool) -> Result<String, NetError> {
        let trace = self.mint_trace();
        let r = self.simple(&Request::Begin { read_only, trace });
        if r.is_ok() {
            self.in_txn = true;
        }
        r
    }

    pub fn commit(&mut self) -> Result<String, NetError> {
        let trace = self.mint_trace();
        let r = self.simple(&Request::Commit { trace });
        // Either outcome settles the transaction client-side: on a
        // server-reported error the transaction state is unknown at
        // best (deadlock victims are already rolled back), and on a
        // connection loss the server rolls back on session drop.
        self.in_txn = false;
        r
    }

    pub fn rollback(&mut self) -> Result<String, NetError> {
        let r = self.simple(&Request::Rollback);
        self.in_txn = false;
        r
    }

    /// Keepalive: proves the connection end to end and resets the
    /// server's idle-reaping clock.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            Response::Error {
                code,
                retryable,
                retry_after_ms,
                message,
            } => Err(NetError::from_wire(
                code,
                retryable,
                retry_after_ms,
                message,
            )),
            other => Err(NetError::Protocol(format!(
                "unexpected response to Ping: {other:?}"
            ))),
        }
    }

    /// Force a server-side checkpoint — the WAL's durability floor.
    pub fn checkpoint(&mut self) -> Result<String, NetError> {
        self.simple(&Request::Checkpoint)
    }

    /// Fetch the server's metrics registry in the requested exposition.
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String, NetError> {
        self.info(&Request::Metrics { format })
    }

    /// Fetch the grouped engine counters (the shell's `.stats verbose`).
    pub fn stats(&mut self) -> Result<String, NetError> {
        self.info(&Request::Stats)
    }

    /// Run the server-side integrity walker and return its report.
    pub fn integrity_check(&mut self) -> Result<String, NetError> {
        self.info(&Request::IntegrityCheck)
    }

    /// Orderly hang-up; consumes the client.
    pub fn goodbye(mut self) -> Result<(), NetError> {
        self.send(&Request::Goodbye)?;
        match self.recv() {
            Ok(Response::Ok { .. }) | Err(NetError::Closed) => Ok(()),
            Ok(other) => Err(NetError::Protocol(format!(
                "unexpected response to Goodbye: {other:?}"
            ))),
            Err(e) => Err(e),
        }
    }

    fn simple(&mut self, req: &Request) -> Result<String, NetError> {
        let r = self.simple_once(req);
        if let Err(e) = &r {
            if e.is_connection_loss() {
                // Keep the session usable for the *next* statement;
                // the failed verb itself is never replayed (a commit
                // in flight when the wire died is in-doubt, and only
                // the caller can resolve it).
                self.in_txn = false;
                let _ = self.reconnect();
            }
        }
        r
    }

    fn simple_once(&mut self, req: &Request) -> Result<String, NetError> {
        self.send(req)?;
        match self.recv()? {
            Response::Ok { message } => Ok(message),
            Response::Error {
                code,
                retryable,
                retry_after_ms,
                message,
            } => Err(NetError::from_wire(
                code,
                retryable,
                retry_after_ms,
                message,
            )),
            other => Err(NetError::Protocol(format!(
                "unexpected response to {req:?}: {other:?}"
            ))),
        }
    }

    fn info(&mut self, req: &Request) -> Result<String, NetError> {
        self.send(req)?;
        match self.recv()? {
            Response::Info { text } => Ok(text),
            Response::Error {
                code,
                retryable,
                retry_after_ms,
                message,
            } => Err(NetError::from_wire(
                code,
                retryable,
                retry_after_ms,
                message,
            )),
            other => Err(NetError::Protocol(format!(
                "unexpected response to {req:?}: {other:?}"
            ))),
        }
    }
}

/// Dial the first reachable address (bounded by `connect_timeout`),
/// apply socket options, and run the `Hello` handshake.
fn dial_and_handshake(
    addrs: &[SocketAddr],
    cfg: &ClientConfig,
) -> Result<(TcpStream, String, u32), NetError> {
    let mut last: Option<std::io::Error> = None;
    let mut stream = None;
    for a in addrs {
        let dialed = match cfg.connect_timeout {
            Some(t) => TcpStream::connect_timeout(a, t),
            None => TcpStream::connect(a),
        };
        match dialed {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last = Some(e),
        }
    }
    let mut stream = match stream {
        Some(s) => s,
        None => {
            return Err(NetError::Io(last.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address to dial")
            })))
        }
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(cfg.read_timeout);
    write_frame(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: cfg.client_name.clone(),
        }
        .encode(),
    )?;
    let payload = match read_frame(&mut stream, cfg.max_frame) {
        Ok(Some(p)) => p,
        Ok(None) => return Err(NetError::Closed),
        Err(crate::wire::FrameError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            return Err(NetError::Timeout)
        }
        Err(e) => return Err(e.into()),
    };
    match Response::decode(&payload)? {
        Response::HelloOk { version, server } => {
            // v2 servers are fine: this client only adds trace-carrying
            // frames, which it won't send to a peer that didn't offer v3.
            if version != PROTOCOL_VERSION && version != PROTOCOL_VERSION_V2 {
                return Err(NetError::Version {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                });
            }
            Ok((stream, server, version))
        }
        Response::Error {
            code,
            retryable,
            retry_after_ms,
            message,
        } => Err(NetError::from_wire(
            code,
            retryable,
            retry_after_ms,
            message,
        )),
        other => Err(NetError::Protocol(format!(
            "expected HelloOk, got {other:?}"
        ))),
    }
}

/// Snapshot one failed try for the [`ClientTrace`] attempt log.
fn attempt_record(attempt: u32, e: &NetError, backoff: Duration) -> AttemptRecord {
    let (code, retryable) = match e {
        NetError::Server {
            code, retryable, ..
        } => (Some(*code), *retryable),
        _ => (None, e.is_connection_loss()),
    };
    AttemptRecord {
        attempt,
        code,
        retryable,
        backoff_ms: backoff.as_millis() as u64,
        error: e.to_string(),
    }
}

/// How long to sleep before the next retry: the server's shed hint
/// when it sent one, the policy's jittered exponential backoff
/// otherwise.
fn retry_sleep(policy: &RetryPolicy, e: &NetError, attempt: u32, jitter: &mut u64) -> Duration {
    if let NetError::Server { retry_after_ms, .. } = e {
        if *retry_after_ms > 0 {
            return Duration::from_millis(u64::from(*retry_after_ms));
        }
    }
    policy.backoff(attempt, jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let mut j1 = p.seed;
        let mut j2 = p.seed;
        for attempt in 1..8 {
            let a = p.backoff(attempt, &mut j1);
            let b = p.backoff(attempt, &mut j2);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a <= p.max_backoff);
        }
        // Different seeds decorrelate at least one step of the schedule.
        let mut j3 = p.seed ^ 0xdead_beef;
        let diverged = (1..8).any(|n| {
            let mut j1 = p.seed;
            for _ in 1..n {
                p.backoff(n, &mut j1);
                p.backoff(n, &mut j3);
            }
            p.backoff(n, &mut j1) != p.backoff(n, &mut j3)
        });
        assert!(diverged);
    }

    #[test]
    fn shed_hint_wins_over_backoff() {
        let p = RetryPolicy::default();
        let mut j = p.seed;
        let e = NetError::from_wire(9, true, 333, "full".into());
        assert_eq!(retry_sleep(&p, &e, 1, &mut j), Duration::from_millis(333));
        let no_hint = NetError::from_wire(6, true, 0, "deadlock".into());
        assert!(retry_sleep(&p, &no_hint, 1, &mut j) <= p.max_backoff);
    }
}
