//! Client library: a blocking connection to an `aim2-server`.
//!
//! [`Client::connect`] performs the `Hello` handshake (surfacing a
//! version mismatch or an admission rejection as a typed error), then
//! [`Client::query`] drives the request/response protocol, transparently
//! issuing `FetchMore` until a streamed result completes. The low-level
//! [`Client::send`]/[`Client::recv`] pair stays public for callers that
//! want to drive suspended portals themselves (e.g. to `CancelQuery`
//! mid-stream).

use std::net::{TcpStream, ToSocketAddrs};

use aim2_model::{TableSchema, TableValue};

use crate::error::{ErrorCode, NetError};
use crate::proto::{MetricsFormat, Request, Response, PROTOCOL_VERSION};
use crate::wire::{read_frame, write_frame, DEFAULT_MAX_FRAME};

/// What a statement produced, mirroring the engine's `ExecResult` with
/// the streamed frames reassembled into a whole table.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// A query result: schema plus every row, in stream order.
    Table(TableSchema, TableValue),
    /// DML affected-row count.
    Count(u64),
    /// DDL / transaction-verb status line.
    Ok(String),
}

/// A connected, handshaken session with the server.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    server: String,
}

impl Client {
    /// Connect and shake hands. `client_name` identifies this client in
    /// the `Hello` (useful in server logs); version mismatch, admission
    /// rejection, or garbage both decode into typed [`NetError`]s.
    pub fn connect(addr: impl ToSocketAddrs, client_name: &str) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            server: String::new(),
        };
        client.send(&Request::Hello {
            version: PROTOCOL_VERSION,
            client: client_name.to_string(),
        })?;
        match client.recv()? {
            Response::HelloOk { version, server } => {
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Version {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                client.server = server;
                Ok(client)
            }
            Response::Error {
                code,
                retryable,
                message,
            } => Err(server_error(code, retryable, message)),
            other => Err(NetError::Protocol(format!(
                "expected HelloOk, got {other:?}"
            ))),
        }
    }

    /// The server's identification banner from the handshake.
    pub fn server_banner(&self) -> &str {
        &self.server
    }

    /// Send one request frame.
    pub fn send(&mut self, req: &Request) -> Result<(), NetError> {
        write_frame(&mut self.stream, &req.encode())?;
        Ok(())
    }

    /// Receive one response frame. A clean hangup is [`NetError::Closed`].
    pub fn recv(&mut self) -> Result<Response, NetError> {
        let payload = read_frame(&mut self.stream, self.max_frame)?.ok_or(NetError::Closed)?;
        Response::decode(&payload)
    }

    /// Run one statement, assembling a streamed result transparently
    /// (server default batch size).
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, NetError> {
        self.query_fetch(sql, 0)
    }

    /// Run one statement with an explicit per-frame row budget
    /// (`fetch = 0` lets the server choose). Issues `FetchMore` after
    /// every suspended frame until the stream completes.
    pub fn query_fetch(&mut self, sql: &str, fetch: u32) -> Result<QueryOutcome, NetError> {
        self.send(&Request::Query {
            fetch,
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Response::Ok { message } => Ok(QueryOutcome::Ok(message)),
            Response::Count { n } => Ok(QueryOutcome::Count(n)),
            Response::Error {
                code,
                retryable,
                message,
            } => Err(server_error(code, retryable, message)),
            Response::RowHeader { kind, schema } => {
                let mut tuples = Vec::new();
                loop {
                    match self.recv()? {
                        Response::Rows { done, rows } => {
                            tuples.extend(rows);
                            if done {
                                return Ok(QueryOutcome::Table(
                                    schema,
                                    TableValue { kind, tuples },
                                ));
                            }
                            self.send(&Request::FetchMore)?;
                        }
                        Response::Error {
                            code,
                            retryable,
                            message,
                        } => return Err(server_error(code, retryable, message)),
                        other => {
                            return Err(NetError::Protocol(format!(
                                "expected Rows mid-stream, got {other:?}"
                            )))
                        }
                    }
                }
            }
            other => Err(NetError::Protocol(format!(
                "unexpected response to Query: {other:?}"
            ))),
        }
    }

    /// Open an explicit transaction. `read_only = true` pins an MVCC
    /// snapshot: every query in it runs lock-free.
    pub fn begin(&mut self, read_only: bool) -> Result<String, NetError> {
        self.simple(&Request::Begin { read_only })
    }

    pub fn commit(&mut self) -> Result<String, NetError> {
        self.simple(&Request::Commit)
    }

    pub fn rollback(&mut self) -> Result<String, NetError> {
        self.simple(&Request::Rollback)
    }

    /// Fetch the server's metrics registry in the requested exposition.
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String, NetError> {
        self.info(&Request::Metrics { format })
    }

    /// Fetch the grouped engine counters (the shell's `.stats verbose`).
    pub fn stats(&mut self) -> Result<String, NetError> {
        self.info(&Request::Stats)
    }

    /// Run the server-side integrity walker and return its report.
    pub fn integrity_check(&mut self) -> Result<String, NetError> {
        self.info(&Request::IntegrityCheck)
    }

    /// Orderly hang-up; consumes the client.
    pub fn goodbye(mut self) -> Result<(), NetError> {
        self.send(&Request::Goodbye)?;
        match self.recv() {
            Ok(Response::Ok { .. }) | Err(NetError::Closed) => Ok(()),
            Ok(other) => Err(NetError::Protocol(format!(
                "unexpected response to Goodbye: {other:?}"
            ))),
            Err(e) => Err(e),
        }
    }

    fn simple(&mut self, req: &Request) -> Result<String, NetError> {
        self.send(req)?;
        match self.recv()? {
            Response::Ok { message } => Ok(message),
            Response::Error {
                code,
                retryable,
                message,
            } => Err(server_error(code, retryable, message)),
            other => Err(NetError::Protocol(format!(
                "unexpected response to {req:?}: {other:?}"
            ))),
        }
    }

    fn info(&mut self, req: &Request) -> Result<String, NetError> {
        self.send(req)?;
        match self.recv()? {
            Response::Info { text } => Ok(text),
            Response::Error {
                code,
                retryable,
                message,
            } => Err(server_error(code, retryable, message)),
            other => Err(NetError::Protocol(format!(
                "unexpected response to {req:?}: {other:?}"
            ))),
        }
    }
}

fn server_error(code: u32, retryable: bool, message: String) -> NetError {
    NetError::Server {
        code: ErrorCode::from_u32(code).unwrap_or(ErrorCode::Internal),
        retryable,
        message,
    }
}
