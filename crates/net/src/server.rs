//! `aim2-server`: a thread-per-connection TCP front end over
//! [`SharedDatabase`].
//!
//! Each accepted connection gets its own OS thread and its own
//! [`Session`], so the engine's existing isolation story (strict 2PL
//! for writers, MVCC snapshots for read-only transactions) applies to
//! network clients unchanged. Query results stream: a producer thread
//! drives [`Session::query_streamed`] into a bounded channel while the
//! connection thread packs rows into `Rows` frames — after every
//! non-final frame it *stops* and waits for `FetchMore`, so a slow or
//! suspended client parks the producer on the full channel instead of
//! growing a server-side buffer (backpressure all the way down to the
//! cursor pipeline).
//!
//! Statements outside an explicit transaction autocommit; bare queries
//! run as implicit *read-only snapshot* transactions, so the pure-read
//! network workload takes zero table locks.
//!
//! Admission control is watermark-based load shedding: at most
//! `max_conns` concurrent connections and `max_inflight` statements
//! executing at once across all connections — the excess get a typed,
//! retryable `Admission` error carrying a `retry_after_ms` backoff
//! hint instead of queueing unboundedly. Statements can carry a
//! deadline (`timeout_ms` on the Query frame, or the server default):
//! the evaluator checks it at its cursor-pull choke point, so an
//! expired statement unwinds as a retryable `DeadlineExceeded` with
//! the connection surviving. Connections idle past `idle_timeout` are
//! reaped (a `Ping` keepalive resets the clock), and a corruption-class
//! storage fault degrades the server to read-only serving: MVCC
//! snapshot reads keep answering while writes are refused with a typed
//! `Degraded` error.
//!
//! Graceful shutdown: the accept loop stops, idle connections are told
//! `Shutdown` at their next read, suspended portals abort, and every
//! connection thread is joined; dropping each `Session` rolls back
//! whatever transaction it still held.

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aim2::{DbError, ExecResult};
use aim2_exec::{Deadline, ExecError, RowSink};
use aim2_model::{TableKind, TableSchema, Tuple};
use aim2_obs::{LabeledCounter, LabeledCounterFamily, SpanEvent, Trace, TraceContext};
use aim2_storage::stats::Stats;
use aim2_storage::StorageError;
use aim2_txn::{Session, SharedDatabase, TxnError};

use crate::error::ErrorCode;
use crate::proto::{
    MetricsFormat, Request, Response, TraceFormat, TraceQuery, PROTOCOL_VERSION,
    PROTOCOL_VERSION_V2,
};
use crate::wire::{write_frame, FrameError, DEFAULT_MAX_FRAME, HEADER_LEN};

// Sessions cross into per-query producer threads; keep that a compile
// error if it ever stops being true.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
};

/// How often blocked reads wake up to check the shutdown flag.
const IDLE_TICK: Duration = Duration::from_millis(50);

/// Rows per `Rows` frame when the client asks for `fetch = 0`.
const DEFAULT_FETCH: usize = 1024;

/// Cardinality bound on the per-connection counter families; further
/// connections accumulate into the overflow bucket.
const MAX_CONN_SERIES: usize = 64;

/// Server tuning knobs. `Default` suits tests and the loopback
/// `reproduce` section; the `aim2-server` binary exposes them as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Maximum concurrent connections; the excess are rejected at
    /// accept time with a retryable `Admission` error.
    pub max_conns: usize,
    /// Maximum statements executing at once across all connections.
    pub max_inflight: usize,
    /// Hard per-frame size limit, both directions.
    pub max_frame: usize,
    /// Server identification string returned in the handshake.
    pub server_name: String,
    /// Default per-statement deadline applied when a `Query` arrives
    /// with `timeout_ms = 0`. `None` leaves such statements unbounded.
    pub statement_timeout: Option<Duration>,
    /// Connections with no traffic for this long are reaped with a
    /// retryable `IdleTimeout` error (a `Ping` resets the clock).
    /// `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Base backoff hint attached to load-shedding rejections; the
    /// actual `retry_after_ms` scales with how far past the watermark
    /// the server is.
    pub shed_retry_after: Duration,
    /// Traced statements at least this slow are flagged `slow` and
    /// retained by the flight recorder's always-sample-slow policy even
    /// when their sampling flag was off.
    pub slow_trace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 64,
            max_inflight: 64,
            max_frame: DEFAULT_MAX_FRAME,
            server_name: format!("aim2-server/{}", env!("CARGO_PKG_VERSION")),
            statement_timeout: None,
            idle_timeout: Some(Duration::from_secs(300)),
            shed_retry_after: Duration::from_millis(50),
            slow_trace: Duration::from_millis(100),
        }
    }
}

/// The server factory; see [`Server::start`].
pub struct Server;

/// Shared across the accept loop and every connection thread.
struct Inner {
    shared: SharedDatabase,
    stats: Stats,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    inflight: AtomicUsize,
    /// Set when the storage layer reported a corruption-class fault:
    /// the server keeps serving MVCC snapshot reads but refuses new
    /// write work until an operator intervenes (restart after repair).
    degraded: AtomicBool,
    /// Monotonic connection id; labels the per-connection counters.
    next_conn_id: AtomicU64,
    /// `net.queries` keyed by connection id (bounded cardinality).
    queries_by_conn: LabeledCounterFamily,
    /// `net.rows_streamed` keyed by connection id.
    rows_by_conn: LabeledCounterFamily,
}

impl Inner {
    /// Flip into degraded read-only serving. Idempotent; observable as
    /// the `net.degraded` gauge and refused writes.
    fn enter_degraded(&self, why: &str) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            self.stats.metrics().gauge("net.degraded").set(1);
            eprintln!("aim2-server: degrading to read-only serving: {why}");
        }
    }

    /// Classify an engine error; corruption-class faults degrade the
    /// server to read-only serving (reads stay up on MVCC snapshots).
    fn note_engine_error(&self, e: &TxnError) {
        let corruption = matches!(
            e,
            TxnError::Db(
                DbError::ObjectQuarantined { .. }
                    | DbError::Storage(
                        StorageError::CorruptPage { .. }
                            | StorageError::Corrupt(_)
                            | StorageError::CorruptData(_)
                            | StorageError::ChecksumMismatch(_)
                    )
            )
        );
        if corruption {
            self.enter_degraded(&e.to_string());
        }
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// The load-shedding hint: base backoff scaled by how far past the
    /// watermark we are, capped so a hostile spike cannot push clients
    /// into multi-minute sleeps.
    fn shed_hint_ms(&self, excess: usize) -> u32 {
        let base = self.cfg.shed_retry_after.as_millis() as u64;
        (base * excess.max(1) as u64).min(5_000) as u32
    }
}

/// Running server: owns the accept thread and all connection threads.
/// [`ServerHandle::shutdown`] (or drop) stops everything and joins.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind, spawn the accept loop, and return immediately.
    pub fn start(shared: SharedDatabase, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stats = shared.stats();
        let inner = Arc::new(Inner {
            shared,
            stats,
            cfg,
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            degraded: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(1),
            queries_by_conn: LabeledCounterFamily::new("net.queries", "conn", MAX_CONN_SERIES),
            rows_by_conn: LabeledCounterFamily::new("net.rows_streamed", "conn", MAX_CONN_SERIES),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let inner = inner.clone();
            let conns = conns.clone();
            std::thread::spawn(move || accept_loop(listener, inner, conns))
        };
        Ok(ServerHandle {
            inner,
            addr,
            accept: Some(accept),
            conns,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port for tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently connected clients.
    pub fn active_connections(&self) -> usize {
        self.inner.active_conns.load(Ordering::SeqCst)
    }

    /// Whether a corruption-class storage fault degraded the server to
    /// read-only serving.
    pub fn degraded(&self) -> bool {
        self.inner.is_degraded()
    }

    /// Graceful shutdown: stop accepting, tell every connection
    /// `Shutdown` at its next read (aborting suspended portals), join
    /// all threads. Sessions with open transactions roll back on drop.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conns mutex poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Admission control at the door: over capacity, the client gets
        // a typed, retryable error instead of a hung or reset socket.
        // The rejector consumes the client's Hello first — closing with
        // the Hello still unread would RST the connection and could
        // discard the error frame before the client sees it.
        let active = inner.active_conns.load(Ordering::SeqCst);
        if active >= inner.cfg.max_conns {
            inner.stats.inc_net_rejected();
            inner.stats.inc_net_load_shed();
            let retry_after_ms = inner.shed_hint_ms(active - inner.cfg.max_conns + 1);
            let max_conns = inner.cfg.max_conns;
            let max_frame = inner.cfg.max_frame;
            let handle = std::thread::spawn(move || {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = crate::wire::read_frame(&mut &stream, max_frame);
                let resp = Response::Error {
                    code: ErrorCode::Admission as u32,
                    retryable: true,
                    retry_after_ms,
                    message: format!("server full ({max_conns} connections)"),
                };
                let _ = write_frame(&mut &stream, &resp.encode());
            });
            conns.lock().expect("conns mutex poisoned").push(handle);
            continue;
        }
        inner.active_conns.fetch_add(1, Ordering::SeqCst);
        inner.stats.metrics().gauge("net.connections").inc();
        let handle = {
            let inner = inner.clone();
            std::thread::spawn(move || {
                let _ = Conn::new(&inner, stream).run();
                inner.active_conns.fetch_sub(1, Ordering::SeqCst);
                inner.stats.metrics().gauge("net.connections").dec();
            })
        };
        let mut guard = conns.lock().expect("conns mutex poisoned");
        guard.retain(|h| !h.is_finished());
        guard.push(handle);
    }
}

/// Outcome of one blocked read on the request socket.
enum IdleRead {
    Frame(Vec<u8>),
    /// Peer hung up cleanly between frames.
    Eof,
    /// The server's shutdown flag was raised while we waited.
    Shutdown,
    /// No frame started before the connection's idle deadline passed.
    IdleTimeout,
}

/// Read one frame, waking every [`IDLE_TICK`] to check `shutdown`.
/// Requires the stream's read timeout to be set to [`IDLE_TICK`].
/// Mirrors [`crate::wire::read_frame`] — the limit check happens before
/// any payload allocation.
/// `idle_deadline` is the idle-reaping cutoff: if no frame has *started*
/// by then, the read gives up with [`IdleRead::IdleTimeout`]. A frame
/// in progress is always drained — reaping mid-frame would desync.
fn read_frame_idle(
    stream: &TcpStream,
    max_frame: usize,
    shutdown: &AtomicBool,
    idle_deadline: Option<Instant>,
) -> Result<IdleRead, FrameError> {
    let mut r = stream;
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(IdleRead::Eof),
            Ok(0) => return Err(mid_frame_eof()),
            Ok(n) => filled += n,
            Err(e) if retryable_io(&e) => {
                if filled == 0 {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(IdleRead::Shutdown);
                    }
                    if idle_deadline.is_some_and(|d| Instant::now() >= d) {
                        return Ok(IdleRead::IdleTimeout);
                    }
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let expect = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > max_frame {
        // Never read (or allocate) the oversized payload; the caller
        // reports the typed error and drops the connection.
        return Err(FrameError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(mid_frame_eof()),
            Ok(n) => filled += n,
            // Keep draining a started frame even during shutdown:
            // losing framing sync would turn a clean goodbye into a
            // protocol error.
            Err(e) if retryable_io(&e) => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let got = aim2_storage::wal::crc32(&payload);
    if got != expect {
        return Err(FrameError::Checksum { expect, got });
    }
    Ok(IdleRead::Frame(payload))
}

fn retryable_io(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
    )
}

fn mid_frame_eof() -> FrameError {
    FrameError::Io(std::io::Error::new(
        ErrorKind::UnexpectedEof,
        "connection closed mid-frame",
    ))
}

/// Messages from the per-query producer thread to the frame packer.
enum StreamMsg {
    Start(TableSchema, TableKind),
    Row(Tuple),
}

/// [`RowSink`] that feeds the bounded stream channel. A closed channel
/// (consumer cancelled or died) surfaces as [`ExecError::Cancelled`],
/// unwinding the evaluation through its normal cursor-closing path.
struct ChanSink {
    tx: SyncSender<StreamMsg>,
}

impl RowSink for ChanSink {
    fn on_start(&mut self, schema: &TableSchema, kind: TableKind) -> aim2_exec::Result<()> {
        self.tx
            .send(StreamMsg::Start(schema.clone(), kind))
            .map_err(|_| ExecError::Cancelled)
    }

    fn on_row(&mut self, row: Tuple) -> aim2_exec::Result<()> {
        self.tx
            .send(StreamMsg::Row(row))
            .map_err(|_| ExecError::Cancelled)
    }
}

/// Why a connection's request loop ended.
enum ConnExit {
    /// Peer said goodbye or hung up.
    Closed,
    /// Protocol/framing violation — reported, then dropped.
    Dropped,
    /// Server shutdown.
    Shutdown,
}

/// How a streamed query's portal ended.
enum PortalEnd {
    /// Producer drained its channel; `tail` holds the unsent remainder.
    Complete,
    /// Client sent `CancelQuery` at a suspension point.
    Cancelled,
    /// Server shutdown hit a suspension point.
    Shutdown,
    /// Client sent something other than `FetchMore`/`CancelQuery` at a
    /// suspension point, or the socket failed.
    Protocol(String),
}

/// Everything `pack_rows` learned while draining the portal.
struct PortalState {
    end: PortalEnd,
    /// Rows received after the last full frame — the caller flushes
    /// them in the terminal `done: true` frame.
    tail: Vec<Tuple>,
    /// Rows already written out in full `Rows` frames.
    streamed: u64,
}

struct Conn<'a> {
    inner: &'a Inner,
    stream: TcpStream,
    session: Session,
    /// This connection's id rendered as the label value for the
    /// per-connection counter families.
    conn_label: String,
}

impl<'a> Conn<'a> {
    fn new(inner: &'a Inner, stream: TcpStream) -> Conn<'a> {
        let _ = stream.set_read_timeout(Some(IDLE_TICK));
        let _ = stream.set_nodelay(true);
        let id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        Conn {
            session: inner.shared.session(),
            inner,
            stream,
            conn_label: id.to_string(),
        }
    }

    fn send(&mut self, resp: &Response) -> Result<(), FrameError> {
        write_frame(&mut &self.stream, &resp.encode())?;
        self.inner.stats.inc_net_frame_out();
        Ok(())
    }

    /// Send a response where a write failure just means the peer left.
    fn send_or_close(&mut self, resp: &Response) -> Result<(), ConnExit> {
        self.send(resp).map_err(|_| ConnExit::Closed)
    }

    fn recv(&mut self) -> Result<IdleRead, FrameError> {
        let idle_deadline = self.inner.cfg.idle_timeout.map(|t| Instant::now() + t);
        let r = read_frame_idle(
            &self.stream,
            self.inner.cfg.max_frame,
            &self.inner.shutdown,
            idle_deadline,
        )?;
        if matches!(r, IdleRead::Frame(_)) {
            self.inner.stats.inc_net_frame_in();
        }
        Ok(r)
    }

    /// Report a protocol violation (best effort) and drop the
    /// connection. Counted under `net.rejected`: the peer is either
    /// hostile or desynced, and the only safe move is to hang up.
    fn proto_fail(&mut self, message: String) -> ConnExit {
        self.inner.stats.inc_net_rejected();
        let _ = self.send(&Response::Error {
            code: ErrorCode::Protocol as u32,
            retryable: false,
            retry_after_ms: 0,
            message,
        });
        ConnExit::Dropped
    }

    /// A frame-level failure drops the connection like any protocol
    /// violation, but a CRC mismatch is *transport corruption*, not a
    /// client bug — mark it retryable so the client reconnects and
    /// retries safe work instead of giving up.
    fn frame_fail(&mut self, e: &FrameError) -> ConnExit {
        self.inner.stats.inc_net_rejected();
        let retryable = matches!(e, FrameError::Checksum { .. });
        let _ = self.send(&Response::Error {
            code: ErrorCode::Protocol as u32,
            retryable,
            retry_after_ms: 0,
            message: format!("bad frame: {e}"),
        });
        ConnExit::Dropped
    }

    fn shutdown_exit(&mut self) -> ConnExit {
        let _ = self.send(&Response::Error {
            code: ErrorCode::Shutdown as u32,
            retryable: false,
            retry_after_ms: 0,
            message: "server shutting down".to_string(),
        });
        ConnExit::Shutdown
    }

    /// Reap an idle connection: tell the peer why (retryable — it can
    /// reconnect and carry on) and hang up.
    fn idle_exit(&mut self) -> ConnExit {
        let idle = self
            .inner
            .cfg
            .idle_timeout
            .map(|t| t.as_secs())
            .unwrap_or_default();
        let _ = self.send(&Response::Error {
            code: ErrorCode::IdleTimeout as u32,
            retryable: true,
            retry_after_ms: 0,
            message: format!("connection idle past {idle}s; reaped"),
        });
        ConnExit::Dropped
    }

    /// Map an engine error onto the wire, first letting the server
    /// classify it (corruption-class faults degrade to read-only).
    fn engine_error(&self, e: &TxnError) -> Response {
        self.inner.note_engine_error(e);
        if matches!(e, TxnError::Db(DbError::Exec(ExecError::DeadlineExceeded))) {
            self.inner.stats.inc_net_deadline_exceeded();
        }
        error_response(e)
    }

    fn run(mut self) -> ConnExit {
        // Handshake: the first frame must be a version-matched Hello.
        match self.handshake() {
            Ok(true) => {}
            Ok(false) => return ConnExit::Closed,
            Err(exit) => return exit,
        }
        loop {
            let req = match self.recv() {
                Ok(IdleRead::Frame(payload)) => match Request::decode(&payload) {
                    Ok(req) => req,
                    Err(e) => return self.proto_fail(e.to_string()),
                },
                Ok(IdleRead::Eof) => return ConnExit::Closed,
                Ok(IdleRead::Shutdown) => return self.shutdown_exit(),
                Ok(IdleRead::IdleTimeout) => return self.idle_exit(),
                Err(e) => return self.frame_fail(&e),
            };
            let r = match req {
                Request::Hello { .. } => Err(self.proto_fail("duplicate Hello".to_string())),
                Request::Query {
                    fetch,
                    timeout_ms,
                    attempt,
                    trace,
                    sql,
                } => self.handle_query(fetch, timeout_ms, attempt, trace, &sql),
                Request::FetchMore { .. } | Request::CancelQuery => {
                    // Legal only at a portal suspension point, which
                    // the query handler consumes itself.
                    self.send_or_close(&Response::Error {
                        code: ErrorCode::Protocol as u32,
                        retryable: false,
                        retry_after_ms: 0,
                        message: "no suspended query on this connection".to_string(),
                    })
                }
                Request::Ping => {
                    self.inner.stats.inc_net_ping();
                    self.send_or_close(&Response::Pong)
                }
                Request::Checkpoint => {
                    let _t = self.inner.stats.metrics().span("net.admin");
                    let resp = match self.inner.shared.checkpoint() {
                        Ok(()) => Response::Ok {
                            message: "CHECKPOINT".to_string(),
                        },
                        Err(e) => self.engine_error(&e),
                    };
                    self.send_or_close(&resp)
                }
                Request::Begin { read_only, trace } => {
                    if !read_only && self.inner.is_degraded() {
                        self.send_or_close(&degraded_response())
                    } else {
                        let msg = if read_only {
                            "BEGIN READ ONLY"
                        } else {
                            "BEGIN"
                        };
                        let resp = self.traced_verb(trace, msg, "net.begin", |conn| {
                            let r = if read_only {
                                conn.session.begin_read_only()
                            } else {
                                conn.session.begin()
                            };
                            match r {
                                Ok(()) => Response::Ok {
                                    message: msg.to_string(),
                                },
                                Err(e) => conn.engine_error(&e),
                            }
                        });
                        self.send_or_close(&resp)
                    }
                }
                Request::Commit { trace } => {
                    let resp = self.traced_verb(trace, "COMMIT", "net.commit", |conn| {
                        match conn.session.commit() {
                            Ok(()) => Response::Ok {
                                message: "COMMIT".to_string(),
                            },
                            Err(e) => conn.engine_error(&e),
                        }
                    });
                    self.send_or_close(&resp)
                }
                Request::Rollback => {
                    let resp = match self.session.rollback() {
                        Ok(()) => Response::Ok {
                            message: "ROLLBACK".to_string(),
                        },
                        Err(e) => self.engine_error(&e),
                    };
                    self.send_or_close(&resp)
                }
                Request::Metrics { format } => {
                    let _t = self.inner.stats.metrics().span("net.admin");
                    let mut snap = self.inner.shared.metrics();
                    for fam in [&self.inner.queries_by_conn, &self.inner.rows_by_conn] {
                        snap.labeled.extend(fam.snapshot().into_iter().map(
                            |(label_value, value)| LabeledCounter {
                                family: fam.family().to_string(),
                                label_key: fam.label_key().to_string(),
                                label_value,
                                value,
                            },
                        ));
                    }
                    let text = match format {
                        MetricsFormat::Json => snap.to_json(),
                        MetricsFormat::Prometheus => snap.to_prometheus(),
                    };
                    self.send_or_close(&Response::Info { text })
                }
                Request::Trace { query, format } => {
                    let _t = self.inner.stats.metrics().span("net.admin");
                    let text = render_trace_query(self.inner.stats.recorder(), query, format);
                    self.send_or_close(&Response::Info { text })
                }
                Request::Stats => {
                    let _t = self.inner.stats.metrics().span("net.admin");
                    let text = self.inner.shared.stats_snapshot().verbose().to_string();
                    self.send_or_close(&Response::Info { text })
                }
                Request::IntegrityCheck => {
                    let _t = self.inner.stats.metrics().span("net.admin");
                    let resp = match self.inner.shared.integrity_check() {
                        Ok(report) => {
                            if !report.is_clean() {
                                self.inner.enter_degraded(&format!(
                                    "integrity check found {} violation(s)",
                                    report.findings().len()
                                ));
                            }
                            Response::Info {
                                text: report.to_string(),
                            }
                        }
                        Err(e) => self.engine_error(&e),
                    };
                    self.send_or_close(&resp)
                }
                Request::Goodbye => {
                    let _ = self.send(&Response::Ok {
                        message: "bye".to_string(),
                    });
                    return ConnExit::Closed;
                }
            };
            if let Err(exit) = r {
                return exit;
            }
        }
    }

    /// Returns `Ok(true)` on a successful handshake, `Ok(false)` on a
    /// clean hangup before any frame.
    fn handshake(&mut self) -> Result<bool, ConnExit> {
        let payload = match self.recv() {
            Ok(IdleRead::Frame(p)) => p,
            Ok(IdleRead::Eof) => return Ok(false),
            Ok(IdleRead::Shutdown) => return Err(self.shutdown_exit()),
            Ok(IdleRead::IdleTimeout) => return Err(self.idle_exit()),
            Err(e) => return Err(self.frame_fail(&e)),
        };
        match Request::decode(&payload) {
            Ok(Request::Hello { version, client: _ }) => {
                // v2 clients are still served: they never send traced
                // tags or the Trace verb, so nothing else changes. The
                // reply echoes the client's version so it knows which
                // dialect the conversation is in.
                if version != PROTOCOL_VERSION && version != PROTOCOL_VERSION_V2 {
                    return Err(self.proto_fail(format!(
                        "protocol version mismatch: server speaks {PROTOCOL_VERSION} \
                         (and {PROTOCOL_VERSION_V2}), client sent {version}"
                    )));
                }
                let resp = Response::HelloOk {
                    version,
                    server: self.inner.cfg.server_name.clone(),
                };
                if self.send(&resp).is_err() {
                    return Ok(false);
                }
                Ok(true)
            }
            Ok(_) => Err(self.proto_fail("first message must be Hello".to_string())),
            Err(e) => Err(self.proto_fail(e.to_string())),
        }
    }

    /// Run a short transaction verb (Begin/Commit), capturing a trace
    /// for it when the frame carried a context.
    fn traced_verb(
        &mut self,
        trace: Option<TraceContext>,
        statement: &str,
        root: &'static str,
        f: impl FnOnce(&mut Self) -> Response,
    ) -> Response {
        let Some(ctx) = trace else { return f(self) };
        let started = Instant::now();
        aim2_obs::begin_capture_at(started);
        aim2_obs::set_trace_context(Some(ctx));
        let resp = {
            let _root = aim2_obs::capture_span(root);
            f(self)
        };
        aim2_obs::set_trace_context(None);
        self.finish_trace(ctx, statement, started, (0, 0));
        resp
    }

    /// Close out a traced request: fold the captured spans into a
    /// [`Trace`], flag it slow past the configured threshold, and
    /// record it when sampled or slow (always-sample-slow policy).
    fn finish_trace(
        &self,
        ctx: TraceContext,
        statement: &str,
        started: Instant,
        decoded_before: (u64, u64),
    ) {
        let spans = aim2_obs::end_capture();
        let mut trace = Trace::from_spans(
            ctx,
            statement,
            spans,
            self.inner.stats.objects_decoded() - decoded_before.0,
            self.inner.stats.atoms_decoded() - decoded_before.1,
        );
        trace.slow = started.elapsed() >= self.inner.cfg.slow_trace;
        if ctx.sampled || trace.slow {
            self.inner.stats.recorder().record(trace);
        }
    }

    /// One `Query` request end to end: admission, implicit-transaction
    /// handling, streaming with `FetchMore`/`CancelQuery` suspension.
    /// With a trace context the whole request runs under an armed span
    /// capture whose root is the `net.query` timer.
    fn handle_query(
        &mut self,
        fetch: u32,
        timeout_ms: u32,
        attempt: u32,
        trace: Option<TraceContext>,
        sql: &str,
    ) -> Result<(), ConnExit> {
        if attempt > 0 {
            // The client marked this statement as a retry of earlier
            // work — account it on arrival (before admission, so a
            // retry storm against a shedding server stays observable).
            self.inner.stats.inc_net_retry();
        }
        self.inner.queries_by_conn.add(&self.conn_label, 1);
        let Some(ctx) = trace else {
            return self.admit_query(fetch, timeout_ms, sql, false);
        };
        let decoded_before = (
            self.inner.stats.objects_decoded(),
            self.inner.stats.atoms_decoded(),
        );
        let started = Instant::now();
        aim2_obs::begin_capture_at(started);
        aim2_obs::set_trace_context(Some(ctx));
        if attempt > 0 {
            aim2_obs::note_event("retry.attempt");
        }
        let r = {
            // The timer doubles as the trace's root span, so the
            // histogram sample and the span tree measure the same
            // interval (admission included).
            let _root = self.inner.stats.metrics().span("net.query");
            self.admit_query(fetch, timeout_ms, sql, true)
        };
        aim2_obs::set_trace_context(None);
        self.finish_trace(ctx, sql, started, decoded_before);
        r
    }

    /// Watermark load shedding: past `max_inflight` the statement is
    /// refused immediately with a typed retryable error and a backoff
    /// hint scaled by the overload — bounded concurrency, never
    /// unbounded engine queueing.
    fn admit_query(
        &mut self,
        fetch: u32,
        timeout_ms: u32,
        sql: &str,
        traced: bool,
    ) -> Result<(), ConnExit> {
        let inflight = &self.inner.inflight;
        let current = {
            let _a = aim2_obs::capture_span("net.admission");
            inflight.fetch_add(1, Ordering::SeqCst)
        };
        if current >= self.inner.cfg.max_inflight {
            inflight.fetch_sub(1, Ordering::SeqCst);
            self.inner.stats.inc_net_load_shed();
            let excess = current - self.inner.cfg.max_inflight + 1;
            return self.send_or_close(&Response::Error {
                code: ErrorCode::Admission as u32,
                retryable: true,
                retry_after_ms: self.inner.shed_hint_ms(excess),
                message: format!(
                    "too many statements in flight (limit {})",
                    self.inner.cfg.max_inflight
                ),
            });
        }
        let r = self.handle_query_admitted(fetch, timeout_ms, sql, traced);
        self.inner.inflight.fetch_sub(1, Ordering::SeqCst);
        r
    }

    fn handle_query_admitted(
        &mut self,
        fetch: u32,
        timeout_ms: u32,
        sql: &str,
        traced: bool,
    ) -> Result<(), ConnExit> {
        self.inner.stats.inc_net_query();
        // The deadline clock starts at admission and covers the whole
        // statement, including time spent suspended awaiting FetchMore.
        let deadline = if timeout_ms > 0 {
            Some(Deadline::after(Duration::from_millis(u64::from(
                timeout_ms,
            ))))
        } else {
            self.inner.cfg.statement_timeout.map(Deadline::after)
        };
        // On a traced request the root `net.query` span already opened
        // in `handle_query`; opening the timer twice would record the
        // statement into the histogram twice.
        let _t = (!traced).then(|| self.inner.stats.metrics().span("net.query"));
        // Statements outside an explicit transaction autocommit; pure
        // queries run as implicit read-only snapshots — the MVCC path,
        // zero lock acquisitions, consistent for the whole stream even
        // while suspended.
        let implicit = self.session.txn_id().is_none();
        if implicit {
            let parsed = {
                let _p = aim2_obs::capture_span("net.parse");
                aim2_lang::parse_stmt(sql)
            };
            let is_query = match parsed {
                Ok(stmt) => matches!(
                    stmt,
                    aim2_lang::ast::Stmt::Query(_) | aim2_lang::ast::Stmt::Explain(_)
                ),
                Err(e) => {
                    // Refused before touching the engine.
                    return self.send_or_close(&Response::Error {
                        code: ErrorCode::Parse as u32,
                        retryable: false,
                        retry_after_ms: 0,
                        message: e.to_string(),
                    });
                }
            };
            if !is_query && self.inner.is_degraded() {
                // Read-only degradation: MVCC snapshot reads keep
                // answering, new write work is refused typed.
                return self.send_or_close(&degraded_response());
            }
            let begun = if is_query {
                self.session.begin_read_only()
            } else {
                self.session.begin()
            };
            if let Err(e) = begun {
                return self.send_or_close(&self.engine_error(&e));
            }
        }
        let r = self.stream_query(fetch, sql, implicit, deadline, traced);
        // Whatever happened, an implicit transaction never outlives its
        // statement (stream_query commits/rolls back on every normal
        // path; this covers early protocol exits).
        if implicit && self.session.txn_id().is_some() {
            let _ = self.session.rollback();
        }
        r
    }

    /// Run one statement through the streaming pipeline and write its
    /// response frames. `implicit` marks a per-statement transaction
    /// this function must settle (commit before acking DML, release on
    /// query completion, roll back on error).
    fn stream_query(
        &mut self,
        fetch: u32,
        sql: &str,
        implicit: bool,
        deadline: Option<Deadline>,
        traced: bool,
    ) -> Result<(), ConnExit> {
        let fetch = if fetch == 0 {
            DEFAULT_FETCH
        } else {
            fetch as usize
        };
        // Bounded handoff: the producer gets one frame of headroom,
        // then parks until the consumer drains — server memory per
        // query is O(fetch), independent of result size.
        let (tx, rx) = mpsc::sync_channel::<StreamMsg>(fetch);
        let session = &mut self.session;
        let stats = self.inner.stats.clone();
        let stream = &self.stream;
        let max_frame = self.inner.cfg.max_frame;
        let shutdown = &self.inner.shutdown;
        // Cross-thread trace assembly: the producer arms its own
        // capture at the *same origin* as this thread's, so both sets
        // of spans share one timeline; its events are absorbed below,
        // nested inside `net.row_stream`. That containment is what
        // keeps stage self-times summing within the root even though
        // producer and packer run concurrently.
        let trace_arm = if traced {
            aim2_obs::capture_origin().zip(aim2_obs::current_trace_context())
        } else {
            None
        };
        let (portal, produced) = {
            let _rs = aim2_obs::capture_span("net.row_stream");
            let (portal, produced, producer_spans) = std::thread::scope(|s| {
                let producer = s.spawn(move || {
                    if let Some((origin, ctx)) = trace_arm {
                        aim2_obs::begin_capture_at(origin);
                        aim2_obs::set_trace_context(Some(ctx));
                    }
                    let mut sink = ChanSink { tx };
                    let r = session.query_streamed_deadline(sql, &mut sink, deadline);
                    let spans: Vec<SpanEvent> = if trace_arm.is_some() {
                        aim2_obs::set_trace_context(None);
                        aim2_obs::end_capture()
                    } else {
                        Vec::new()
                    };
                    (r, spans)
                });
                let portal = pack_rows(
                    rx,
                    stream,
                    &stats,
                    fetch,
                    max_frame,
                    shutdown,
                    self.inner.cfg.idle_timeout,
                );
                // pack_rows dropped the receiver on its way out, so a
                // still-running producer unblocks into `Cancelled`
                // instead of deadlocking the scope join.
                let (produced, spans) = producer.join().unwrap_or_else(|_| {
                    (
                        Err(TxnError::State("query worker panicked".to_string())),
                        Vec::new(),
                    )
                });
                (portal, produced, spans)
            });
            aim2_obs::absorb_events(producer_spans, 0);
            (portal, produced)
        };
        self.inner
            .rows_by_conn
            .add(&self.conn_label, portal.streamed);
        match portal.end {
            PortalEnd::Complete => {}
            PortalEnd::Cancelled => {
                if implicit {
                    let _ = self.session.rollback();
                }
                return self.send_or_close(&Response::Error {
                    code: ErrorCode::Cancelled as u32,
                    retryable: false,
                    retry_after_ms: 0,
                    message: "query cancelled".to_string(),
                });
            }
            PortalEnd::Shutdown => return Err(self.shutdown_exit()),
            PortalEnd::Protocol(msg) => return Err(self.proto_fail(msg)),
        }
        let resp = match produced {
            Ok(None) => {
                // Streamed query: header and full frames are out; the
                // terminal frame carries the tail. Releasing the
                // implicit snapshot first — an RO commit cannot fail in
                // a way the client could act on.
                if implicit {
                    let _ = self.session.commit();
                }
                self.inner
                    .stats
                    .add_net_rows_streamed(portal.tail.len() as u64);
                self.inner
                    .rows_by_conn
                    .add(&self.conn_label, portal.tail.len() as u64);
                Response::Rows {
                    done: true,
                    rows: portal.tail,
                }
            }
            Ok(Some(res)) => {
                // DML/DDL: make it durable before acknowledging.
                if implicit {
                    if let Err(e) = self.session.commit() {
                        return self.send_or_close(&self.engine_error(&e));
                    }
                }
                match res {
                    ExecResult::Count(n) => Response::Count { n: n as u64 },
                    ExecResult::Ok(message) => Response::Ok { message },
                    ExecResult::Table(schema, value) => {
                        // Unreachable today (queries stream), kept total
                        // so a future materialized path still answers.
                        let header = Response::RowHeader {
                            kind: value.kind,
                            schema,
                        };
                        self.send_or_close(&header)?;
                        self.inner
                            .stats
                            .add_net_rows_streamed(value.tuples.len() as u64);
                        self.inner
                            .rows_by_conn
                            .add(&self.conn_label, value.tuples.len() as u64);
                        Response::Rows {
                            done: true,
                            rows: value.tuples,
                        }
                    }
                }
            }
            Err(e) => {
                if implicit {
                    let _ = self.session.rollback();
                }
                // After a RowHeader the error is still sent as a typed
                // frame; the client treats a mid-stream Error as
                // terminal for the whole result.
                self.engine_error(&e)
            }
        };
        self.send_or_close(&resp)
    }
}

/// Drain the stream channel into full `Rows` frames of `fetch` rows,
/// suspending for `FetchMore` after every one. Rows short of a full
/// frame stay in `tail` — the caller flushes them in the terminal
/// `done: true` frame once the producer's verdict is known (so an
/// errored query never fakes a complete result). Always drops `rx`
/// before returning.
fn pack_rows(
    rx: Receiver<StreamMsg>,
    stream: &TcpStream,
    stats: &Stats,
    fetch: usize,
    max_frame: usize,
    shutdown: &AtomicBool,
    idle_timeout: Option<Duration>,
) -> PortalState {
    let mut tail: Vec<Tuple> = Vec::new();
    let mut streamed: u64 = 0;
    loop {
        match rx.recv() {
            Ok(StreamMsg::Start(schema, kind)) => {
                let frame = Response::RowHeader { kind, schema };
                if write_frame(&mut &*stream, &frame.encode()).is_err() {
                    drop(rx);
                    return PortalState {
                        end: PortalEnd::Protocol("socket write failed".to_string()),
                        tail,
                        streamed,
                    };
                }
                stats.inc_net_frame_out();
            }
            Ok(StreamMsg::Row(row)) => {
                tail.push(row);
                if tail.len() < fetch {
                    continue;
                }
                stats.add_net_rows_streamed(tail.len() as u64);
                streamed += tail.len() as u64;
                let frame = Response::Rows {
                    done: false,
                    rows: std::mem::take(&mut tail),
                };
                if write_frame(&mut &*stream, &frame.encode()).is_err() {
                    drop(rx);
                    return PortalState {
                        end: PortalEnd::Protocol("socket write failed".to_string()),
                        tail,
                        streamed,
                    };
                }
                stats.inc_net_frame_out();
                // Suspension point: nothing more goes out until the
                // client speaks. The producer keeps filling the bounded
                // channel and then parks — that is the backpressure.
                // A suspended portal holds session state (and, outside
                // snapshots, table locks) — idle reaping applies here
                // too, so a vanished client cannot pin them forever.
                let idle_deadline = idle_timeout.map(|t| Instant::now() + t);
                let verdict = match read_frame_idle(stream, max_frame, shutdown, idle_deadline) {
                    Ok(IdleRead::Frame(payload)) => {
                        stats.inc_net_frame_in();
                        match Request::decode(&payload) {
                            Ok(Request::FetchMore { .. }) => None,
                            Ok(Request::CancelQuery) => Some(PortalEnd::Cancelled),
                            Ok(other) => Some(PortalEnd::Protocol(format!(
                                "expected FetchMore or CancelQuery, got {other:?}"
                            ))),
                            Err(e) => Some(PortalEnd::Protocol(e.to_string())),
                        }
                    }
                    Ok(IdleRead::Eof) => Some(PortalEnd::Protocol(
                        "client hung up with a suspended query".to_string(),
                    )),
                    Ok(IdleRead::Shutdown) => Some(PortalEnd::Shutdown),
                    Ok(IdleRead::IdleTimeout) => Some(PortalEnd::Protocol(
                        "client idle with a suspended query; reaped".to_string(),
                    )),
                    Err(e) => Some(PortalEnd::Protocol(e.to_string())),
                };
                if let Some(end) = verdict {
                    drop(rx);
                    return PortalState {
                        end,
                        tail,
                        streamed,
                    };
                }
            }
            Err(_) => break, // producer finished (ok or error)
        }
    }
    PortalState {
        end: PortalEnd::Complete,
        tail,
        streamed,
    }
}

/// Answer a `Trace` verb from the flight recorder in the requested
/// rendering. Always returns text (possibly a "no trace" notice) — an
/// empty recorder is an answer, not an error.
fn render_trace_query(
    rec: &aim2_obs::FlightRecorder,
    query: TraceQuery,
    format: TraceFormat,
) -> String {
    let render = |traces: Vec<std::sync::Arc<Trace>>| match format {
        TraceFormat::Text => traces
            .iter()
            .map(|t| t.render_text())
            .collect::<Vec<_>>()
            .join("\n"),
        TraceFormat::Jsonl => traces.iter().map(|t| t.to_json() + "\n").collect(),
    };
    match query {
        TraceQuery::Last => match rec.last() {
            Some(t) => render(vec![t]),
            None => "no traces recorded\n".to_string(),
        },
        TraceQuery::Slow => {
            let slow = rec.slow();
            if slow.is_empty() {
                "no slow traces recorded\n".to_string()
            } else {
                render(slow)
            }
        }
        TraceQuery::Id(id) => match rec.find(id) {
            Some(t) => render(vec![t]),
            None => format!("no trace {id:#018x} retained\n"),
        },
    }
}

/// Map an engine error onto the wire's typed error response.
fn error_response(e: &TxnError) -> Response {
    let code = match e {
        TxnError::Deadlock { .. } | TxnError::LockTimeout { .. } => ErrorCode::Deadlock,
        TxnError::ReadOnly(_) => ErrorCode::ReadOnly,
        TxnError::State(_) => ErrorCode::Txn,
        TxnError::Db(DbError::Parse(_)) => ErrorCode::Parse,
        TxnError::Db(DbError::Exec(ExecError::Cancelled)) => ErrorCode::Cancelled,
        TxnError::Db(DbError::Exec(ExecError::DeadlineExceeded)) => ErrorCode::DeadlineExceeded,
        TxnError::Db(DbError::Exec(_) | DbError::Catalog(_)) => ErrorCode::Semantic,
        TxnError::Db(DbError::ObjectQuarantined { .. }) => ErrorCode::Quarantined,
        TxnError::Db(DbError::Storage(_) | DbError::Index(_) | DbError::Model(_)) => {
            ErrorCode::Storage
        }
        TxnError::Db(DbError::DataDirMissing(_) | DbError::NotADatabase(_)) => ErrorCode::Internal,
    };
    Response::Error {
        code: code as u32,
        retryable: e.is_retryable(),
        retry_after_ms: 0,
        message: e.to_string(),
    }
}

/// The refusal every new write gets while the server serves degraded.
fn degraded_response() -> Response {
    Response::Error {
        code: ErrorCode::Degraded as u32,
        retryable: false,
        retry_after_ms: 0,
        message: "server degraded to read-only after a storage fault; \
                  reads keep answering, writes are refused"
            .to_string(),
    }
}
