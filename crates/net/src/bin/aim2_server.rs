//! `aim2-server` — serve an AIM-II database over TCP.
//!
//! ```text
//! cargo run -p aim2-net --bin aim2-server -- --listen 127.0.0.1:4884
//! cargo run -p aim2-net --bin aim2-server -- --data DIR --demo
//! ```
//!
//! Runs until stdin closes or a `quit` line arrives, then drains
//! in-flight work and shuts down gracefully. Every connection gets its
//! own session: read-only transactions (and bare queries) run on MVCC
//! snapshots, writers go through strict 2PL — exactly the semantics of
//! the embedded engine.

use std::io::BufRead;

use aim2::{Database, DbConfig};
use aim2_model::fixtures;
use aim2_net::{Server, ServerConfig};
use aim2_txn::SharedDatabase;

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:4884".to_string(),
        ..ServerConfig::default()
    };
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut demo = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => cfg.addr = expect(args.next(), "--listen ADDR"),
            "--data" => data_dir = Some(expect(args.next(), "--data DIR").into()),
            "--max-conns" => cfg.max_conns = parse(args.next(), "--max-conns N"),
            "--max-inflight" => cfg.max_inflight = parse(args.next(), "--max-inflight N"),
            "--statement-timeout-ms" => {
                let ms = parse(args.next(), "--statement-timeout-ms MS") as u64;
                cfg.statement_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--idle-timeout-ms" => {
                let ms = parse(args.next(), "--idle-timeout-ms MS") as u64;
                cfg.idle_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--slow-trace-ms" => {
                let ms = parse(args.next(), "--slow-trace-ms MS") as u64;
                cfg.slow_trace = std::time::Duration::from_millis(ms);
            }
            "--demo" => demo = true,
            "--help" | "-h" => {
                println!(
                    "usage: aim2-server [--listen ADDR] [--data DIR] [--demo]\n\
                     \x20                  [--max-conns N] [--max-inflight N]\n\
                     \x20                  [--statement-timeout-ms MS] [--idle-timeout-ms MS]\n\
                     \x20                  [--slow-trace-ms MS]\n\
                     --listen ADDR     bind address (default 127.0.0.1:4884)\n\
                     --data DIR        file-backed database (reopens if present)\n\
                     --demo            load the paper's Tables 1-8\n\
                     --max-conns N     connection admission limit (default 64)\n\
                     --max-inflight N  concurrent statement limit (default 64)\n\
                     --statement-timeout-ms MS  default per-statement deadline (0 = none)\n\
                     --idle-timeout-ms MS       reap idle connections after MS (0 = never)\n\
                     --slow-trace-ms MS         retain traces slower than MS in the slow\n\
                     \x20                           ring regardless of sampling (default 100)\n\
                     Type 'quit' (or close stdin) to shut down gracefully."
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let mut db = match &data_dir {
        Some(dir) if dir.join(aim2::persist::CATALOG_FILE).exists() => {
            let cfg = DbConfig {
                data_dir: data_dir.clone(),
                ..DbConfig::default()
            };
            match Database::open(cfg) {
                Ok(db) => {
                    eprintln!("reopened database in {}", dir.display());
                    db
                }
                Err(e) => {
                    eprintln!("cannot open {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        Some(_) => Database::with_config(DbConfig {
            data_dir: data_dir.clone(),
            ..DbConfig::default()
        }),
        None => Database::in_memory(),
    };
    if demo {
        if let Err(e) = load_demo(&mut db) {
            eprintln!("cannot load demo tables: {e}");
            std::process::exit(1);
        }
        eprintln!("loaded the paper's demo tables");
    }

    let shared = SharedDatabase::new(db);
    let mut handle = match Server::start(shared, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("aim2-server listening on {}", handle.local_addr());

    // Serve until stdin closes or says quit — dependency-free stand-in
    // for signal handling.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if matches!(l.trim(), "quit" | "exit" | "q") => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    eprintln!(
        "shutting down ({} connection(s) open)",
        handle.active_connections()
    );
    handle.shutdown();
    eprintln!("bye");
}

fn expect(v: Option<String>, what: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("missing value: {what}");
        std::process::exit(2);
    })
}

fn parse(v: Option<String>, what: &str) -> usize {
    expect(v, what).parse().unwrap_or_else(|_| {
        eprintln!("bad number: {what}");
        std::process::exit(2);
    })
}

fn load_demo(db: &mut Database) -> aim2::Result<()> {
    db.execute_script(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE DEPARTMENTS-1NF ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER );
         CREATE TABLE PROJECTS-1NF ( PNO INTEGER, PNAME STRING, DNO INTEGER );
         CREATE TABLE MEMBERS-1NF ( EMPNO INTEGER, PNO INTEGER, DNO INTEGER, FUNCTION STRING );
         CREATE TABLE EQUIP-1NF ( DNO INTEGER, QU INTEGER, TYPE STRING );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
         CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
    )?;
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("DEPARTMENTS-1NF", fixtures::departments_1nf_value()),
        ("PROJECTS-1NF", fixtures::projects_1nf_value()),
        ("MEMBERS-1NF", fixtures::members_1nf_value()),
        ("EQUIP-1NF", fixtures::equip_1nf_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
        ("REPORTS", fixtures::reports_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t)?;
        }
    }
    Ok(())
}
