//! `aim2-client` — interactive shell speaking the wire protocol.
//!
//! ```text
//! cargo run -p aim2-net --bin aim2-client -- 127.0.0.1:4884
//! ```
//!
//! The same statement/dot-command feel as the embedded `aim2` shell,
//! but every statement travels over TCP. Dot-commands:
//! `.begin [ro]`, `.commit`, `.rollback`, `.metrics [json|prom]`,
//! `.stats`, `.integrity`, `.ping`, `.checkpoint`, `.fetch N`, `.quit`.
//!
//! Server errors print with their retryability and any `retry after
//! N ms` backoff hint. On connection loss the shell reconnects
//! automatically (with a notice — any open transaction was rolled back
//! server-side) instead of exiting.

use std::io::{BufRead, Write};

use aim2_model::render;
use aim2_net::{Client, MetricsFormat, QueryOutcome, TraceFormat};

fn main() {
    let mut addr = "127.0.0.1:4884".to_string();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--help" | "-h" => {
                println!("usage: aim2-client [ADDR]   (default 127.0.0.1:4884)");
                return;
            }
            other => addr = other.to_string(),
        }
    }

    let mut client =
        match Client::connect(&addr, &format!("aim2-client/{}", env!("CARGO_PKG_VERSION"))) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        };
    eprintln!("connected to {} ({})", addr, client.server_banner());
    eprintln!("statements end with ;  — .help for commands");

    let mut fetch: u32 = 0;
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("aim2> ");
        } else {
            eprint!("  ..> ");
        }
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !dot_command(&mut client, &mut fetch, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let stmt = std::mem::take(&mut buffer);
            run_statement(&mut client, fetch, stmt.trim().trim_end_matches(';'));
        }
    }
    let _ = client.goodbye();
}

fn run_statement(client: &mut Client, fetch: u32, sql: &str) {
    if sql.is_empty() {
        return;
    }
    let was_in_txn = client.in_transaction();
    let before = client.reconnects();
    let r = client.query_fetch(sql, fetch);
    note_reconnect(client, before, was_in_txn);
    match r {
        Ok(QueryOutcome::Table(schema, value)) => {
            print!("{}", render::render_table(&schema, &value));
            println!("({} row(s))", value.tuples.len());
        }
        Ok(QueryOutcome::Count(n)) => println!("({n} affected)"),
        Ok(QueryOutcome::Ok(msg)) => println!("{msg}"),
        Err(e) => eprintln!("error: {e}"),
    }
}

/// If the client auto-reconnected during the last call, say so — and
/// warn when that silently ended an explicit transaction.
fn note_reconnect(client: &Client, before: u64, was_in_txn: bool) {
    if client.reconnects() > before {
        eprintln!("(connection lost; reconnected to the server)");
        if was_in_txn {
            eprintln!("(the open transaction was rolled back server-side)");
        }
    }
}

/// Returns false to quit.
fn dot_command(client: &mut Client, fetch: &mut u32, cmd: &str) -> bool {
    let mut parts = cmd.splitn(2, ' ');
    let report = |r: Result<String, aim2_net::NetError>| match r {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("error: {e}"),
    };
    let was_in_txn = client.in_transaction();
    let before = client.reconnects();
    match parts.next().unwrap_or("") {
        ".quit" | ".exit" | ".q" => return false,
        ".help" => println!(
            ".begin [ro]          open a transaction (ro = read-only snapshot)\n\
             .commit              commit the open transaction\n\
             .rollback            abort the open transaction\n\
             .metrics [json|prom] server metrics exposition\n\
             .stats               grouped engine counters\n\
             .integrity           run the server-side integrity walker\n\
             .ping                keepalive round-trip (resets the idle-reap clock)\n\
             .checkpoint          force a server-side checkpoint (durability floor)\n\
             .fetch N             rows per frame for streamed results (0 = server default)\n\
             .timeout MILLIS      per-statement deadline (0 = none; server may cap)\n\
             .trace [on|off|last|slow|ID|client] end-to-end traces: `on` samples\n\
                                  every statement; `last`/`slow`/hex ID fetch the\n\
                                  server's span tree; `client` shows this side's\n\
                                  retry/backoff record of the last statement\n\
             .quit                leave"
        ),
        ".begin" => {
            let ro = parts.next().map(str::trim) == Some("ro");
            report(client.begin(ro));
        }
        ".commit" => report(client.commit()),
        ".rollback" => report(client.rollback()),
        ".metrics" => {
            let format = match parts.next().map(str::trim) {
                Some("prom") => MetricsFormat::Prometheus,
                _ => MetricsFormat::Json,
            };
            report(client.metrics(format));
        }
        ".stats" => report(client.stats()),
        ".integrity" => report(client.integrity_check()),
        ".ping" => match client.ping() {
            Ok(()) => println!("pong"),
            Err(e) => eprintln!("error: {e}"),
        },
        ".checkpoint" => report(client.checkpoint()),
        ".fetch" => match parts.next().and_then(|n| n.trim().parse::<u32>().ok()) {
            Some(n) => {
                *fetch = n;
                println!("fetch = {n}");
            }
            None => eprintln!("usage: .fetch N"),
        },
        ".timeout" => match parts.next().and_then(|n| n.trim().parse::<u32>().ok()) {
            Some(ms) => {
                client.set_statement_timeout_ms(ms);
                println!("statement timeout = {ms}ms");
            }
            None => eprintln!("usage: .timeout MILLIS"),
        },
        ".trace" => match parts.next().map(str::trim) {
            Some("on") => {
                client.set_tracing(true);
                println!("tracing on: every statement carries a sampled trace id");
            }
            Some("off") => {
                client.set_tracing(false);
                println!("tracing off");
            }
            Some("slow") => report(client.trace_slow(TraceFormat::Text)),
            Some("client") => match client.last_client_trace() {
                Some(t) => print!("{}", t.render_text()),
                None => println!("(no statement run yet)"),
            },
            Some(id) if !id.is_empty() && id != "last" => {
                let parsed = u64::from_str_radix(id.trim_start_matches("0x"), 16)
                    .or_else(|_| id.parse::<u64>());
                match parsed {
                    Ok(id) => report(client.trace_by_id(id, TraceFormat::Text)),
                    Err(_) => eprintln!("usage: .trace [on|off|last|slow|ID|client]"),
                }
            }
            _ => report(client.trace_last(TraceFormat::Text)),
        },
        other => eprintln!("unknown command {other}; try .help"),
    }
    note_reconnect(client, before, was_in_txn);
    true
}
