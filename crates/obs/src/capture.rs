//! Thread-local span capture for slow-query trees.
//!
//! [`Timer`](crate::Timer) guards always record into their histogram;
//! when the current thread has armed a capture with [`begin_capture`],
//! each completed span additionally pushes a [`SpanEvent`]. The engine
//! arms a capture around query execution and keeps the events only if
//! the query crossed the slow-query threshold. Query evaluation is
//! single-threaded, so a thread-local is both cheap and correct; spans
//! on other threads (e.g. a group-commit leader fsyncing on a peer's
//! behalf) simply don't appear in this query's tree.

use std::cell::RefCell;
use std::time::Instant;

/// One completed span inside an armed capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Nesting depth below the capture root (0 = outermost).
    pub depth: usize,
    /// Start offset from `begin_capture`, nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
}

#[derive(Default)]
struct CaptureState {
    origin: Option<Instant>,
    depth: usize,
    events: Vec<SpanEvent>,
}

thread_local! {
    static CAPTURE: RefCell<CaptureState> = RefCell::new(CaptureState::default());
}

/// Arm span capture on this thread, discarding any previous capture.
pub fn begin_capture() {
    begin_capture_at(Instant::now());
}

/// Arm span capture with an explicit origin instant. Two threads armed
/// with the *same* origin produce spans on one shared timeline, so a
/// producer thread's events can later be [`absorb_events`]-merged into
/// the connection thread's capture and nest correctly.
pub fn begin_capture_at(origin: Instant) {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        c.origin = Some(origin);
        c.depth = 0;
        c.events.clear();
    });
}

/// Whether a capture is armed on this thread.
pub fn capture_armed() -> bool {
    CAPTURE.with(|c| c.borrow().origin.is_some())
}

/// The armed capture's origin instant, if any — hand this to a worker
/// thread's [`begin_capture_at`] so both captures share a timeline.
pub fn capture_origin() -> Option<Instant> {
    CAPTURE.with(|c| c.borrow().origin)
}

/// Merge spans captured on another thread (same origin) into this
/// thread's armed capture, re-parenting them `depth_offset` levels
/// below this thread's current nesting. No-op when capture is idle.
pub fn absorb_events(events: Vec<SpanEvent>, depth_offset: usize) {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        if c.origin.is_none() {
            return;
        }
        let base = c.depth + depth_offset;
        c.events.extend(events.into_iter().map(|mut e| {
            e.depth += base;
            e
        }));
    });
}

/// Record an instantaneous point event (zero duration) at the current
/// nesting depth — used for retry/deadline markers. No-op when idle.
pub fn note_event(name: &'static str) {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        let Some(origin) = c.origin else { return };
        let start_ns = Instant::now()
            .checked_duration_since(origin)
            .map_or(0, |d| d.as_nanos() as u64);
        let depth = c.depth;
        c.events.push(SpanEvent {
            name,
            depth,
            start_ns,
            dur_ns: 0,
        });
    });
}

/// A capture-only span guard: contributes a [`SpanEvent`] to an armed
/// capture without touching any histogram. Used for structural spans
/// (`net.admission`, `net.row_stream`, …) that exist purely to
/// attribute trace time. Free when capture is idle.
pub struct CaptureSpan {
    name: &'static str,
    start: Instant,
    armed: bool,
}

/// Open a [`CaptureSpan`]; it closes (and records) on drop.
pub fn capture_span(name: &'static str) -> CaptureSpan {
    CaptureSpan {
        name,
        start: Instant::now(),
        armed: enter(),
    }
}

impl Drop for CaptureSpan {
    fn drop(&mut self) {
        if self.armed {
            let dur_ns = self.start.elapsed().as_nanos() as u64;
            exit(self.name, self.start, dur_ns);
        }
    }
}

/// Disarm capture and return the collected spans in completion order
/// (children before their parent, as each span ends).
pub fn end_capture() -> Vec<SpanEvent> {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        c.origin = None;
        c.depth = 0;
        std::mem::take(&mut c.events)
    })
}

/// Called by `Timer::new`. Returns whether a capture is armed so the
/// matching `exit` can skip the thread-local entirely when idle.
pub(crate) fn enter() -> bool {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        if c.origin.is_some() {
            c.depth += 1;
            true
        } else {
            false
        }
    })
}

pub(crate) fn exit(name: &'static str, start: Instant, dur_ns: u64) {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        let Some(origin) = c.origin else { return };
        c.depth = c.depth.saturating_sub(1);
        let depth = c.depth;
        let start_ns = start
            .checked_duration_since(origin)
            .map_or(0, |d| d.as_nanos() as u64);
        c.events.push(SpanEvent {
            name,
            depth,
            start_ns,
            dur_ns,
        });
    });
}

/// Render captured spans as an indented tree in start order.
pub fn render_spans(events: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.start_ns, e.depth));
    let mut out = String::new();
    for e in sorted {
        out.push_str(&format!(
            "{}{} {:.1}µs (+{:.1}µs)\n",
            "  ".repeat(e.depth),
            e.name,
            e.dur_ns as f64 / 1e3,
            e.start_ns as f64 / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn capture_collects_nested_spans() {
        let m = Metrics::default();
        begin_capture();
        {
            let _outer = m.span("outer");
            let _inner = m.span("inner");
        }
        let events = end_capture();
        let names: Vec<_> = events.iter().map(|e| (e.name, e.depth)).collect();
        // Inner drops first; it is one level deeper.
        assert_eq!(names, vec![("inner", 1), ("outer", 0)]);
        assert!(events.iter().all(|e| e.start_ns <= e.start_ns + e.dur_ns));
    }

    #[test]
    fn idle_thread_collects_nothing() {
        let m = Metrics::default();
        {
            let _t = m.span("quiet");
        }
        begin_capture();
        assert!(end_capture().is_empty());
        assert_eq!(m.histogram("quiet").count(), 1);
    }

    #[test]
    fn absorb_renests_worker_spans_under_local_root() {
        let m = Metrics::default();
        let origin = Instant::now();
        begin_capture_at(origin);
        let worker = std::thread::spawn(move || {
            begin_capture_at(origin);
            {
                let m = Metrics::default();
                let _s = m.span("worker.span");
            }
            end_capture()
        })
        .join()
        .unwrap();
        {
            let _root = m.span("root");
            absorb_events(worker, 1);
        }
        let events = end_capture();
        let names: Vec<_> = events.iter().map(|e| (e.name, e.depth)).collect();
        assert!(names.contains(&("worker.span", 2)), "got {names:?}");
        assert!(names.contains(&("root", 0)));
    }

    #[test]
    fn note_event_and_capture_span_respect_arming() {
        note_event("ignored.idle");
        {
            let _s = capture_span("ignored.idle.span");
        }
        begin_capture();
        assert!(capture_armed());
        assert!(capture_origin().is_some());
        {
            let _s = capture_span("outer");
            note_event("point");
        }
        let events = end_capture();
        let names: Vec<_> = events.iter().map(|e| (e.name, e.depth, e.dur_ns)).collect();
        assert_eq!(names.len(), 2, "idle-thread events must not leak in");
        assert!(names
            .iter()
            .any(|(n, d, dur)| *n == "point" && *d == 1 && *dur == 0));
        assert!(names.iter().any(|(n, d, _)| *n == "outer" && *d == 0));
    }

    #[test]
    fn render_indents_by_depth() {
        let events = vec![
            SpanEvent {
                name: "child",
                depth: 1,
                start_ns: 500,
                dur_ns: 100,
            },
            SpanEvent {
                name: "root",
                depth: 0,
                start_ns: 0,
                dur_ns: 1000,
            },
        ];
        let s = render_spans(&events);
        let lines: Vec<_> = s.lines().collect();
        assert!(lines[0].starts_with("root"));
        assert!(lines[1].starts_with("  child"));
    }
}
