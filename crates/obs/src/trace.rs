//! Request-scoped tracing: trace contexts, span-tree traces with
//! per-stage latency attribution, and the bounded flight recorder that
//! retains completed traces for later inspection.
//!
//! A trace begins life as a 64-bit id minted by whoever issued the
//! request (the network client or the shell). The id travels with the
//! request — over the wire on protocol-v3 frames — and the serving side
//! arms a span capture ([`crate::begin_capture_at`]) for its lifetime.
//! When the request completes, the captured [`SpanEvent`] tree is
//! folded into a [`Trace`]: the raw spans, plus a *stage summary* that
//! attributes each span's **self time** (its duration minus its direct
//! children's) to a coarse stage tag (`admission`, `parse`, `plan`,
//! `lock_wait`, `wal_fsync`, `exec`, `row_stream`, `cold_decode`, …).
//! Self-time attribution makes the invariant structural: the stage
//! durations of a well-nested capture always sum to *within* the root
//! span, never over it.
//!
//! Completed traces land in a [`FlightRecorder`]: a bounded ring with a
//! lock-free (atomic fetch-add) write head and per-slot mutexes, so
//! concurrent recorders never contend except on slot reuse. The
//! recorder additionally retains the *first* few traces ever recorded
//! (head retention — the startup pathology survives ring wrap) and a
//! separate bounded ring of traces flagged slow (always-sample-slow:
//! a slow request is kept even if its sampling flag was off and even
//! after the main ring evicts it).

use crate::capture::SpanEvent;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The request-scoped identity a trace travels under: the minted id and
/// whether the issuer asked for the full span tree to be recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Issuer-minted 64-bit id; zero never names a real trace.
    pub trace_id: u64,
    /// Record the completed trace in the flight recorder. Unsampled
    /// traces still capture spans so the always-sample-slow policy can
    /// promote them if the request turns out slow.
    pub sampled: bool,
}

impl TraceContext {
    /// A fresh sampled context with a newly minted id.
    pub fn sampled() -> TraceContext {
        TraceContext {
            trace_id: mint_trace_id(),
            sampled: true,
        }
    }
}

/// Mint a 64-bit trace id: wall-clock nanoseconds folded with a
/// process-wide counter through a splitmix-style mixer. Never zero.
pub fn mint_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0x9e37_79b9);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let mut x = nanos ^ n.rotate_left(17) ^ (std::process::id() as u64) << 32;
    // splitmix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x.max(1)
}

std::thread_local! {
    static TRACE_CTX: std::cell::Cell<Option<TraceContext>> = const { std::cell::Cell::new(None) };
}

/// Install the trace context for this thread (the serving side sets it
/// for the request's lifetime so deep layers — the slow-query log, the
/// deadline event sites — can stamp the id without plumbing).
pub fn set_trace_context(ctx: Option<TraceContext>) {
    TRACE_CTX.with(|c| c.set(ctx));
}

/// The trace context installed on this thread, if any.
pub fn current_trace_context() -> Option<TraceContext> {
    TRACE_CTX.with(|c| c.get())
}

/// Map a span name onto its coarse stage tag. Unknown spans fall into
/// `"other"` — they still count toward the stage sum, so adding a new
/// timer site never breaks the sum-within-root invariant.
pub fn stage_of(name: &str) -> &'static str {
    match name {
        "net.admission" => "admission",
        "net.parse" => "parse",
        "exec.plan" => "plan",
        "txn.lock_wait" => "lock_wait",
        "wal.fsync" => "wal_fsync",
        "wal.append" => "wal_append",
        "db.query" => "exec",
        "net.row_stream" => "row_stream",
        "colstore.decode" => "cold_decode",
        "txn.commit" => "commit",
        "deadline.exceeded" => "deadline",
        n if n.starts_with("retry") || n.starts_with("client.retry") => "retry",
        _ => "other",
    }
}

/// Stage tags in stable display order (tags absent from a trace are
/// simply not shown).
pub const STAGE_ORDER: &[&str] = &[
    "admission",
    "parse",
    "plan",
    "lock_wait",
    "exec",
    "cold_decode",
    "row_stream",
    "wal_append",
    "wal_fsync",
    "commit",
    "retry",
    "deadline",
    "other",
];

/// A completed request trace: the raw span tree plus derived stage
/// attribution and the decode work the request performed.
#[derive(Debug, Clone)]
pub struct Trace {
    pub trace_id: u64,
    /// Whether the issuer asked for recording (slow promotion can land
    /// unsampled traces in the recorder too).
    pub sampled: bool,
    /// The statement (or verb) the trace covers.
    pub statement: String,
    /// Name of the root (depth-0) span, e.g. `net.query`.
    pub root: String,
    /// Root span duration, nanoseconds.
    pub total_ns: u64,
    /// Raw captured spans (completion order, as captured).
    pub spans: Vec<SpanEvent>,
    /// Self-time per stage tag, [`STAGE_ORDER`] order, zero stages
    /// omitted. The root span's own self time is excluded, so the sum
    /// is always ≤ `total_ns` for a well-nested capture.
    pub stages: Vec<(&'static str, u64)>,
    /// Objects decoded while the request ran (Stats delta).
    pub objects_decoded: u64,
    /// Atoms decoded while the request ran (Stats delta).
    pub atoms_decoded: u64,
    /// Flagged slow by the recording side's threshold.
    pub slow: bool,
}

/// `events` sorted into start order, the shape [`Trace`] derives from.
fn sorted_indices(events: &[SpanEvent]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..events.len()).collect();
    idx.sort_by_key(|&i| (events[i].start_ns, events[i].depth));
    idx
}

/// Per-span self time: each span's duration minus the durations of its
/// direct children (well-nested by construction of the capture).
fn self_times(events: &[SpanEvent]) -> Vec<u64> {
    let order = sorted_indices(events);
    let mut child_sum = vec![0u64; events.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &i in &order {
        while let Some(&top) = stack.last() {
            if events[top].depth >= events[i].depth {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&parent) = stack.last() {
            child_sum[parent] += events[i].dur_ns;
        }
        stack.push(i);
    }
    events
        .iter()
        .zip(child_sum)
        .map(|(e, c)| e.dur_ns.saturating_sub(c))
        .collect()
}

impl Trace {
    /// Fold a captured span tree into a trace. The root is the
    /// earliest depth-0 span; its own self time is excluded from the
    /// stage summary (it is the untracked overhead inside the root).
    pub fn from_spans(
        ctx: TraceContext,
        statement: impl Into<String>,
        spans: Vec<SpanEvent>,
        objects_decoded: u64,
        atoms_decoded: u64,
    ) -> Trace {
        let order = sorted_indices(&spans);
        let root_idx = order
            .iter()
            .copied()
            .find(|&i| spans[i].depth == 0)
            .unwrap_or(0);
        let (root, total_ns) = spans
            .get(root_idx)
            .map(|r| (r.name.to_string(), r.dur_ns))
            .unwrap_or_default();
        let selfs = self_times(&spans);
        let mut by_stage: std::collections::BTreeMap<&'static str, u64> = Default::default();
        for (i, e) in spans.iter().enumerate() {
            if i == root_idx && !spans.is_empty() {
                continue; // root self time = untracked overhead
            }
            *by_stage.entry(stage_of(e.name)).or_default() += selfs[i];
        }
        let stages = STAGE_ORDER
            .iter()
            .filter_map(|&s| by_stage.get(s).map(|&ns| (s, ns)))
            .filter(|(s, ns)| *ns > 0 || *s == "deadline" || *s == "retry")
            .collect();
        Trace {
            trace_id: ctx.trace_id,
            sampled: ctx.sampled,
            statement: statement.into(),
            root,
            total_ns,
            spans,
            stages,
            objects_decoded,
            atoms_decoded,
            slow: false,
        }
    }

    /// Sum of the stage self-times — always ≤ [`Trace::total_ns`] for a
    /// well-nested capture (that is the trace-completeness invariant).
    pub fn stage_total_ns(&self) -> u64 {
        self.stages.iter().map(|(_, ns)| ns).sum()
    }

    /// Deterministic text rendering: header, stage summary, decode
    /// counters, then the indented span tree in start order.
    pub fn render_text(&self) -> String {
        let us = |ns: u64| ns as f64 / 1e3;
        let mut out = format!(
            "trace {:#018x}{}{} {:.1}µs  {}\n",
            self.trace_id,
            if self.sampled { "" } else { " (unsampled)" },
            if self.slow { " [slow]" } else { "" },
            us(self.total_ns),
            if self.statement.is_empty() {
                "(no statement)"
            } else {
                &self.statement
            }
        );
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|(s, ns)| format!("{s}={:.1}µs", us(*ns)))
            .collect();
        out.push_str(&format!("  stages: {}\n", stages.join(" ")));
        out.push_str(&format!(
            "  decoded: objects={} atoms={}\n",
            self.objects_decoded, self.atoms_decoded
        ));
        for line in crate::capture::render_spans(&self.spans).lines() {
            out.push_str("  | ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// One JSON object on one line (JSONL element). Hand-rolled — the
    /// environment has no serde; the statement is string-escaped.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"trace_id\":\"{:#018x}\",\"sampled\":{},\"slow\":{},\"statement\":\"{}\",\
             \"root\":\"{}\",\"total_ns\":{},\"objects_decoded\":{},\"atoms_decoded\":{},\
             \"stages\":{{",
            self.trace_id,
            self.sampled,
            self.slow,
            escape_json(&self.statement),
            escape_json(&self.root),
            self.total_ns,
            self.objects_decoded,
            self.atoms_decoded,
        );
        for (i, (stage, ns)) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{stage}\":{ns}"));
        }
        s.push_str("},\"spans\":[");
        let order = sorted_indices(&self.spans);
        for (i, &idx) in order.iter().enumerate() {
            let e = &self.spans[idx];
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"depth\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                e.name, e.depth, e.start_ns, e.dur_ns
            ));
        }
        s.push_str("]}");
        s
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Default main-ring capacity of a [`FlightRecorder`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;
/// How many of the first-ever traces the head-retention list keeps.
const HEAD_KEEP: usize = 8;
/// Bounded retention of slow-flagged traces.
const SLOW_KEEP: usize = 16;

struct RecorderInner {
    /// The main ring. The write index is a lock-free atomic counter;
    /// each slot has its own mutex, so two concurrent recorders only
    /// contend when the ring wraps onto the same slot.
    slots: Vec<Mutex<Option<Arc<Trace>>>>,
    head: AtomicU64,
    /// The first [`HEAD_KEEP`] traces ever recorded (head retention).
    first: Mutex<Vec<Arc<Trace>>>,
    /// Slow-flagged traces, newest-last, bounded by [`SLOW_KEEP`].
    slow: Mutex<VecDeque<Arc<Trace>>>,
    last: Mutex<Option<Arc<Trace>>>,
}

/// Bounded, shareable ring of completed [`Trace`]s. Clones share state.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder whose main ring holds `capacity` traces.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                head: AtomicU64::new(0),
                first: Mutex::new(Vec::new()),
                slow: Mutex::new(VecDeque::new()),
                last: Mutex::new(None),
            }),
        }
    }

    /// Main-ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Total traces recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.inner.head.load(Ordering::Relaxed)
    }

    /// Record a completed trace. Slow traces are additionally retained
    /// in the slow ring regardless of main-ring eviction.
    pub fn record(&self, trace: Trace) {
        let slow = trace.slow;
        let t = Arc::new(trace);
        let n = self.inner.head.fetch_add(1, Ordering::Relaxed);
        let slot = (n % self.inner.slots.len() as u64) as usize;
        *self.inner.slots[slot].lock().unwrap() = Some(t.clone());
        *self.inner.last.lock().unwrap() = Some(t.clone());
        if (n as usize) < HEAD_KEEP {
            self.inner.first.lock().unwrap().push(t.clone());
        }
        if slow {
            let mut s = self.inner.slow.lock().unwrap();
            if s.len() == SLOW_KEEP {
                s.pop_front();
            }
            s.push_back(t);
        }
    }

    /// The most recently recorded trace.
    pub fn last(&self) -> Option<Arc<Trace>> {
        self.inner.last.lock().unwrap().clone()
    }

    /// Slow-flagged traces, oldest first.
    pub fn slow(&self) -> Vec<Arc<Trace>> {
        self.inner.slow.lock().unwrap().iter().cloned().collect()
    }

    /// Look a trace up by id: the main ring, then head retention, then
    /// the slow ring.
    pub fn find(&self, trace_id: u64) -> Option<Arc<Trace>> {
        for slot in &self.inner.slots {
            if let Some(t) = slot.lock().unwrap().as_ref() {
                if t.trace_id == trace_id {
                    return Some(t.clone());
                }
            }
        }
        if let Some(t) = self
            .inner
            .first
            .lock()
            .unwrap()
            .iter()
            .find(|t| t.trace_id == trace_id)
        {
            return Some(t.clone());
        }
        self.inner
            .slow
            .lock()
            .unwrap()
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// The main ring's live traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<Trace>> {
        let head = self.inner.head.load(Ordering::Relaxed);
        let cap = self.inner.slots.len() as u64;
        let start = head.saturating_sub(cap);
        (start..head)
            .filter_map(|n| {
                let slot = (n % cap) as usize;
                self.inner.slots[slot].lock().unwrap().clone()
            })
            .collect()
    }

    /// Every retained trace as JSONL, oldest first: head retention,
    /// then the main ring, then any slow traces both already missed
    /// (deduplicated by id).
    pub fn to_jsonl(&self) -> String {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = String::new();
        let firsts: Vec<Arc<Trace>> = self.inner.first.lock().unwrap().clone();
        for t in firsts.into_iter().chain(self.recent()).chain(self.slow()) {
            if seen.insert(t.trace_id) {
                out.push_str(&t.to_json());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, depth: usize, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            name,
            depth,
            start_ns,
            dur_ns,
        }
    }

    fn sample_trace(id: u64, slow: bool) -> Trace {
        let spans = vec![
            ev("txn.lock_wait", 2, 100, 200),
            ev("db.query", 1, 50, 800),
            ev("net.parse", 1, 10, 30),
            ev("net.query", 0, 0, 1000),
        ];
        let mut t = Trace::from_spans(
            TraceContext {
                trace_id: id,
                sampled: true,
            },
            "SELECT 1",
            spans,
            7,
            21,
        );
        t.slow = slow;
        t
    }

    #[test]
    fn stages_are_self_times_and_sum_within_root() {
        let t = sample_trace(0xabc, false);
        assert_eq!(t.root, "net.query");
        assert_eq!(t.total_ns, 1000);
        let stage = |s: &str| t.stages.iter().find(|(k, _)| *k == s).map(|(_, v)| *v);
        // db.query self time excludes its lock_wait child.
        assert_eq!(stage("exec"), Some(600));
        assert_eq!(stage("lock_wait"), Some(200));
        assert_eq!(stage("parse"), Some(30));
        // Root self time is excluded, so the sum stays within the root.
        assert!(t.stage_total_ns() <= t.total_ns);
        assert_eq!(t.stage_total_ns(), 830);
    }

    #[test]
    fn render_and_json_shapes() {
        let t = sample_trace(0x1234, true);
        let text = t.render_text();
        assert!(text.starts_with("trace 0x0000000000001234 [slow]"));
        assert!(text.contains("stages: parse="));
        assert!(text.contains("decoded: objects=7 atoms=21"));
        assert!(text.contains("| net.query"));
        let json = t.to_json();
        assert!(json.contains("\"trace_id\":\"0x0000000000001234\""));
        assert!(json.contains("\"exec\":600"));
        assert!(json.contains("\"spans\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Statements with quotes and newlines stay valid JSON.
        let mut t2 = sample_trace(1, false);
        t2.statement = "SELECT 'a\"b'\nFROM t".into();
        assert!(t2.to_json().contains("SELECT 'a\\\"b'\\nFROM t"));
    }

    #[test]
    fn recorder_ring_head_and_slow_retention() {
        let r = FlightRecorder::with_capacity(4);
        for i in 1..=20u64 {
            r.record(sample_trace(i, i == 3));
        }
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.recorded(), 20);
        assert_eq!(r.last().unwrap().trace_id, 20);
        // Ring holds the newest four.
        let recent: Vec<u64> = r.recent().iter().map(|t| t.trace_id).collect();
        assert_eq!(recent, vec![17, 18, 19, 20]);
        // Head retention keeps the first traces past eviction; slow
        // retention keeps the slow one.
        assert!(r.find(1).is_some(), "head-retained");
        assert_eq!(r.slow().len(), 1);
        assert!(r.find(3).is_some(), "slow-retained");
        assert!(r.find(12).is_none(), "evicted mid-ring trace is gone");
        let jsonl = r.to_jsonl();
        assert!(jsonl.lines().count() >= 5);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn thread_local_context_roundtrip() {
        assert!(current_trace_context().is_none());
        let ctx = TraceContext {
            trace_id: 9,
            sampled: true,
        };
        set_trace_context(Some(ctx));
        assert_eq!(current_trace_context(), Some(ctx));
        set_trace_context(None);
        assert!(current_trace_context().is_none());
    }
}
