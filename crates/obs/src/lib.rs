//! Observability primitives for the AIM-II engine.
//!
//! The paper's §4 evaluation argues entirely in *access counts*; the
//! engine's `Stats` block reproduces those counters but says nothing
//! about latency distributions or which operator spent them. This crate
//! supplies the missing pieces, with no external dependencies:
//!
//! * [`Histogram`] — a fixed-size log2-bucket latency histogram with
//!   lock-free `record`, `merge`, and p50/p95/p99/max quantiles.
//! * [`Timer`] — a drop-guard span that records its elapsed time into a
//!   histogram and, when a thread-local capture is armed
//!   ([`begin_capture`]/[`end_capture`]), also emits a [`SpanEvent`]
//!   for slow-query span trees.
//! * [`Metrics`] — a shared name → histogram/gauge registry.
//! * [`MetricsSnapshot`] — a point-in-time view serializable to JSON
//!   and Prometheus-style exposition text.

pub mod capture;
pub mod hist;
pub mod metrics;
pub mod snapshot;

pub use capture::{begin_capture, end_capture, render_spans, SpanEvent};
pub use hist::{HistSnapshot, Histogram, BUCKETS};
pub use metrics::{Gauge, GaugeGuard, Metrics, Timer};
pub use snapshot::MetricsSnapshot;

/// Start a [`Timer`] span over a [`Metrics`] registry:
/// `span!(metrics, "wal.fsync")`.
#[macro_export]
macro_rules! span {
    ($metrics:expr, $name:literal) => {
        $metrics.span($name)
    };
}
