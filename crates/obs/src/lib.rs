//! Observability primitives for the AIM-II engine.
//!
//! The paper's §4 evaluation argues entirely in *access counts*; the
//! engine's `Stats` block reproduces those counters but says nothing
//! about latency distributions or which operator spent them. This crate
//! supplies the missing pieces, with no external dependencies:
//!
//! * [`Histogram`] — a fixed-size log2-bucket latency histogram with
//!   lock-free `record`, `merge`, and p50/p95/p99/max quantiles.
//! * [`Timer`] — a drop-guard span that records its elapsed time into a
//!   histogram and, when a thread-local capture is armed
//!   ([`begin_capture`]/[`end_capture`]), also emits a [`SpanEvent`]
//!   for slow-query span trees.
//! * [`Metrics`] — a shared name → histogram/gauge registry.
//! * [`MetricsSnapshot`] — a point-in-time view serializable to JSON
//!   and Prometheus-style exposition text.
//! * [`TraceContext`] / [`Trace`] / [`FlightRecorder`] — request-scoped
//!   tracing: wire-propagated trace ids, span trees with per-stage
//!   self-time attribution, and a bounded ring of completed traces.
//! * [`LabeledCounterFamily`] — counters keyed by one label with
//!   bounded cardinality (overflow bucket past the cap).

pub mod capture;
pub mod hist;
pub mod metrics;
pub mod snapshot;
pub mod trace;

pub use capture::{
    absorb_events, begin_capture, begin_capture_at, capture_armed, capture_origin, capture_span,
    end_capture, note_event, render_spans, CaptureSpan, SpanEvent,
};
pub use hist::{HistSnapshot, Histogram, BUCKETS};
pub use metrics::{Gauge, GaugeGuard, LabeledCounterFamily, Metrics, Timer, OVERFLOW_LABEL};
pub use snapshot::{LabeledCounter, MetricsSnapshot};
pub use trace::{
    current_trace_context, mint_trace_id, set_trace_context, stage_of, FlightRecorder, Trace,
    TraceContext, DEFAULT_FLIGHT_CAPACITY,
};

/// Start a [`Timer`] span over a [`Metrics`] registry:
/// `span!(metrics, "wal.fsync")`.
#[macro_export]
macro_rules! span {
    ($metrics:expr, $name:literal) => {
        $metrics.span($name)
    };
}
