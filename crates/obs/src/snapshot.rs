//! Point-in-time metrics exposition: JSON and Prometheus-style text.

use crate::hist::HistSnapshot;
use std::fmt;

/// Everything the engine knows about itself at one instant: monotonic
/// counters, instantaneous gauges, and latency histograms. The engine
/// assembles one of these (`Database::metrics()`); this type only
/// renders it.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistSnapshot)>,
}

/// `buffer.page_read` → `buffer_page_read` (Prometheus label charset).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.6}")
    }
}

impl MetricsSnapshot {
    /// Hand-rolled JSON object (the environment has no serde); names
    /// are engine-controlled identifiers, so no string escaping is
    /// needed beyond what the fixed grammar provides.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            s.push_str(&format!("{sep}\n    \"{k}\": {v}"));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            s.push_str(&format!("{sep}\n    \"{k}\": {}", fmt_f64(*v)));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            s.push_str(&format!(
                "{sep}\n    \"{k}\": {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Prometheus-style exposition text: counters and gauges as-is,
    /// histograms as summaries with quantile labels.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.counters {
            let n = prom_name(k);
            s.push_str(&format!("# TYPE aim2_{n} counter\naim2_{n} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = prom_name(k);
            s.push_str(&format!(
                "# TYPE aim2_{n} gauge\naim2_{n} {}\n",
                fmt_f64(*v)
            ));
        }
        for (k, h) in &self.histograms {
            let n = format!("{}_ns", prom_name(k));
            s.push_str(&format!("# TYPE aim2_{n} summary\n"));
            for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                s.push_str(&format!("aim2_{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            s.push_str(&format!("aim2_{n}_sum {}\n", h.sum));
            s.push_str(&format!("aim2_{n}_count {}\n", h.count));
        }
        s
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Human-oriented table: counters, then gauges, then histogram
    /// quantiles in microseconds.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = |ns: u64| ns as f64 / 1e3;
        for (k, v) in &self.counters {
            if *v != 0 {
                writeln!(f, "{k:<34} {v}")?;
            }
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k:<34} {}", fmt_f64(*v))?;
        }
        for (k, h) in &self.histograms {
            if h.count == 0 {
                continue;
            }
            writeln!(
                f,
                "{k:<34} n={} p50={:.1}µs p95={:.1}µs p99={:.1}µs max={:.1}µs",
                h.count,
                us(h.p50()),
                us(h.p95()),
                us(h.p99()),
                us(h.max)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn sample() -> MetricsSnapshot {
        let h = Histogram::new();
        h.record(1_000);
        h.record(2_000);
        MetricsSnapshot {
            counters: vec![("buffer.hits".into(), 7)],
            gauges: vec![("buffer.hit_rate".into(), 0.875)],
            histograms: vec![("wal.fsync".into(), h.snapshot())],
        }
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.contains("\"buffer.hits\": 7"));
        assert!(j.contains("\"buffer.hit_rate\": 0.875000"));
        assert!(j.contains("\"wal.fsync\": {\"count\": 2"));
        // Balanced braces — cheap well-formedness check.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }

    #[test]
    fn prometheus_shape() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE aim2_buffer_hits counter"));
        assert!(p.contains("aim2_buffer_hits 7"));
        assert!(p.contains("# TYPE aim2_wal_fsync_ns summary"));
        assert!(p.contains("aim2_wal_fsync_ns{quantile=\"0.99\"}"));
        assert!(p.contains("aim2_wal_fsync_ns_count 2"));
    }

    #[test]
    fn display_suppresses_zero_counters() {
        let mut s = sample();
        s.counters.push(("buffer.misses".into(), 0));
        let text = s.to_string();
        assert!(text.contains("buffer.hits"));
        assert!(!text.contains("buffer.misses"));
    }
}
