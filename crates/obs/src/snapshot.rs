//! Point-in-time metrics exposition: JSON and Prometheus-style text.

use crate::hist::HistSnapshot;
use std::fmt;

/// One series of a labeled counter family: `family{label_key="label_value"} value`.
#[derive(Debug, Clone)]
pub struct LabeledCounter {
    pub family: String,
    pub label_key: String,
    pub label_value: String,
    pub value: u64,
}

/// Everything the engine knows about itself at one instant: monotonic
/// counters, instantaneous gauges, latency histograms, and labeled
/// counter series. The engine assembles one of these
/// (`Database::metrics()`); this type only renders it.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistSnapshot)>,
    pub labeled: Vec<LabeledCounter>,
}

/// `buffer.page_read` → `buffer_page_read` (Prometheus label charset).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline must be backslash-escaped.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A metric family being assembled for exposition: its kind, HELP text,
/// and sample lines, grouped so `# HELP`/`# TYPE` are emitted exactly
/// once per family with all its samples contiguous (the text format
/// requires one group per family even after registry merges).
struct Family {
    kind: &'static str,
    help: String,
    samples: Vec<String>,
}

#[derive(Default)]
struct FamilySet {
    order: Vec<String>,
    by_name: std::collections::BTreeMap<String, usize>,
}

impl FamilySet {
    fn touch<'a>(
        &mut self,
        fams: &'a mut Vec<Family>,
        name: &str,
        kind: &'static str,
        help: &str,
    ) -> &'a mut Family {
        let idx = *self.by_name.entry(name.to_string()).or_insert_with(|| {
            self.order.push(name.to_string());
            fams.push(Family {
                kind,
                help: help.to_string(),
                samples: Vec::new(),
            });
            fams.len() - 1
        });
        &mut fams[idx]
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.6}")
    }
}

impl MetricsSnapshot {
    /// Hand-rolled JSON object (the environment has no serde); names
    /// are engine-controlled identifiers, so no string escaping is
    /// needed beyond what the fixed grammar provides.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            s.push_str(&format!("{sep}\n    \"{k}\": {v}"));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            s.push_str(&format!("{sep}\n    \"{k}\": {}", fmt_f64(*v)));
        }
        s.push_str("\n  },\n  \"labeled\": {");
        for (i, lc) in self.labeled.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            s.push_str(&format!(
                "{sep}\n    \"{}{{{}={}}}\": {}",
                lc.family, lc.label_key, lc.label_value, lc.value
            ));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            s.push_str(&format!(
                "{sep}\n    \"{k}\": {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Prometheus-style exposition text: counters and gauges as-is,
    /// histograms as summaries with quantile labels, labeled counter
    /// series under their family. Families are grouped with `# HELP`
    /// and `# TYPE` emitted exactly once each, duplicate counter
    /// samples (a merged registry can present the same counter twice)
    /// are summed, and label values are escaped.
    pub fn to_prometheus(&self) -> String {
        let mut fams: Vec<Family> = Vec::new();
        let mut set = FamilySet::default();

        // Bare counters: merge duplicates by exposition name (two bare
        // samples of one name would be an invalid scrape).
        let mut counter_totals: Vec<(String, String, u64)> = Vec::new();
        for (k, v) in &self.counters {
            let n = format!("aim2_{}", prom_name(k));
            match counter_totals.iter_mut().find(|(name, _, _)| *name == n) {
                Some((_, _, total)) => *total += v,
                None => counter_totals.push((n, k.clone(), *v)),
            }
        }
        for (n, help, v) in &counter_totals {
            let fam = set.touch(&mut fams, n, "counter", help);
            fam.samples.push(format!("{n} {v}"));
        }

        // Labeled counter series join their family's group (which may
        // already hold a bare sample of the same name).
        for lc in &self.labeled {
            let n = format!("aim2_{}", prom_name(&lc.family));
            let fam = set.touch(&mut fams, &n, "counter", &lc.family);
            fam.samples.push(format!(
                "{n}{{{}=\"{}\"}} {}",
                prom_name(&lc.label_key),
                escape_label_value(&lc.label_value),
                lc.value
            ));
        }

        // Gauges: duplicates keep the last value (a gauge is a level,
        // and the later registry wins after a merge).
        for (k, v) in &self.gauges {
            let n = format!("aim2_{}", prom_name(k));
            let fam = set.touch(&mut fams, &n, "gauge", k);
            let line = format!("{n} {}", fmt_f64(*v));
            fam.samples.clear();
            fam.samples.push(line);
        }

        // Histogram summaries: duplicates keep the first snapshot.
        for (k, h) in &self.histograms {
            let n = format!("aim2_{}_ns", prom_name(k));
            let fam = set.touch(&mut fams, &n, "summary", k);
            if !fam.samples.is_empty() {
                continue;
            }
            for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                fam.samples.push(format!("{n}{{quantile=\"{q}\"}} {v}"));
            }
            fam.samples.push(format!("{n}_sum {}", h.sum));
            fam.samples.push(format!("{n}_count {}", h.count));
        }

        let mut s = String::new();
        for (name, fam) in set.order.iter().zip(&fams) {
            s.push_str(&format!("# HELP {name} {}\n", fam.help));
            s.push_str(&format!("# TYPE {name} {}\n", fam.kind));
            for line in &fam.samples {
                s.push_str(line);
                s.push('\n');
            }
        }
        s
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Human-oriented table: counters, then gauges, then histogram
    /// quantiles in microseconds.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = |ns: u64| ns as f64 / 1e3;
        for (k, v) in &self.counters {
            if *v != 0 {
                writeln!(f, "{k:<34} {v}")?;
            }
        }
        for lc in &self.labeled {
            let key = format!("{}{{{}={}}}", lc.family, lc.label_key, lc.label_value);
            writeln!(f, "{key:<34} {}", lc.value)?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k:<34} {}", fmt_f64(*v))?;
        }
        for (k, h) in &self.histograms {
            if h.count == 0 {
                continue;
            }
            writeln!(
                f,
                "{k:<34} n={} p50={:.1}µs p95={:.1}µs p99={:.1}µs max={:.1}µs",
                h.count,
                us(h.p50()),
                us(h.p95()),
                us(h.p99()),
                us(h.max)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn sample() -> MetricsSnapshot {
        let h = Histogram::new();
        h.record(1_000);
        h.record(2_000);
        MetricsSnapshot {
            counters: vec![("buffer.hits".into(), 7)],
            gauges: vec![("buffer.hit_rate".into(), 0.875)],
            histograms: vec![("wal.fsync".into(), h.snapshot())],
            labeled: vec![],
        }
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.contains("\"buffer.hits\": 7"));
        assert!(j.contains("\"buffer.hit_rate\": 0.875000"));
        assert!(j.contains("\"wal.fsync\": {\"count\": 2"));
        // Balanced braces — cheap well-formedness check.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }

    #[test]
    fn prometheus_shape() {
        let p = sample().to_prometheus();
        assert!(p.contains("# HELP aim2_buffer_hits buffer.hits"));
        assert!(p.contains("# TYPE aim2_buffer_hits counter"));
        assert!(p.contains("aim2_buffer_hits 7"));
        assert!(p.contains("# TYPE aim2_wal_fsync_ns summary"));
        assert!(p.contains("aim2_wal_fsync_ns{quantile=\"0.99\"}"));
        assert!(p.contains("aim2_wal_fsync_ns_count 2"));
    }

    #[test]
    fn prometheus_scrape_shape_after_registry_merge() {
        // A merged registry can present the same counter twice and mix
        // bare and labeled series of one family; the exposition must
        // still be one group per family with HELP/TYPE exactly once.
        let mut s = sample();
        s.counters.push(("buffer.hits".into(), 3)); // duplicate → summed
        s.labeled = vec![
            LabeledCounter {
                family: "net.queries".into(),
                label_key: "conn".into(),
                label_value: "1".into(),
                value: 4,
            },
            LabeledCounter {
                family: "net.queries".into(),
                label_key: "conn".into(),
                label_value: "evil\"conn\\\n".into(),
                value: 2,
            },
        ];
        // A bare total for the same family as the labeled series.
        s.counters.push(("net.queries".into(), 6));
        let p = s.to_prometheus();

        // TYPE/HELP exactly once per family, duplicates summed.
        assert_eq!(p.matches("# TYPE aim2_buffer_hits counter").count(), 1);
        assert_eq!(p.matches("# HELP aim2_buffer_hits ").count(), 1);
        assert!(p.contains("aim2_buffer_hits 10"));
        assert_eq!(p.matches("# TYPE aim2_net_queries counter").count(), 1);

        // Label values escaped per the exposition grammar.
        assert!(p.contains("aim2_net_queries{conn=\"1\"} 4"));
        assert!(p.contains("aim2_net_queries{conn=\"evil\\\"conn\\\\\\n\"} 2"));

        // All samples of a family are contiguous: after a family's TYPE
        // line, no second comment block interrupts until its samples
        // end. Concretely: every line either starts a new family (`#`)
        // or belongs to the family most recently announced.
        let mut current = String::new();
        for line in p.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                current = rest.split(' ').next().unwrap().to_string();
            } else if !line.starts_with('#') {
                let metric = line
                    .split(['{', ' '])
                    .next()
                    .unwrap()
                    .to_string();
                let base = metric
                    .strip_suffix("_sum")
                    .or_else(|| metric.strip_suffix("_count"))
                    .unwrap_or(&metric);
                assert_eq!(base, current, "sample outside its family group: {line}");
            }
        }
    }

    #[test]
    fn display_suppresses_zero_counters() {
        let mut s = sample();
        s.counters.push(("buffer.misses".into(), 0));
        let text = s.to_string();
        assert!(text.contains("buffer.hits"));
        assert!(!text.contains("buffer.misses"));
    }
}
