//! Shared metrics registry: named histograms, gauges, and span timers.

use crate::capture;
use crate::hist::{HistSnapshot, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Default)]
struct Registry {
    hists: Mutex<BTreeMap<String, Histogram>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
}

/// A process-shareable registry of named instruments. Cloning shares
/// the underlying maps; `histogram`/`gauge` get-or-create, so callers
/// can cache the returned handles and skip the map lock on hot paths.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Registry>,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared histogram named `name` (created empty on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.hists.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Shared gauge named `name` (created at 0 on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Start a span: records elapsed nanoseconds into `histogram(name)`
    /// on drop, and into the thread's capture if one is armed.
    pub fn span(&self, name: &'static str) -> Timer {
        Timer::start(self.histogram(name), name)
    }

    /// Snapshot every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistSnapshot)> {
        self.inner
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Current gauge values, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Reset every histogram to empty (gauges keep their level — they
    /// track live state such as queue depth, not accumulation).
    pub fn reset_histograms(&self) {
        for h in self.inner.hists.lock().unwrap().values() {
            h.reset();
        }
    }
}

/// Label value the capped series spill into once a
/// [`LabeledCounterFamily`] reaches its cardinality bound.
pub const OVERFLOW_LABEL: &str = "overflow";

/// A counter family keyed by one label (e.g. `net.queries` by
/// connection id) with **bounded cardinality**: once `max_series`
/// distinct label values exist, further values accumulate into a single
/// [`OVERFLOW_LABEL`] series instead of growing the map — a hostile or
/// churny client population cannot balloon the scrape.
#[derive(Clone)]
pub struct LabeledCounterFamily {
    inner: Arc<LabeledInner>,
}

struct LabeledInner {
    family: String,
    label_key: String,
    max_series: usize,
    series: Mutex<BTreeMap<String, u64>>,
}

impl LabeledCounterFamily {
    pub fn new(family: &str, label_key: &str, max_series: usize) -> Self {
        LabeledCounterFamily {
            inner: Arc::new(LabeledInner {
                family: family.to_string(),
                label_key: label_key.to_string(),
                max_series: max_series.max(1),
                series: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Family name, e.g. `net.queries`.
    pub fn family(&self) -> &str {
        &self.inner.family
    }

    /// Label key, e.g. `conn`.
    pub fn label_key(&self) -> &str {
        &self.inner.label_key
    }

    /// Add `n` to the series for `label_value`, spilling into the
    /// overflow bucket at the cardinality bound.
    pub fn add(&self, label_value: &str, n: u64) {
        let mut map = self.inner.series.lock().unwrap();
        if !map.contains_key(label_value) && map.len() >= self.inner.max_series {
            *map.entry(OVERFLOW_LABEL.to_string()).or_default() += n;
            return;
        }
        *map.entry(label_value.to_string()).or_default() += n;
    }

    /// Current (label value, count) pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .series
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// A shared signed level (queue depth, live cursors, …).
#[derive(Clone, Default, Debug)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    pub fn inc(&self) {
        self.v.fetch_add(1, Relaxed);
    }

    pub fn dec(&self) {
        self.v.fetch_sub(1, Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.v.store(v, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Relaxed)
    }

    /// Increment now, decrement when the guard drops.
    pub fn scope(&self) -> GaugeGuard {
        self.inc();
        GaugeGuard { g: self.clone() }
    }
}

/// RAII decrement for [`Gauge::scope`].
pub struct GaugeGuard {
    g: Gauge,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.g.dec();
    }
}

/// A drop-guard span. On drop it records elapsed nanoseconds into its
/// histogram and, if this thread armed a capture when the span began,
/// emits a [`crate::SpanEvent`].
pub struct Timer {
    hist: Histogram,
    name: &'static str,
    start: Instant,
    captured: bool,
}

impl Timer {
    pub fn start(hist: Histogram, name: &'static str) -> Timer {
        Timer {
            hist,
            name,
            start: Instant::now(),
            captured: capture::enter(),
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        self.hist.record(dur_ns);
        if self.captured {
            capture::exit(self.name, self.start, dur_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_handles_share_state() {
        let m = Metrics::new();
        let a = m.histogram("x");
        let b = m.histogram("x");
        a.record(5);
        assert_eq!(b.count(), 1);
        assert_eq!(m.histograms().len(), 1);
    }

    #[test]
    fn span_records_on_drop() {
        let m = Metrics::new();
        {
            let _t = crate::span!(m, "work");
        }
        let hists = m.histograms();
        assert_eq!(hists[0].0, "work");
        assert_eq!(hists[0].1.count, 1);
    }

    #[test]
    fn gauge_scope_balances() {
        let m = Metrics::new();
        let g = m.gauge("depth");
        {
            let _a = g.scope();
            let _b = g.scope();
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
        assert_eq!(m.gauge_values(), vec![("depth".to_string(), 0)]);
    }

    #[test]
    fn labeled_family_caps_cardinality_with_overflow() {
        let fam = LabeledCounterFamily::new("net.queries", "conn", 2);
        fam.add("1", 5);
        fam.add("2", 3);
        fam.add("3", 7); // over the bound — spills
        fam.add("1", 1); // existing series still accumulates
        fam.add("4", 2); // also spills
        assert_eq!(fam.family(), "net.queries");
        assert_eq!(fam.label_key(), "conn");
        let snap = fam.snapshot();
        assert_eq!(
            snap,
            vec![
                ("1".to_string(), 6),
                ("2".to_string(), 3),
                (OVERFLOW_LABEL.to_string(), 9),
            ]
        );
    }

    #[test]
    fn reset_histograms_keeps_gauges() {
        let m = Metrics::new();
        m.histogram("h").record(9);
        m.gauge("g").set(3);
        m.reset_histograms();
        assert_eq!(m.histogram("h").count(), 0);
        assert_eq!(m.gauge("g").get(), 3);
    }
}
