//! Fixed-bucket log2 latency histogram.
//!
//! Values (nanoseconds by convention, but any u64) land in bucket
//! `floor(log2(v))`, so bucket `i` covers `[2^i, 2^(i+1))` and bucket 0
//! additionally holds zero. 64 buckets cover the full u64 range with no
//! allocation and no configuration; recording is a handful of relaxed
//! atomic adds, cheap enough for per-page-I/O call sites.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of buckets: one per power of two over the u64 range.
pub const BUCKETS: usize = 64;

struct Inner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Shared, lock-free histogram handle. Cloning shares the buckets.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Arc<Inner>,
}

/// Bucket index for a value: `floor(log2(v))`, with 0 and 1 both in
/// bucket 0.
pub fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        63 => (1 << 63, u64::MAX),
        _ => (1 << i, (1 << (i + 1)) - 1),
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let i = &self.inner;
        i.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        i.count.fetch_add(1, Relaxed);
        i.sum.fetch_add(v, Relaxed);
        i.min.fetch_min(v, Relaxed);
        i.max.fetch_max(v, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Relaxed)
    }

    /// Fold another histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        self.snapshot_merge(&other.snapshot());
    }

    fn snapshot_merge(&self, s: &HistSnapshot) {
        if s.count == 0 {
            return;
        }
        let i = &self.inner;
        for (b, &n) in s.buckets.iter().enumerate() {
            if n > 0 {
                i.buckets[b].fetch_add(n, Relaxed);
            }
        }
        i.count.fetch_add(s.count, Relaxed);
        i.sum.fetch_add(s.sum, Relaxed);
        i.min.fetch_min(s.min, Relaxed);
        i.max.fetch_max(s.max, Relaxed);
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        let i = &self.inner;
        let count = i.count.load(Relaxed);
        HistSnapshot {
            count,
            sum: i.sum.load(Relaxed),
            min: if count == 0 { 0 } else { i.min.load(Relaxed) },
            max: i.max.load(Relaxed),
            buckets: std::array::from_fn(|b| i.buckets[b].load(Relaxed)),
        }
    }

    /// Reset every bucket and aggregate to the empty state.
    pub fn reset(&self) {
        let i = &self.inner;
        for b in &i.buckets {
            b.store(0, Relaxed);
        }
        i.count.store(0, Relaxed);
        i.sum.store(0, Relaxed);
        i.min.store(u64::MAX, Relaxed);
        i.max.store(0, Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// 0 when `count == 0`.
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`ceil(q·count)` observation, clamped to
    /// the observed `[min, max]` so a coarse bucket can never report a
    /// quantile outside the recorded range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise sum of two snapshots (associative, commutative).
    pub fn merged(&self, other: &HistSnapshot) -> HistSnapshot {
        if self.count == 0 {
            return other.clone();
        }
        if other.count == 0 {
            return self.clone();
        }
        HistSnapshot {
            count: self.count + other.count,
            // Matches the live histogram's atomic adds, which wrap.
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(7), 2);
        assert_eq!(bucket_of(8), 3);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        // Every bucket's bounds round-trip through bucket_of.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
        }
        // Bounds tile the u64 range with no gaps.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo);
        }
    }

    #[test]
    fn record_and_aggregates() {
        let h = Histogram::new();
        for v in [3, 100, 250, 9] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 362);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 250);
        assert_eq!(s.buckets[bucket_of(3)], 1);
        assert_eq!(s.buckets[bucket_of(100)], 1);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max, s.p99()), (0, 0, 0, 0));
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 900]);
        let b = mk(&[12, 12, 7000]);
        let c = mk(&[2]);
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        assert_eq!(a.merged(&b), b.merged(&a));
        let e = HistSnapshot::default();
        assert_eq!(a.merged(&e), a);
        assert_eq!(e.merged(&a), a);
    }

    #[test]
    fn live_merge_matches_snapshot_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [4, 4, 99] {
            a.record(v);
        }
        for v in [1, 1 << 40] {
            b.record(v);
        }
        let want = a.snapshot().merged(&b.snapshot());
        a.merge(&b);
        assert_eq!(a.snapshot(), want);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for v in [1u64, 3, 3, 8, 20, 500, 500, 100_000, 4_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let qs: Vec<u64> = (0..=20).map(|i| s.quantile(i as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be non-decreasing: {qs:?}");
        }
        assert_eq!(s.quantile(1.0), s.max);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
    }

    #[test]
    fn quantile_clamped_to_min_max() {
        let h = Histogram::new();
        // All in one bucket whose upper bound (2047) exceeds max.
        for v in [1030u64, 1040, 1050] {
            h.record(v);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!(v >= s.min && v <= s.max, "q={q} gave {v}");
        }
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
        h.record(7);
        assert_eq!(h.snapshot().min, 7);
    }
}
