//! Property tests for the log2 histogram (vendored proptest shim).

use aim2_obs::hist::bucket_of;
use aim2_obs::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Every quantile of a recorded distribution lies inside the
    // observed [min, max] — the log2 buckets are coarse, but the
    // report must never invent values outside the recorded range.
    #[test]
    fn quantiles_within_min_max(seed in 0u64..1_000_000) {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let n = (next() % 200 + 1) as usize;
        let h = Histogram::new();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for _ in 0..n {
            // Spread values across many orders of magnitude.
            let v = next() >> (next() % 56);
            h.record(v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, n as u64);
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
        for i in 0..=100u32 {
            let q = s.quantile(f64::from(i) / 100.0);
            prop_assert!(q >= lo && q <= hi, "q{} = {} outside [{}, {}]", i, q, lo, hi);
        }
    }

    // Merging must agree with recording everything into one histogram.
    #[test]
    fn merge_equals_union(seed in 0u64..1_000_000) {
        let mut x = seed.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(9);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        for i in 0..((seed % 64) + 2) {
            let v = next() >> (next() % 48);
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
            union.record(v);
        }
        prop_assert_eq!(a.snapshot().merged(&b.snapshot()), union.snapshot());
    }

    // bucket_of is monotone non-decreasing in its argument.
    #[test]
    fn bucket_of_monotone(v in 0u64..u64::MAX) {
        prop_assert!(bucket_of(v) <= bucket_of(v.saturating_add(1)));
        prop_assert!(bucket_of(v / 2) <= bucket_of(v));
    }
}
