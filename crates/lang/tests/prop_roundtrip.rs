//! Property test: `parse(print(stmt)) == stmt` over randomly generated
//! statements — the printer and parser are exact inverses on the whole
//! AST space the generator covers (queries with nested subqueries,
//! quantifiers, subscripts, CONTAINS, ASOF; DDL; DML).

use aim2_lang::ast::*;
use aim2_lang::parser::parse_stmt;
use aim2_lang::printer::print_stmt;
use aim2_model::Path;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Uppercase-ish identifiers, avoiding keywords by prefixing.
    "[A-Z0-9]{0,6}".prop_map(|s| format!("Z{s}")) // no keyword starts with Z
}

fn var_name() -> impl Strategy<Value = String> {
    "[a-w]".prop_map(|s| s.to_string())
}

fn lit() -> impl Strategy<Value = Lit> {
    prop_oneof![
        any::<i32>().prop_map(|v| Lit::Int(v as i64)),
        (-1000i32..1000).prop_map(|v| Lit::Float(v as f64 / 8.0)),
        "[a-zA-Z0-9 /.']{0,12}".prop_map(Lit::Str),
        any::<bool>().prop_map(Lit::Bool),
    ]
}

fn path() -> impl Strategy<Value = Path> {
    prop::collection::vec(ident(), 1..3).prop_map(Path::new)
}

fn source() -> impl Strategy<Value = Source> {
    prop_oneof![
        ident().prop_map(Source::Table),
        (var_name(), path()).prop_map(|(var, path)| Source::PathOf { var, path }),
    ]
}

fn binding() -> impl Strategy<Value = Binding> {
    (
        source(),
        var_name(),
        prop::option::of(Just("1984-01-15".to_string())),
    )
        .prop_map(|(source, var, asof)| {
            // The shorthand form (var == table name) prints without IN;
            // keep var distinct to stay canonical... unless we make it
            // equal deliberately, which the printer also handles.
            Binding { var, source, asof }
        })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn atom_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (var_name(), path()).prop_map(|(var, path)| Expr::PathRef { var, path }),
        lit().prop_map(Expr::Lit),
        (var_name(), path(), 1usize..5, prop::option::of(path())).prop_map(
            |(var, path, index, rest)| Expr::Subscript {
                var,
                path,
                index,
                rest: rest.unwrap_or_else(Path::root),
            }
        ),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (cmp_op(), atom_expr(), atom_expr()).prop_map(|(op, lhs, rhs)| Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }),
        (atom_expr(), "[a-z*?]{1,8}").prop_map(|(e, pattern)| Expr::Contains {
            expr: Box::new(e),
            pattern,
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (binding(), prop::option::of(inner.clone())).prop_map(|(b, p)| Expr::Exists {
                binding: Box::new(b),
                pred: p.map(Box::new),
            }),
            (binding(), inner).prop_map(|(b, p)| Expr::Forall {
                binding: Box::new(b),
                pred: Box::new(p),
            }),
        ]
    })
}

fn select_item(q: BoxedStrategy<Query>) -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        atom_expr().prop_map(SelectItem::Expr),
        (ident(), atom_expr()).prop_map(|(name, e)| SelectItem::Named {
            name,
            value: NamedValue::Expr(e),
        }),
        (ident(), q).prop_map(|(name, sub)| SelectItem::Named {
            name,
            value: NamedValue::Subquery(Box::new(sub)),
        }),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    let flat = (
        prop::collection::vec(atom_expr().prop_map(SelectItem::Expr), 1..4),
        prop::collection::vec(binding(), 1..3),
        prop::option::of(expr()),
    )
        .prop_map(|(select, from, where_)| Query {
            select,
            from,
            where_,
        })
        .boxed();
    // One nesting level of named subqueries.
    (
        prop::collection::vec(select_item(flat.clone()), 1..4),
        prop::collection::vec(binding(), 1..3),
        prop::option::of(expr()),
    )
        .prop_map(|(select, from, where_)| Query {
            select,
            from,
            where_,
        })
}

fn table_lit() -> impl Strategy<Value = Lit> {
    let tuple = || prop::collection::vec(lit(), 0..3);
    prop_oneof![
        prop::collection::vec(tuple(), 0..3).prop_map(Lit::Relation),
        prop::collection::vec(tuple(), 0..3).prop_map(Lit::List),
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        query().prop_map(Stmt::Query),
        ident().prop_map(Stmt::DropTable),
        (
            ident(),
            prop::collection::vec(prop_oneof![lit(), table_lit()], 1..4)
        )
            .prop_map(|(t, values)| Stmt::Insert(Insert {
                target: Source::Table(t),
                from: vec![],
                where_: None,
                values,
            })),
        (
            prop::collection::vec(binding(), 1..3),
            prop::collection::vec((var_name(), path(), lit()), 1..3),
            prop::option::of(expr())
        )
            .prop_map(|(from, set, where_)| Stmt::Update(Update { from, set, where_ })),
        (
            var_name(),
            prop::collection::vec(binding(), 1..3),
            prop::option::of(expr())
        )
            .prop_map(|(var, from, where_)| Stmt::Delete(Delete { var, from, where_ })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(s in stmt()) {
        let printed = print_stmt(&s);
        let reparsed = parse_stmt(&printed)
            .map_err(|e| TestCaseError::fail(format!("{}\nprinted: {printed}", e.render(&printed))))?;
        prop_assert_eq!(reparsed, s, "printed: {}", printed);
    }
}
