//! Robustness: the lexer and parser must never panic — arbitrary input
//! yields `Ok` or a positioned `ParseError`, and error offsets always
//! lie within the source.

use aim2_lang::lexer::lex;
use aim2_lang::parser::parse_stmt;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(src in "\\PC{0,120}") {
        match lex(&src) {
            Ok(toks) => prop_assert!(!toks.is_empty(), "EOF token expected"),
            Err(e) => prop_assert!(e.offset <= src.len()),
        }
    }

    #[test]
    fn parser_never_panics_on_noise(src in "\\PC{0,120}") {
        if let Err(e) = parse_stmt(&src) {
            prop_assert!(e.offset <= src.len());
            // Rendering the error against its own source is also safe.
            let _ = e.render(&src);
        }
    }

    #[test]
    fn parser_never_panics_on_sqlish_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()), Just("FROM".to_string()),
                Just("WHERE".to_string()), Just("IN".to_string()),
                Just("EXISTS".to_string()), Just("ALL".to_string()),
                Just("INSERT".to_string()), Just("VALUES".to_string()),
                Just("UPDATE".to_string()), Just("SET".to_string()),
                Just("DELETE".to_string()), Just("CREATE".to_string()),
                Just("TABLE".to_string()), Just("(".to_string()),
                Just(")".to_string()), Just("{".to_string()),
                Just("}".to_string()), Just("<".to_string()),
                Just(">".to_string()), Just(",".to_string()),
                Just(".".to_string()), Just(":".to_string()),
                Just("=".to_string()), Just("*".to_string()),
                Just("x".to_string()), Just("T".to_string()),
                Just("'s'".to_string()), Just("42".to_string()),
            ],
            0..25
        )
    ) {
        let src = words.join(" ");
        if let Err(e) = parse_stmt(&src) {
            prop_assert!(e.offset <= src.len());
        }
    }
}
