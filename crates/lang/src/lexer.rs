//! The lexer.
//!
//! Identifiers may contain `-` (the paper's table names are
//! `DEPARTMENTS-1NF`, `EMPLOYEES-1NF`, ...); the language has no
//! arithmetic, so there is no ambiguity with subtraction. Keywords are
//! case-insensitive; identifiers are case-sensitive as written. String
//! literals use single quotes with `''` as the escape for a quote.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    /// Keyword, normalized to uppercase.
    Kw(&'static str),
    Int(i64),
    Float(f64),
    Str(String),
    /// `.` `,` `(` `)` `[` `]` `{` `}` `:` `;`
    Punct(char),
    /// `=` `<>` `<` `<=` `>` `>=`
    Op(&'static str),
    Star,
    Eof,
}

/// Token plus its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub offset: usize,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "IN", "EXISTS", "ALL", "AND", "OR", "NOT", "CONTAINS", "ASOF",
    "CREATE", "DROP", "TABLE", "LIST", "INDEX", "TEXT", "ON", "USING", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "TRUE", "FALSE", "WITH", "VERSIONS", "DATE", "EXPLAIN",
];

fn keyword(s: &str) -> Option<&'static str> {
    let upper = s.to_ascii_uppercase();
    KEYWORDS.iter().find(|&&k| k == upper).copied()
}

/// Tokenize `src` fully.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Dispatch on the real (possibly multi-byte) character — NOT the
        // first byte cast to char, which would mis-enter the identifier
        // arm for bytes like 0xC2 and loop without consuming anything.
        let c = src[i..].chars().next().expect("i is a char boundary");
        if c.is_whitespace() {
            i += c.len_utf8();
            continue;
        }
        // Comments: `--` to end of line.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        match c {
            '\'' => {
                // String literal with '' escape.
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new(start, "unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Advance one UTF-8 char.
                            let ch = src[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_float = false;
                // Fraction — only if followed by a digit ('.' is also the
                // path separator).
                if bytes.get(j) == Some(&b'.') && bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                // Numbers with embedded separators like 320,000 are NOT
                // supported (commas separate list items); the fixtures
                // write 320000.
                let text = &src[i..j];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        ParseError::new(start, format!("bad float literal `{text}`"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        ParseError::new(start, format!("bad integer literal `{text}`"))
                    })?)
                };
                i = j;
                out.push(Spanned { tok, offset: start });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = src[j..].chars().next().unwrap();
                    if ch.is_alphanumeric() || ch == '_' {
                        j += ch.len_utf8();
                    } else if ch == '-'
                        && src[j + 1..]
                            .chars()
                            .next()
                            .is_some_and(|n| n.is_alphanumeric())
                    {
                        // Hyphen inside an identifier (DEPARTMENTS-1NF),
                        // but not a trailing `-` or `--` comment.
                        j += 1;
                    } else {
                        break;
                    }
                }
                debug_assert!(j > i, "identifier arm must consume");
                let word = &src[i..j];
                i = j;
                let tok = match keyword(word) {
                    Some(kw) => Tok::Kw(kw),
                    None => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, offset: start });
            }
            '=' => {
                i += 1;
                out.push(Spanned {
                    tok: Tok::Op("="),
                    offset: start,
                });
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    out.push(Spanned {
                        tok: Tok::Op("<>"),
                        offset: start,
                    });
                } else if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    out.push(Spanned {
                        tok: Tok::Op("<="),
                        offset: start,
                    });
                } else {
                    i += 1;
                    out.push(Spanned {
                        tok: Tok::Op("<"),
                        offset: start,
                    });
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    out.push(Spanned {
                        tok: Tok::Op(">="),
                        offset: start,
                    });
                } else {
                    i += 1;
                    out.push(Spanned {
                        tok: Tok::Op(">"),
                        offset: start,
                    });
                }
            }
            '*' => {
                i += 1;
                out.push(Spanned {
                    tok: Tok::Star,
                    offset: start,
                });
            }
            '.' | ',' | '(' | ')' | '[' | ']' | '{' | '}' | ':' | ';' => {
                i += 1;
                out.push(Spanned {
                    tok: Tok::Punct(c),
                    offset: start,
                });
            }
            '-' => {
                // Unary minus for numeric literals.
                if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    let mut is_float = false;
                    if bytes.get(j) == Some(&b'.')
                        && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                    {
                        is_float = true;
                        j += 1;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                    let text = &src[i..j];
                    let tok = if is_float {
                        Tok::Float(text.parse().map_err(|_| {
                            ParseError::new(start, format!("bad float literal `{text}`"))
                        })?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| {
                            ParseError::new(start, format!("bad integer literal `{text}`"))
                        })?)
                    };
                    i = j;
                    out.push(Spanned { tok, offset: start });
                } else {
                    return Err(ParseError::new(start, "unexpected `-`"));
                }
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        offset: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select Select SELECT"),
            vec![
                Tok::Kw("SELECT"),
                Tok::Kw("SELECT"),
                Tok::Kw("SELECT"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn hyphenated_identifiers() {
        assert_eq!(
            toks("DEPARTMENTS-1NF MEMBERS-1NF"),
            vec![
                Tok::Ident("DEPARTMENTS-1NF".into()),
                Tok::Ident("MEMBERS-1NF".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn paths_and_numbers() {
        assert_eq!(
            toks("x.DNO 320000 0.6 -5 -2.5"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct('.'),
                Tok::Ident("DNO".into()),
                Tok::Int(320000),
                Tok::Float(0.6),
                Tok::Int(-5),
                Tok::Float(-2.5),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_special_chars() {
        assert_eq!(
            toks("'PC/AT' 'O''Hara' '*comput*'"),
            vec![
                Tok::Str("PC/AT".into()),
                Tok::Str("O'Hara".into()),
                Tok::Str("*comput*".into()),
                Tok::Eof
            ]
        );
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn operators_and_brackets() {
        assert_eq!(
            toks("= <> < <= > >= { } [ ] ( ) : * ,"),
            vec![
                Tok::Op("="),
                Tok::Op("<>"),
                Tok::Op("<"),
                Tok::Op("<="),
                Tok::Op(">"),
                Tok::Op(">="),
                Tok::Punct('{'),
                Tok::Punct('}'),
                Tok::Punct('['),
                Tok::Punct(']'),
                Tok::Punct('('),
                Tok::Punct(')'),
                Tok::Punct(':'),
                Tok::Star,
                Tok::Punct(','),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("SELECT -- the works\n x"),
            vec![Tok::Kw("SELECT"), Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn bad_chars_rejected_with_offset() {
        let e = lex("SELECT @").unwrap_err();
        assert_eq!(e.offset, 7);
    }

    #[test]
    fn multibyte_nonletters_error_instead_of_looping() {
        // Regression: the MIDDLE DOT begins with byte 0xC2; dispatching
        // on that byte cast to char entered the identifier arm and
        // looped forever emitting empty identifiers.
        for src in [
            "\u{B7}",
            "x \u{B7} y",
            "\u{F7}",
            "\u{20AC}",
            "SELECT \u{B7}",
        ] {
            assert!(lex(src).is_err(), "{src:?} must be a lex error");
        }
        // Real multi-byte letters still lex as identifiers.
        let toks = lex("Gr\u{F6}\u{DF}e \u{E9}tudes \u{5317}\u{4EAC}").unwrap();
        assert_eq!(toks.len(), 4, "3 identifiers + EOF");
        // Multi-byte whitespace (NBSP) is skipped.
        let toks = lex("a\u{A0}b").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn subscript_example_8() {
        // x.AUTHORS[1] = 'Jones A.'
        assert_eq!(
            toks("x.AUTHORS[1] = 'Jones A.'"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct('.'),
                Tok::Ident("AUTHORS".into()),
                Tok::Punct('['),
                Tok::Int(1),
                Tok::Punct(']'),
                Tok::Op("="),
                Tok::Str("Jones A.".into()),
                Tok::Eof
            ]
        );
    }
}
