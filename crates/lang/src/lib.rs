//! # aim2-lang — the NF² query language
//!
//! Section 3 of Dadam et al. (SIGMOD 1986) generalizes SEQUEL/SQL to
//! extended NF² tables: SELECT-FROM-WHERE where
//!
//! * the **SELECT clause** may contain *named subqueries* that build
//!   nested result structure — `PROJECTS = (SELECT ... FROM y IN
//!   x.PROJECTS)` (Figures 2–5);
//! * the **FROM clause** binds tuple variables to stored tables *or to
//!   table-valued attributes of other variables* — `y IN x.PROJECTS`;
//! * the **WHERE clause** supports EXISTS / ALL quantifiers over
//!   subtables (Examples 5–6), cross-level join predicates (Example 7),
//!   1-based list subscripts — `x.AUTHORS[1] = 'Jones A.'` (Example 8),
//!   masked text search — `x.TITLE CONTAINS '*comput*'` (§5), and the
//!   temporal `ASOF` clause on FROM bindings (§5).
//!
//! DDL declares nested structure positionally with the paper's bracket
//! convention: `{ ... }` for unordered subtables (relations), `< ... >`
//! for ordered subtables (lists). DML covers whole complex objects and
//! arbitrary parts of them, per the paper's §5 summary.
//!
//! The crate provides the [`lexer`], the [`ast`], a recursive-descent
//! [`parser`], and a [`printer`] that renders ASTs back to canonical
//! text (parse ∘ print = identity — property-tested).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{Binding, Expr, Query, SelectItem, Source, Stmt};
pub use error::ParseError;
pub use parser::parse_stmt;
