//! Render ASTs back to canonical language text.
//!
//! `parse(print(stmt)) == stmt` — checked by unit tests here and a
//! property test in `tests/prop_lang.rs`. The printer is also used by
//! the facade's EXPLAIN-style diagnostics.

use crate::ast::*;
use std::fmt::Write as _;

/// Print any statement.
pub fn print_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Query(q) => print_query(q),
        Stmt::Explain(q) => format!("EXPLAIN {}", print_query(q)),
        Stmt::CreateTable(ct) => print_create_table(ct),
        Stmt::CreateIndex(ci) => print_create_index(ci),
        Stmt::DropTable(t) => format!("DROP TABLE {t}"),
        Stmt::Insert(i) => print_insert(i),
        Stmt::Update(u) => print_update(u),
        Stmt::Delete(d) => print_delete(d),
    }
}

/// Print a query.
pub fn print_query(q: &Query) -> String {
    let mut s = String::from("SELECT ");
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match item {
            SelectItem::Star => s.push('*'),
            SelectItem::Expr(e) => s.push_str(&print_expr(e)),
            SelectItem::Named { name, value } => match value {
                NamedValue::Expr(e) => {
                    let _ = write!(s, "{name} = {}", print_expr(e));
                }
                NamedValue::Subquery(sub) => {
                    let _ = write!(s, "{name} = ({})", print_query(sub));
                }
            },
        }
    }
    s.push_str(" FROM ");
    for (i, b) in q.from.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&print_binding(b));
    }
    if let Some(w) = &q.where_ {
        let _ = write!(s, " WHERE {}", print_expr(w));
    }
    s
}

fn print_binding(b: &Binding) -> String {
    let mut s = match &b.source {
        Source::Table(t) if *t == b.var => t.clone(),
        Source::Table(t) => format!("{} IN {t}", b.var),
        Source::PathOf { var, path } => format!("{} IN {var}.{path}", b.var),
    };
    if let Some(d) = &b.asof {
        let _ = write!(s, " ASOF '{d}'");
    }
    s
}

/// Print an expression (fully parenthesizing AND/OR/NOT for an
/// unambiguous roundtrip).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::PathRef { var, path } => {
            if path.is_root() {
                var.clone()
            } else {
                format!("{var}.{path}")
            }
        }
        Expr::Subscript {
            var,
            path,
            index,
            rest,
        } => {
            let mut s = if path.is_root() {
                var.clone()
            } else {
                format!("{var}.{path}")
            };
            let _ = write!(s, "[{index}]");
            if !rest.is_root() {
                let _ = write!(s, ".{rest}");
            }
            s
        }
        Expr::Lit(l) => print_lit(l),
        Expr::Cmp { op, lhs, rhs } => {
            format!("{} {} {}", print_expr(lhs), op.symbol(), print_expr(rhs))
        }
        Expr::And(a, b) => format!("({} AND {})", print_expr(a), print_expr(b)),
        Expr::Or(a, b) => format!("({} OR {})", print_expr(a), print_expr(b)),
        Expr::Not(x) => format!("NOT ({})", print_expr(x)),
        // The `:` predicate is deliberately greedy when parsing (the
        // §4.2 conjunctive query needs `y.PNO = 17 AND EXISTS z ...`
        // inside y's scope), so the printer parenthesizes the WHOLE
        // quantifier to delimit its scope inside AND/OR chains.
        Expr::Exists { binding, pred } => match pred {
            Some(p) => format!("(EXISTS {} : {})", print_binding(binding), print_expr(p)),
            None => format!("EXISTS {}", print_binding(binding)),
        },
        Expr::Forall { binding, pred } => {
            format!("(ALL {} : {})", print_binding(binding), print_expr(pred))
        }
        Expr::Contains { expr, pattern } => {
            format!("{} CONTAINS '{}'", print_expr(expr), escape(pattern))
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

fn print_lit(l: &Lit) -> String {
    match l {
        Lit::Int(v) => v.to_string(),
        Lit::Float(v) => {
            // Keep a `.` so the value re-lexes as a float.
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Lit::Str(s) => format!("'{}'", escape(s)),
        Lit::Bool(true) => "TRUE".into(),
        Lit::Bool(false) => "FALSE".into(),
        Lit::Relation(tuples) => print_table_lit(tuples, '{', '}'),
        Lit::List(tuples) => print_table_lit(tuples, '<', '>'),
    }
}

fn print_table_lit(tuples: &[Vec<Lit>], open: char, close: char) -> String {
    let mut s = String::new();
    s.push(open);
    for (i, t) in tuples.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('(');
        for (j, l) in t.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&print_lit(l));
        }
        s.push(')');
    }
    s.push(close);
    s
}

fn print_attr_decls(attrs: &[AttrDecl]) -> String {
    let mut s = String::new();
    for (i, a) in attrs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match a {
            AttrDecl::Atomic { name, ty } => {
                let _ = write!(s, "{name} {ty}");
            }
            AttrDecl::Table {
                name,
                ordered,
                attrs,
            } => {
                let (o, c) = if *ordered { ('<', '>') } else { ('{', '}') };
                let _ = write!(s, "{name} {o} {} {c}", print_attr_decls(attrs));
            }
        }
    }
    s
}

fn print_create_table(ct: &CreateTable) -> String {
    let mut s = format!(
        "CREATE {} {} ( {} )",
        if ct.ordered { "LIST" } else { "TABLE" },
        ct.name,
        print_attr_decls(&ct.attrs)
    );
    if let Some(u) = &ct.using {
        let _ = write!(s, " USING {u}");
    }
    if ct.versioned {
        s.push_str(" WITH VERSIONS");
    }
    s
}

fn print_create_index(ci: &CreateIndex) -> String {
    let mut s = format!(
        "CREATE {}INDEX {} ON {} ({})",
        if ci.text { "TEXT " } else { "" },
        ci.name,
        ci.table,
        ci.path
    );
    if let Some(u) = &ci.using {
        let _ = write!(s, " USING {u}");
    }
    s
}

fn print_insert(i: &Insert) -> String {
    let mut s = String::from("INSERT INTO ");
    match &i.target {
        Source::Table(t) => s.push_str(t),
        Source::PathOf { var, path } => {
            let _ = write!(s, "{var}.{path}");
        }
    }
    if !i.from.is_empty() {
        s.push_str(" FROM ");
        for (k, b) in i.from.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            s.push_str(&print_binding(b));
        }
        if let Some(w) = &i.where_ {
            let _ = write!(s, " WHERE {}", print_expr(w));
        }
    }
    let _ = write!(
        s,
        " VALUES ({})",
        i.values
            .iter()
            .map(print_lit)
            .collect::<Vec<_>>()
            .join(", ")
    );
    s
}

fn print_update(u: &Update) -> String {
    let mut s = String::from("UPDATE ");
    for (k, b) in u.from.iter().enumerate() {
        if k > 0 {
            s.push_str(", ");
        }
        s.push_str(&print_binding(b));
    }
    s.push_str(" SET ");
    for (k, (var, path, lit)) in u.set.iter().enumerate() {
        if k > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{var}.{path} = {}", print_lit(lit));
    }
    if let Some(w) = &u.where_ {
        let _ = write!(s, " WHERE {}", print_expr(w));
    }
    s
}

fn print_delete(d: &Delete) -> String {
    let mut s = format!("DELETE {} FROM ", d.var);
    for (k, b) in d.from.iter().enumerate() {
        if k > 0 {
            s.push_str(", ");
        }
        s.push_str(&print_binding(b));
    }
    if let Some(w) = &d.where_ {
        let _ = write!(s, " WHERE {}", print_expr(w));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_stmt;

    fn roundtrip(src: &str) {
        let ast = parse_stmt(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let printed = print_stmt(&ast);
        let again = parse_stmt(&printed).unwrap_or_else(|e| {
            panic!("reparse failed: {}\nprinted: {printed}", e.render(&printed))
        });
        assert_eq!(ast, again, "printed: {printed}");
    }

    #[test]
    fn roundtrip_paper_examples() {
        for src in [
            "SELECT * FROM DEPARTMENTS",
            "SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS",
            "SELECT x.DNO, x.MGRNO, PROJECTS = (SELECT y.PNO, y.PNAME, MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS) FROM y IN x.PROJECTS), x.BUDGET, EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP) FROM x IN DEPARTMENTS",
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
            "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
            "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
            "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'",
            "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'",
            "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS WHERE x.DNO = 314",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrip_ddl_dml() {
        for src in [
            "CREATE TABLE DEPARTMENTS ( DNO INTEGER, PROJECTS { PNO INTEGER, MEMBERS { EMPNO INTEGER } }, EQUIP { QU INTEGER } ) USING SS1",
            "CREATE LIST QUEUE ( ITEM STRING ) WITH VERSIONS",
            "CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT )",
            "CREATE INDEX i ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION) USING ROOTTID",
            "CREATE TEXT INDEX t ON REPORTS (TITLE)",
            "DROP TABLE X",
            "INSERT INTO DEPARTMENTS VALUES (1, {(2, 'x', {})}, <(3)>)",
            "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314 VALUES (99, 'AIM', {})",
            "UPDATE x IN DEPARTMENTS, y IN x.PROJECTS SET y.PNAME = 'CGA-2' WHERE (x.DNO = 314 AND y.PNO = 17)",
            "DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 23",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn string_escaping_survives() {
        roundtrip("SELECT x.A FROM x IN T WHERE x.NAME = 'O''Hara'");
    }

    #[test]
    fn float_literals_stay_floats() {
        let src = "INSERT INTO T VALUES (0.6, 2.0)";
        let ast = parse_stmt(src).unwrap();
        let printed = print_stmt(&ast);
        assert_eq!(parse_stmt(&printed).unwrap(), ast, "{printed}");
    }
}
