//! Recursive-descent parser for the NF² language.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Tok};
use aim2_model::Path;

/// Parse one statement (a trailing `;` is allowed).
pub fn parse_stmt(src: &str) -> Result<Stmt, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.stmt()?;
    p.eat_punct(';');
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a query (shorthand used by tests and the facade).
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    match parse_stmt(src)? {
        Stmt::Query(q) => Ok(q),
        _ => Err(ParseError::new(0, "expected a SELECT query")),
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(self.offset(), msg))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Kw(k) if *k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Tok::Punct(p) if *p == c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            self.err(format!("expected `{c}`, found {:?}", self.peek()))
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Tok::Op(o) if *o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err(format!("trailing input: {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            // Non-reserved keywords usable as identifiers in name
            // position (attribute called TEXT, DATE, ...).
            Tok::Kw(k @ ("TEXT" | "DATE" | "LIST" | "INDEX" | "VERSIONS" | "ON" | "SET")) => {
                self.bump();
                Ok(k.to_string())
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Tok::Kw("SELECT") => Ok(Stmt::Query(self.query()?)),
            Tok::Kw("EXPLAIN") => {
                self.bump();
                Ok(Stmt::Explain(self.query()?))
            }
            Tok::Kw("CREATE") => self.create(),
            Tok::Kw("DROP") => {
                self.bump();
                self.expect_kw("TABLE")?;
                Ok(Stmt::DropTable(self.ident()?))
            }
            Tok::Kw("INSERT") => self.insert(),
            Tok::Kw("UPDATE") => self.update(),
            Tok::Kw("DELETE") => self.delete(),
            other => self.err(format!("expected a statement, found {other:?}")),
        }
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let mut select = Vec::new();
        loop {
            select.push(self.select_item()?);
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            from.push(self.binding()?);
            if !self.eat_punct(',') {
                break;
            }
        }
        let where_ = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if matches!(self.peek(), Tok::Star) {
            self.bump();
            return Ok(SelectItem::Star);
        }
        // `NAME = (SELECT ...)` or `NAME = expr`?
        if matches!(self.peek(), Tok::Ident(_) | Tok::Kw(_)) && matches!(self.peek2(), Tok::Op("="))
        {
            let name = self.ident()?;
            self.bump(); // `=`
            if self.eat_punct('(') {
                if matches!(self.peek(), Tok::Kw("SELECT")) {
                    let q = self.query()?;
                    self.expect_punct(')')?;
                    return Ok(SelectItem::Named {
                        name,
                        value: NamedValue::Subquery(Box::new(q)),
                    });
                }
                let e = self.expr_atom()?;
                self.expect_punct(')')?;
                return Ok(SelectItem::Named {
                    name,
                    value: NamedValue::Expr(e),
                });
            }
            let e = self.expr_atom()?;
            return Ok(SelectItem::Named {
                name,
                value: NamedValue::Expr(e),
            });
        }
        Ok(SelectItem::Expr(self.expr_atom()?))
    }

    fn binding(&mut self) -> Result<Binding, ParseError> {
        let var = self.ident()?;
        if !matches!(self.peek(), Tok::Kw("IN")) {
            // Shorthand of Example 1: `FROM DEPARTMENTS` — the table name
            // doubles as the tuple variable.
            let asof = if self.eat_kw("ASOF") {
                match self.bump() {
                    Tok::Str(s) => Some(s),
                    other => {
                        return self.err(format!("expected date string after ASOF, got {other:?}"))
                    }
                }
            } else {
                None
            };
            return Ok(Binding {
                var: var.clone(),
                source: Source::Table(var),
                asof,
            });
        }
        self.expect_kw("IN")?;
        let source = self.source()?;
        let asof = if self.eat_kw("ASOF") {
            match self.bump() {
                Tok::Str(s) => Some(s),
                other => {
                    return self.err(format!("expected date string after ASOF, got {other:?}"))
                }
            }
        } else {
            None
        };
        Ok(Binding { var, source, asof })
    }

    fn source(&mut self) -> Result<Source, ParseError> {
        let first = self.ident()?;
        if self.eat_punct('.') {
            let mut segs = vec![self.ident()?];
            while matches!(self.peek(), Tok::Punct('.')) {
                self.bump();
                segs.push(self.ident()?);
            }
            Ok(Source::PathOf {
                var: first,
                path: Path::new(segs),
            })
        } else {
            Ok(Source::Table(first))
        }
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    /// Full predicate grammar: OR < AND < NOT < comparison < atom.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_and()?;
        while self.eat_kw("OR") {
            let rhs = self.expr_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_unary()?;
        while self.eat_kw("AND") {
            let rhs = self.expr_unary()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.expr_unary()?)));
        }
        if matches!(self.peek(), Tok::Kw("EXISTS")) {
            return self.exists();
        }
        if matches!(self.peek(), Tok::Kw("ALL")) {
            return self.forall();
        }
        if self.eat_punct('(') {
            let e = self.expr()?;
            self.expect_punct(')')?;
            return Ok(e);
        }
        self.comparison()
    }

    fn exists(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("EXISTS")?;
        let binding = self.binding()?;
        // Optional predicate after `:` (or juxtaposed EXISTS/ALL chain,
        // as the paper writes it).
        let pred = if self.eat_punct(':') {
            Some(Box::new(self.expr()?))
        } else if matches!(self.peek(), Tok::Kw("EXISTS") | Tok::Kw("ALL")) {
            Some(Box::new(self.expr_unary()?))
        } else {
            None
        };
        Ok(Expr::Exists {
            binding: Box::new(binding),
            pred,
        })
    }

    fn forall(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("ALL")?;
        let binding = self.binding()?;
        let pred = if self.eat_punct(':') {
            self.expr()?
        } else {
            // Juxtaposed form: `ALL z IN y.MEMBERS z.FUNCTION = ...` /
            // nested `ALL ... ALL ...`.
            self.expr_unary()?
        };
        Ok(Expr::Forall {
            binding: Box::new(binding),
            pred: Box::new(pred),
        })
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.expr_atom()?;
        if self.eat_kw("CONTAINS") {
            match self.bump() {
                Tok::Str(pattern) => {
                    return Ok(Expr::Contains {
                        expr: Box::new(lhs),
                        pattern,
                    })
                }
                other => return self.err(format!("expected pattern string, found {other:?}")),
            }
        }
        let op = match self.peek() {
            Tok::Op("=") => CmpOp::Eq,
            Tok::Op("<>") => CmpOp::Ne,
            Tok::Op("<") => CmpOp::Lt,
            Tok::Op("<=") => CmpOp::Le,
            Tok::Op(">") => CmpOp::Gt,
            Tok::Op(">=") => CmpOp::Ge,
            _ => return Ok(lhs), // bare expression (used by SELECT items)
        };
        self.bump();
        let rhs = self.expr_atom()?;
        Ok(Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// Atom: literal | var[.path][[n][.path]]
    fn expr_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Lit(Lit::Int(v)))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Lit(Lit::Float(v)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Lit::Str(s)))
            }
            Tok::Kw("TRUE") => {
                self.bump();
                Ok(Expr::Lit(Lit::Bool(true)))
            }
            Tok::Kw("FALSE") => {
                self.bump();
                Ok(Expr::Lit(Lit::Bool(false)))
            }
            Tok::Ident(_) | Tok::Kw(_) => {
                let var = self.ident()?;
                let mut segs: Vec<String> = Vec::new();
                loop {
                    if self.eat_punct('.') {
                        segs.push(self.ident()?);
                    } else if matches!(self.peek(), Tok::Punct('[')) {
                        self.bump();
                        let idx = match self.bump() {
                            Tok::Int(i) if i >= 1 => i as usize,
                            other => {
                                return self
                                    .err(format!("expected 1-based subscript, found {other:?}"))
                            }
                        };
                        self.expect_punct(']')?;
                        // Optional trailing path after the subscript.
                        let mut rest = Vec::new();
                        while self.eat_punct('.') {
                            rest.push(self.ident()?);
                        }
                        return Ok(Expr::Subscript {
                            var,
                            path: Path::new(segs),
                            index: idx,
                            rest: Path::new(rest),
                        });
                    } else {
                        break;
                    }
                }
                Ok(Expr::PathRef {
                    var,
                    path: Path::new(segs),
                })
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    // -----------------------------------------------------------------
    // DDL
    // -----------------------------------------------------------------

    fn create(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            return self.create_table(false);
        }
        if self.eat_kw("LIST") {
            return self.create_table(true);
        }
        let text = self.eat_kw("TEXT");
        if self.eat_kw("INDEX") {
            return self.create_index(text);
        }
        self.err("expected TABLE, LIST, or [TEXT] INDEX after CREATE")
    }

    fn create_table(&mut self, ordered: bool) -> Result<Stmt, ParseError> {
        let name = self.ident()?;
        self.expect_punct('(')?;
        let attrs = self.attr_decls(')')?;
        let using = if self.eat_kw("USING") {
            Some(self.ident()?)
        } else {
            None
        };
        let versioned = if self.eat_kw("WITH") {
            self.expect_kw("VERSIONS")?;
            true
        } else {
            false
        };
        Ok(Stmt::CreateTable(CreateTable {
            name,
            ordered,
            attrs,
            using,
            versioned,
        }))
    }

    /// Parse attribute declarations up to (and consuming) the closing
    /// delimiter `close` (one of `)`, `}`, or the `>` operator).
    fn attr_decls(&mut self, close: char) -> Result<Vec<AttrDecl>, ParseError> {
        let mut attrs = Vec::new();
        loop {
            let name = self.ident()?;
            if self.eat_punct('{') {
                let inner = self.attr_decls('}')?;
                attrs.push(AttrDecl::Table {
                    name,
                    ordered: false,
                    attrs: inner,
                });
            } else if self.eat_op("<") {
                let inner = self.attr_decls('>')?;
                attrs.push(AttrDecl::Table {
                    name,
                    ordered: true,
                    attrs: inner,
                });
            } else {
                let ty = self.ident()?;
                attrs.push(AttrDecl::Atomic { name, ty });
            }
            if self.eat_punct(',') {
                continue;
            }
            // Closing delimiter.
            let ok = match close {
                ')' => self.eat_punct(')'),
                '}' => self.eat_punct('}'),
                '>' => self.eat_op(">"),
                _ => false,
            };
            if ok {
                return Ok(attrs);
            }
            return self.err(format!(
                "expected `,` or `{close}`, found {:?}",
                self.peek()
            ));
        }
    }

    fn create_index(&mut self, text: bool) -> Result<Stmt, ParseError> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_punct('(')?;
        let mut segs = vec![self.ident()?];
        while self.eat_punct('.') {
            segs.push(self.ident()?);
        }
        self.expect_punct(')')?;
        let using = if self.eat_kw("USING") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Stmt::CreateIndex(CreateIndex {
            name,
            table,
            path: Path::new(segs),
            text,
            using,
        }))
    }

    // -----------------------------------------------------------------
    // DML
    // -----------------------------------------------------------------

    fn insert(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let target = self.source()?;
        let (from, where_) = if self.eat_kw("FROM") {
            let mut from = Vec::new();
            loop {
                from.push(self.binding()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            let where_ = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            (from, where_)
        } else {
            (Vec::new(), None)
        };
        self.expect_kw("VALUES")?;
        self.expect_punct('(')?;
        let values = self.lit_tuple_body()?;
        Ok(Stmt::Insert(Insert {
            target,
            from,
            where_,
            values,
        }))
    }

    /// Literal tuple: assumes `(` consumed; consumes through `)`.
    fn lit_tuple_body(&mut self) -> Result<Vec<Lit>, ParseError> {
        let mut items = Vec::new();
        if self.eat_punct(')') {
            return Ok(items);
        }
        loop {
            items.push(self.lit()?);
            if self.eat_punct(',') {
                continue;
            }
            self.expect_punct(')')?;
            return Ok(items);
        }
    }

    fn lit(&mut self) -> Result<Lit, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Lit::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Lit::Float(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Lit::Str(s))
            }
            Tok::Kw("TRUE") => {
                self.bump();
                Ok(Lit::Bool(true))
            }
            Tok::Kw("FALSE") => {
                self.bump();
                Ok(Lit::Bool(false))
            }
            Tok::Punct('{') => {
                self.bump();
                Ok(Lit::Relation(self.lit_table_body('}')?))
            }
            Tok::Op("<") => {
                self.bump();
                Ok(Lit::List(self.lit_table_body('>')?))
            }
            // `<>` lexes as one operator token; as a literal it is the
            // empty list.
            Tok::Op("<>") => {
                self.bump();
                Ok(Lit::List(Vec::new()))
            }
            other => self.err(format!("expected literal, found {other:?}")),
        }
    }

    /// Table literal body: `(tuple), (tuple), ...` up to `close`.
    fn lit_table_body(&mut self, close: char) -> Result<Vec<Vec<Lit>>, ParseError> {
        let mut tuples = Vec::new();
        let closed = |p: &mut Self| match close {
            '}' => p.eat_punct('}'),
            '>' => p.eat_op(">"),
            _ => false,
        };
        if closed(self) {
            return Ok(tuples);
        }
        loop {
            self.expect_punct('(')?;
            tuples.push(self.lit_tuple_body()?);
            if self.eat_punct(',') {
                continue;
            }
            if closed(self) {
                return Ok(tuples);
            }
            return self.err(format!("expected `,` or `{close}` in table literal"));
        }
    }

    fn update(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("UPDATE")?;
        let mut from = Vec::new();
        loop {
            from.push(self.binding()?);
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_kw("SET")?;
        let mut set = Vec::new();
        loop {
            let var = self.ident()?;
            self.expect_punct('.')?;
            let mut segs = vec![self.ident()?];
            while self.eat_punct('.') {
                segs.push(self.ident()?);
            }
            if !self.eat_op("=") {
                return self.err("expected `=` in SET clause");
            }
            let value = self.lit()?;
            set.push((var, Path::new(segs), value));
            if !self.eat_punct(',') {
                break;
            }
        }
        let where_ = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update(Update { from, set, where_ }))
    }

    fn delete(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("DELETE")?;
        let var = self.ident()?;
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            from.push(self.binding()?);
            if !self.eat_punct(',') {
                break;
            }
        }
        let where_ = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete(Delete { var, from, where_ }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Query {
        parse_query(src).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn example_1_star() {
        let query = q("SELECT * FROM DEPARTMENTS"); // shorthand binding? no: var required
        let _ = query;
    }

    #[test]
    fn example_1_both_forms() {
        // Long form.
        let long = q("SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS");
        assert_eq!(long.select.len(), 5);
        assert_eq!(long.from.len(), 1);
        // Shorthand.
        let short = q("SELECT * FROM DEPARTMENTS");
        assert_eq!(short.select, vec![SelectItem::Star]);
        match &short.from[0].source {
            Source::Table(t) => assert_eq!(t, "DEPARTMENTS"),
            _ => panic!(),
        }
    }

    #[test]
    fn example_2_nested_select() {
        let query = q("SELECT x.DNO, x.MGRNO, \
              PROJECTS = (SELECT y.PNO, y.PNAME, \
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS) \
                          FROM y IN x.PROJECTS), \
              x.BUDGET, \
              EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP) \
              FROM x IN DEPARTMENTS");
        assert_eq!(query.select.len(), 5);
        let SelectItem::Named { name, value } = &query.select[2] else {
            panic!()
        };
        assert_eq!(name, "PROJECTS");
        let NamedValue::Subquery(sub) = value else {
            panic!()
        };
        assert_eq!(sub.select.len(), 3);
        let Source::PathOf { var, path } = &sub.from[0].source else {
            panic!()
        };
        assert_eq!(var, "x");
        assert_eq!(path.to_string(), "PROJECTS");
    }

    #[test]
    fn example_4_unnest() {
        let query = q(
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
             FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
        );
        assert_eq!(query.from.len(), 3);
        assert!(query.where_.is_none());
    }

    #[test]
    fn example_4_flat_with_joins() {
        let query = q(
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
             FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF \
             WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO",
        );
        let w = query.where_.unwrap();
        // Two ANDs.
        assert!(matches!(w, Expr::And(_, _)));
    }

    #[test]
    fn example_5_exists() {
        let query = q("SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'");
        let Some(Expr::Exists { binding, pred }) = query.where_ else {
            panic!()
        };
        assert_eq!(binding.var, "y");
        assert!(pred.is_some());
    }

    #[test]
    fn example_6_nested_all() {
        let query = q("SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
             WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'");
        let Some(Expr::Forall { ref pred, .. }) = query.where_ else {
            panic!()
        };
        assert!(matches!(**pred, Expr::Forall { .. }));
        // The paper's juxtaposed form (no colons) parses identically.
        let query2 = q("SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
             WHERE ALL y IN x.PROJECTS ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'");
        assert_eq!(query2.where_, query.where_);
    }

    #[test]
    fn sec42_nested_exists() {
        let query = q("SELECT x.DNO FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'");
        let Some(Expr::Exists { pred, .. }) = query.where_ else {
            panic!()
        };
        assert!(matches!(pred.as_deref(), Some(Expr::Exists { .. })));
    }

    #[test]
    fn example_7_fig4_join() {
        let query = q("SELECT x.DNO, x.MGRNO, \
               EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION \
                            FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF \
                            WHERE z.EMPNO = u.EMPNO) \
             FROM x IN DEPARTMENTS");
        let SelectItem::Named { value, .. } = &query.select[2] else {
            panic!()
        };
        let NamedValue::Subquery(sub) = value else {
            panic!()
        };
        assert_eq!(sub.from.len(), 3);
    }

    #[test]
    fn example_8_subscript() {
        let query =
            q("SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'");
        let Some(Expr::Cmp { lhs, .. }) = query.where_ else {
            panic!()
        };
        let Expr::Subscript {
            var, path, index, ..
        } = *lhs
        else {
            panic!()
        };
        assert_eq!(var, "x");
        assert_eq!(path.to_string(), "AUTHORS");
        assert_eq!(index, 1);
    }

    #[test]
    fn subscript_with_rest_path() {
        let query = q("SELECT x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[2].NAME = 'Meyer P.'");
        let Some(Expr::Cmp { lhs, .. }) = query.where_ else {
            panic!()
        };
        let Expr::Subscript { index, rest, .. } = *lhs else {
            panic!()
        };
        assert_eq!(index, 2);
        assert_eq!(rest.to_string(), "NAME");
    }

    #[test]
    fn sec5_contains_and_exists() {
        let query = q("SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS \
             WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'");
        let Some(Expr::And(l, r)) = query.where_ else {
            panic!()
        };
        assert!(matches!(*l, Expr::Contains { .. }));
        assert!(matches!(*r, Expr::Exists { .. }));
    }

    #[test]
    fn sec5_asof() {
        let query = q("SELECT y.PNO, y.PNAME \
             FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS \
             WHERE x.DNO = 314");
        assert_eq!(query.from[0].asof.as_deref(), Some("1984-01-15"));
        assert_eq!(query.from[1].asof, None);
    }

    #[test]
    fn create_table_departments() {
        let stmt = parse_stmt(
            "CREATE TABLE DEPARTMENTS ( \
               DNO INTEGER, MGRNO INTEGER, \
               PROJECTS { PNO INTEGER, PNAME STRING, \
                          MEMBERS { EMPNO INTEGER, FUNCTION STRING } }, \
               BUDGET INTEGER, \
               EQUIP { QU INTEGER, TYPE STRING } ) USING SS3",
        )
        .unwrap();
        let Stmt::CreateTable(ct) = stmt else {
            panic!()
        };
        assert_eq!(ct.name, "DEPARTMENTS");
        assert!(!ct.ordered);
        assert_eq!(ct.attrs.len(), 5);
        assert_eq!(ct.using.as_deref(), Some("SS3"));
        let AttrDecl::Table { name, attrs, .. } = &ct.attrs[2] else {
            panic!()
        };
        assert_eq!(name, "PROJECTS");
        assert!(matches!(&attrs[2], AttrDecl::Table { name, .. } if name == "MEMBERS"));
    }

    #[test]
    fn create_table_reports_with_list() {
        let stmt = parse_stmt(
            "CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, \
             TITLE TEXT, DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } ) WITH VERSIONS",
        )
        .unwrap();
        let Stmt::CreateTable(ct) = stmt else {
            panic!()
        };
        assert!(ct.versioned);
        let AttrDecl::Table { name, ordered, .. } = &ct.attrs[1] else {
            panic!()
        };
        assert_eq!(name, "AUTHORS");
        assert!(*ordered, "AUTHORS is a list");
        assert!(matches!(&ct.attrs[2], AttrDecl::Atomic { ty, .. } if ty == "TEXT"));
    }

    #[test]
    fn create_indexes() {
        let s = parse_stmt(
            "CREATE INDEX fidx ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION) USING HIERARCHICAL",
        )
        .unwrap();
        let Stmt::CreateIndex(ci) = s else { panic!() };
        assert!(!ci.text);
        assert_eq!(ci.path.to_string(), "PROJECTS.MEMBERS.FUNCTION");
        assert_eq!(ci.using.as_deref(), Some("HIERARCHICAL"));
        let s = parse_stmt("CREATE TEXT INDEX tix ON REPORTS (TITLE)").unwrap();
        let Stmt::CreateIndex(ci) = s else { panic!() };
        assert!(ci.text);
    }

    #[test]
    fn insert_whole_object() {
        let s = parse_stmt(
            "INSERT INTO DEPARTMENTS VALUES (314, 56194, \
               {(17, 'CGA', {(39582, 'Leader')})}, 320000, {(2, '3278'), (1, 'PC')})",
        )
        .unwrap();
        let Stmt::Insert(ins) = s else { panic!() };
        assert!(matches!(ins.target, Source::Table(ref t) if t == "DEPARTMENTS"));
        assert_eq!(ins.values.len(), 5);
        let Lit::Relation(projects) = &ins.values[2] else {
            panic!()
        };
        assert_eq!(projects.len(), 1);
        let Lit::Relation(members) = &projects[0][2] else {
            panic!()
        };
        assert_eq!(members[0][1], Lit::Str("Leader".into()));
    }

    #[test]
    fn insert_partial_into_subtable() {
        let s = parse_stmt(
            "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314 \
             VALUES (99, 'AIM', {})",
        )
        .unwrap();
        let Stmt::Insert(ins) = s else { panic!() };
        assert!(matches!(ins.target, Source::PathOf { .. }));
        assert_eq!(ins.from.len(), 1);
        assert!(ins.where_.is_some());
        assert_eq!(ins.values[2], Lit::Relation(vec![]));
    }

    #[test]
    fn insert_list_literal() {
        let s = parse_stmt(
            "INSERT INTO REPORTS VALUES ('0300', <('Ada A.'), ('Babbage C.')>, 'On Engines', {})",
        )
        .unwrap();
        let Stmt::Insert(ins) = s else { panic!() };
        let Lit::List(authors) = &ins.values[1] else {
            panic!()
        };
        assert_eq!(authors.len(), 2);
    }

    #[test]
    fn update_nested() {
        let s = parse_stmt(
            "UPDATE x IN DEPARTMENTS, y IN x.PROJECTS \
             SET y.PNAME = 'CGA-2', x.BUDGET = 999000 \
             WHERE x.DNO = 314 AND y.PNO = 17",
        )
        .unwrap();
        let Stmt::Update(up) = s else { panic!() };
        assert_eq!(up.from.len(), 2);
        assert_eq!(up.set.len(), 2);
        assert_eq!(up.set[0].0, "y");
        assert_eq!(up.set[0].1.to_string(), "PNAME");
    }

    #[test]
    fn delete_element_and_object() {
        let s =
            parse_stmt("DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 23").unwrap();
        let Stmt::Delete(del) = s else { panic!() };
        assert_eq!(del.var, "y");
        let s = parse_stmt("DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 417").unwrap();
        assert!(matches!(s, Stmt::Delete(_)));
    }

    #[test]
    fn drop_table() {
        assert_eq!(
            parse_stmt("DROP TABLE DEPARTMENTS").unwrap(),
            Stmt::DropTable("DEPARTMENTS".into())
        );
    }

    #[test]
    fn errors_have_positions() {
        let e = parse_query("SELECT x.DNO FORM x IN T").unwrap_err();
        assert!(e.offset > 0);
        assert!(parse_stmt("SELECT").is_err());
        assert!(parse_stmt("CREATE TABLE T ()").is_err());
        assert!(parse_stmt("INSERT INTO T VALUES (1,)").is_err());
        assert!(
            parse_query("SELECT * FROM x IN T WHERE x.A[0] = 1").is_err(),
            "subscripts are 1-based"
        );
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_stmt("SELECT * FROM DEPARTMENTS;").is_ok());
    }

    #[test]
    fn parenthesized_and_not_predicates() {
        let query = q("SELECT x.DNO FROM x IN T WHERE NOT (x.A = 1 OR x.B = 2) AND x.C <> 3");
        assert!(matches!(query.where_, Some(Expr::And(_, _))));
    }
}
