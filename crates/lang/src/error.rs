//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source text.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }

    /// Render with a caret into the offending source line.
    pub fn render(&self, src: &str) -> String {
        let upto = &src[..self.offset.min(src.len())];
        let line_no = upto.matches('\n').count() + 1;
        let line_start = upto.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = src[line_start..]
            .find('\n')
            .map(|i| line_start + i)
            .unwrap_or(src.len());
        let col = self.offset.saturating_sub(line_start);
        format!(
            "parse error at line {line_no}, column {}: {}\n  {}\n  {}^",
            col + 1,
            self.message,
            &src[line_start..line_end],
            " ".repeat(col)
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_problem() {
        let src = "SELECT *\nFROM ???";
        let e = ParseError::new(14, "unexpected character");
        let r = e.render(src);
        assert!(r.contains("line 2"), "{r}");
        assert!(r.contains("FROM ???"));
        assert!(r.lines().last().unwrap().contains('^'));
    }
}
