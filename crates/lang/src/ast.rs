//! Abstract syntax of the NF² language.

use aim2_model::Path;

/// A literal value in queries and DML.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    /// A nested table literal (DML VALUES): `{ (..), .. }` or `< (..) >`.
    Relation(Vec<Vec<Lit>>),
    List(Vec<Vec<Lit>>),
}

/// What a tuple variable ranges over.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// A stored table: `x IN DEPARTMENTS`.
    Table(String),
    /// A table-valued attribute of another variable: `y IN x.PROJECTS`.
    PathOf { var: String, path: Path },
}

/// One FROM-clause binding, optionally time-travelled (§5):
/// `x IN DEPARTMENTS ASOF '1984-01-15'`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    pub var: String,
    pub source: Source,
    pub asof: Option<String>,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator's source-text spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Expressions (paths, literals, predicates).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `x` or `x.PROJECTS.MEMBERS` — a variable plus attribute path.
    PathRef {
        var: String,
        path: Path,
    },
    /// `x.AUTHORS[1]` (+ optional trailing path `x.AUTHORS[1].NAME`) —
    /// 1-based list subscript (Example 8).
    Subscript {
        var: String,
        path: Path,
        index: usize,
        rest: Path,
    },
    Lit(Lit),
    Cmp {
        op: CmpOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// `EXISTS y IN x.EQUIP : pred` (Example 5). The predicate is
    /// optional (`EXISTS y IN x.PROJECTS` = non-emptiness).
    Exists {
        binding: Box<Binding>,
        pred: Option<Box<Expr>>,
    },
    /// `ALL z IN y.MEMBERS : pred` (Example 6).
    Forall {
        binding: Box<Binding>,
        pred: Box<Expr>,
    },
    /// `x.TITLE CONTAINS '*comput*'` (§5).
    Contains {
        expr: Box<Expr>,
        pattern: String,
    },
}

/// One SELECT-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — take over the source structure (Example 1).
    Star,
    /// `x.DNO` — result attribute named after the last path segment.
    Expr(Expr),
    /// `NAME = expr` or `NAME = (SELECT ...)` — an explicitly named
    /// result attribute; the subquery form builds nested structure
    /// (Figures 2–5).
    Named { name: String, value: NamedValue },
}

/// Value of a named SELECT item.
#[derive(Debug, Clone, PartialEq)]
pub enum NamedValue {
    Expr(Expr),
    Subquery(Box<Query>),
}

/// A SELECT-FROM-WHERE query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Vec<SelectItem>,
    pub from: Vec<Binding>,
    pub where_: Option<Expr>,
}

/// DDL: attribute declarations (possibly nested).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrDecl {
    /// `DNO INTEGER`
    Atomic { name: String, ty: String },
    /// `PROJECTS { ... }` (relation) / `AUTHORS < ... >` (list).
    Table {
        name: String,
        ordered: bool,
        attrs: Vec<AttrDecl>,
    },
}

/// `CREATE TABLE` / `CREATE LIST` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    /// True for `CREATE LIST` (top-level ordered table).
    pub ordered: bool,
    pub attrs: Vec<AttrDecl>,
    /// `USING SS1|SS2|SS3` — storage structure (default SS3, as AIM-II).
    pub using: Option<String>,
    /// `WITH VERSIONS` — time-version support (§5).
    pub versioned: bool,
}

/// `CREATE [TEXT] INDEX name ON table (path) [USING scheme]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub path: Path,
    pub text: bool,
    /// `USING HIERARCHICAL|ROOTTID|DATATID|MDPATH` (default hierarchical,
    /// the Fig 7b form AIM-II uses).
    pub using: Option<String>,
}

/// `INSERT INTO <target> [FROM bindings WHERE pred] VALUES (...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Either a stored table name or `var.path` into a bound variable's
    /// subtable (partial insert).
    pub target: Source,
    /// Bindings + filter locating the parent object(s) for partial
    /// inserts.
    pub from: Vec<Binding>,
    pub where_: Option<Expr>,
    /// The tuple to insert.
    pub values: Vec<Lit>,
}

/// `UPDATE bindings SET var.path = lit, ... [WHERE pred]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub from: Vec<Binding>,
    pub set: Vec<(String, Path, Lit)>,
    pub where_: Option<Expr>,
}

/// `DELETE var FROM bindings [WHERE pred]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub var: String,
    pub from: Vec<Binding>,
    pub where_: Option<Expr>,
}

/// Any statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Query(Query),
    /// `EXPLAIN SELECT ...` — describe the access path without running.
    Explain(Query),
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    DropTable(String),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
}

impl Expr {
    /// Convenience: `lhs AND rhs` folding an optional accumulator.
    pub fn and_opt(acc: Option<Expr>, e: Expr) -> Expr {
        match acc {
            Some(a) => Expr::And(Box::new(a), Box::new(e)),
            None => e,
        }
    }

    /// All free tuple variables referenced by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::PathRef { var, .. } | Expr::Subscript { var, .. } => {
                if !out.contains(var) {
                    out.push(var.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.free_vars(out);
                rhs.free_vars(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Not(e) => e.free_vars(out),
            Expr::Exists { binding, pred } => {
                if let Source::PathOf { var, .. } = &binding.source {
                    if !out.contains(var) {
                        out.push(var.clone());
                    }
                }
                if let Some(p) = pred {
                    let mut inner = Vec::new();
                    p.free_vars(&mut inner);
                    for v in inner {
                        if v != binding.var && !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
            }
            Expr::Forall { binding, pred } => {
                if let Source::PathOf { var, .. } = &binding.source {
                    if !out.contains(var) {
                        out.push(var.clone());
                    }
                }
                let mut inner = Vec::new();
                pred.free_vars(&mut inner);
                for v in inner {
                    if v != binding.var && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Expr::Contains { expr, .. } => expr.free_vars(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_skip_bound() {
        // EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT' — free: {x}.
        let e = Expr::Exists {
            binding: Box::new(Binding {
                var: "y".into(),
                source: Source::PathOf {
                    var: "x".into(),
                    path: Path::parse("EQUIP"),
                },
                asof: None,
            }),
            pred: Some(Box::new(Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::PathRef {
                    var: "y".into(),
                    path: Path::parse("TYPE"),
                }),
                rhs: Box::new(Expr::Lit(Lit::Str("PC/AT".into()))),
            })),
        };
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["x".to_string()]);
    }

    #[test]
    fn and_opt_folds() {
        let a = Expr::Lit(Lit::Bool(true));
        let folded = Expr::and_opt(None, a.clone());
        assert_eq!(folded, a);
        let both = Expr::and_opt(Some(a.clone()), Expr::Lit(Lit::Bool(false)));
        assert!(matches!(both, Expr::And(_, _)));
    }
}
