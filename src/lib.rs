//! AIM-II reproduction — root crate.
//!
//! Re-exports the public API of the whole workspace so integration tests
//! and examples depend on a single crate. See the README for the map.

pub use aim2::{Database, DbConfig, DbError};
pub use aim2_exec as exec;
pub use aim2_index as index;
pub use aim2_lang as lang;
pub use aim2_model as model;
pub use aim2_storage as storage;
pub use aim2_text as text;
pub use aim2_time as time;
